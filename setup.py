"""Setuptools shim.

This repository is normally installed with ``pip install -e .`` driven by
``pyproject.toml``.  The shim keeps legacy editable installs working in
offline environments that lack the ``wheel`` package (pip then falls back
to ``setup.py develop``).
"""

from setuptools import setup

setup()
