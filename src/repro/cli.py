"""Command-line interface: regenerate any figure of the paper.

Examples
--------
List everything::

    python -m repro list

Regenerate Fig. 2 at laptop scale (defaults) or paper scale::

    python -m repro run fig2
    python -m repro run fig2 --jobs 500000 --seeds 10 --processes 8

Restrict a sweep::

    python -m repro run fig2 --curves basic-li,random --x 1,8,64

Fig. 1 (analytic + Monte-Carlo check)::

    python -m repro fig1
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.fig1 import run_fig1
from repro.experiments.registry import FIGURES, get_figure
from repro.experiments.runner import run_figure

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="stale-li",
        description=(
            "Reproduction of Dahlin, 'Interpreting Stale Load Information' "
            "(ICDCS 1999): regenerate the paper's figures."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list available figures")
    list_cmd.set_defaults(handler=_cmd_list)

    run_cmd = sub.add_parser("run", help="run one figure's sweep")
    run_cmd.add_argument("figure", help="figure id (see `list`)")
    run_cmd.add_argument("--jobs", type=int, default=None, help="arrivals per run")
    run_cmd.add_argument(
        "--seeds", type=int, default=None, help="replications per cell"
    )
    run_cmd.add_argument(
        "--processes", type=int, default=1, help="worker processes (default 1)"
    )
    run_cmd.add_argument(
        "--curves",
        type=str,
        default=None,
        help="comma-separated subset of curve labels",
    )
    run_cmd.add_argument(
        "--x",
        type=str,
        default=None,
        help="comma-separated subset of x values",
    )
    run_cmd.add_argument(
        "--markdown", action="store_true", help="emit a Markdown table"
    )
    run_cmd.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII chart of the sweep",
    )
    run_cmd.add_argument(
        "--log-y",
        action="store_true",
        help="chart log10 of the response time (with --chart)",
    )
    run_cmd.add_argument(
        "--save",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the raw per-seed samples to PATH as JSON",
    )
    run_cmd.add_argument(
        "--trace",
        action="store_true",
        help="attach observability probes (queue traces, response "
        "histograms, herd detection) to every cell",
    )
    run_cmd.add_argument(
        "--trace-interval",
        type=float,
        default=1.0,
        metavar="DT",
        help="queue-trace sample spacing in mean service times (default 1.0)",
    )
    run_cmd.add_argument(
        "--full-traces",
        action="store_true",
        help="with --trace: embed complete queue traces and per-epoch "
        "herd records in the manifest (larger files)",
    )
    run_cmd.add_argument(
        "--manifest-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="write a JSON run manifest (spec, seeds, git describe, wall "
        "time, probe summaries) into DIR",
    )
    run_cmd.add_argument(
        "--faults",
        type=str,
        default=None,
        metavar="SPEC",
        help="inject server faults into every cell: comma-separated "
        "key=value pairs (mttf, mttr, degrade-mttf, degrade-mttr, "
        "degrade-factor, mode=stall|abort, timeout, backoff, "
        "backoff-cap, attempts), e.g. "
        "'mttf=200,mttr=10,mode=abort,timeout=0.5'",
    )
    run_cmd.add_argument(
        "--arrivals",
        type=str,
        default=None,
        metavar="SPEC",
        help="re-shape every cell's Poisson stream with a rate program "
        "(mean rate preserved): 'constant', "
        "'diurnal:amplitude=A,period=P[,phase=F]', "
        "'flash:surge=S,start=T0,duration=D[,every=E]', "
        "'piecewise:t1=f1,t2=f2,...' (factors of the cell rate) or "
        "'trace:FILE.csv'",
    )
    run_cmd.add_argument(
        "--autoscale",
        type=str,
        default=None,
        metavar="SPEC",
        help="attach an elastic-capacity controller to every cell: "
        "'target-util:target=0.7,min=1,max=N,interval=5,cooldown=10,"
        "warmup=1[,initial=K]' or 'queue:up=4,down=0.5,step=1,...'",
    )
    run_cmd.add_argument(
        "--dispatchers",
        type=int,
        default=None,
        metavar="M",
        help="split every cell's arrival stream across M concurrent "
        "front-ends sharing the cell's bulletin board (requires "
        "ClusterSimulation-driven figures)",
    )
    run_cmd.add_argument(
        "--engine",
        choices=("auto", "event", "fast", "vector", "fluid"),
        default="auto",
        help="force a simulation engine for every cell (default auto; "
        "event/fast/vector are bit-identical, fluid solves the "
        "mean-field fixed point instead of simulating)",
    )
    run_cmd.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="content-hashed result cache: look up each cell's run ID in "
        "DIR before running and only re-run stale cells (incremental "
        "regeneration); fresh values are written back",
    )
    run_cmd.add_argument(
        "--cache-refresh",
        action="store_true",
        help="with --cache-dir: skip lookups, re-run every cell and "
        "overwrite its cached entry",
    )
    _add_overload_arguments(run_cmd)
    run_cmd.set_defaults(handler=_cmd_run)

    ablate_cmd = sub.add_parser(
        "ablate",
        help="knock out or swap one component at a time around a baseline "
        "cell and rank the components by metric impact",
    )
    ablate_cmd.add_argument("figure", help="figure id (see `list`)")
    ablate_cmd.add_argument(
        "--baseline",
        type=str,
        required=True,
        metavar="CURVE",
        help="curve label serving as the baseline cell",
    )
    ablate_cmd.add_argument(
        "--x",
        type=float,
        default=None,
        help="x value of the baseline cell (default: middle of the sweep)",
    )
    ablate_cmd.add_argument(
        "--jobs", type=int, default=None, help="arrivals per run"
    )
    ablate_cmd.add_argument(
        "--seeds",
        type=int,
        default=3,
        help="paired replications per variant (default 3)",
    )
    ablate_cmd.add_argument(
        "--base-seed", type=int, default=1, help="first seed (default 1)"
    )
    ablate_cmd.add_argument(
        "--knockout",
        action="append",
        default=None,
        metavar="CURVE",
        help="ablate against this curve (repeatable; default: every other "
        "curve of the figure)",
    )
    ablate_cmd.add_argument(
        "--engine-axis",
        action="store_true",
        help="add event/fast/vector as knockouts (bit-identical engines: "
        "each must report a delta of exactly zero)",
    )
    ablate_cmd.add_argument(
        "--engine",
        choices=("auto", "event", "fast", "vector", "fluid"),
        default="auto",
        help="engine for the baseline and non-engine knockouts",
    )
    ablate_cmd.add_argument(
        "--processes", type=int, default=1, help="worker processes (default 1)"
    )
    ablate_cmd.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="shared content-hashed result cache (see `run --cache-dir`); "
        "variants already cached cost nothing",
    )
    ablate_cmd.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the ranked report as JSON to PATH",
    )
    ablate_cmd.set_defaults(handler=_cmd_ablate)

    multidisp_cmd = sub.add_parser(
        "multidisp",
        help="sweep the dispatcher count m for one policy and print "
        "per-dispatcher herd statistics",
    )
    multidisp_cmd.add_argument(
        "--policy",
        type=str,
        default="basic-li",
        help="comma-separated policy labels (random, k=2, greedy, "
        "basic-li, basic-li(global), aggressive-li, jiq, lsq); "
        "default basic-li",
    )
    multidisp_cmd.add_argument(
        "--m", type=str, default="1,2,4,8,16",
        help="comma-separated dispatcher counts (default 1,2,4,8,16)",
    )
    multidisp_cmd.add_argument("--servers", type=int, default=10)
    multidisp_cmd.add_argument("--load", type=float, default=0.9)
    multidisp_cmd.add_argument(
        "--period", type=float, default=4.0,
        help="stale period T in mean service times (default 4.0)",
    )
    multidisp_cmd.add_argument(
        "--board",
        choices=("shared", "independent"),
        default="shared",
        help="one shared bulletin board, or per-dispatcher staggered "
        "boards (default shared)",
    )
    multidisp_cmd.add_argument("--jobs", type=int, default=20_000)
    multidisp_cmd.add_argument("--seed", type=int, default=1)
    multidisp_cmd.set_defaults(handler=_cmd_multidisp)

    overload_cmd = sub.add_parser(
        "overload",
        help="sweep offered load rho for one or more policies under "
        "overload protection and print goodput/drop/breaker columns",
    )
    overload_cmd.add_argument(
        "--policy",
        type=str,
        default="basic-li",
        help="comma-separated policy labels (random, greedy, threshold, "
        "basic-li, aggressive-li, random+storm, basic-li+storm); "
        "default basic-li",
    )
    overload_cmd.add_argument(
        "--rho",
        type=str,
        default="0.8,0.9,1.0,1.1,1.2",
        help="comma-separated offered loads (default 0.8,0.9,1.0,1.1,1.2)",
    )
    overload_cmd.add_argument("--servers", type=int, default=10)
    overload_cmd.add_argument(
        "--period", type=float, default=4.0,
        help="stale period T in mean service times (default 4.0)",
    )
    overload_cmd.add_argument("--jobs", type=int, default=20_000)
    overload_cmd.add_argument("--seed", type=int, default=1)
    _add_overload_arguments(overload_cmd, default_capacity=16)
    overload_cmd.set_defaults(handler=_cmd_overload)

    transient_cmd = sub.add_parser(
        "transient",
        help="run one non-stationary cell and print its time-binned "
        "window table (arrivals, response, herding, estimated vs true λ)",
    )
    transient_cmd.add_argument(
        "--arrivals",
        type=str,
        required=True,
        metavar="SPEC",
        help="rate program (same grammar as `run --arrivals`), e.g. "
        "'flash:surge=3,start=40,duration=20'",
    )
    transient_cmd.add_argument(
        "--autoscale",
        type=str,
        default=None,
        metavar="SPEC",
        help="elastic-capacity controller (same grammar as "
        "`run --autoscale`)",
    )
    transient_cmd.add_argument(
        "--policy",
        choices=("random", "greedy", "basic-li", "aggressive-li", "drift-li"),
        default="basic-li",
        help="dispatch policy (default basic-li)",
    )
    transient_cmd.add_argument(
        "--estimator",
        choices=("exact", "program", "ewma", "windowed", "drift"),
        default="ewma",
        help="λ estimator feeding the LI interpretation: 'exact' knows "
        "the long-run mean, 'program' the oracle λ(t), the others are "
        "online (default ewma; drift-li forces 'drift')",
    )
    transient_cmd.add_argument("--servers", type=int, default=10)
    transient_cmd.add_argument(
        "--load", type=float, default=0.6,
        help="mean per-server load of the program (default 0.6)",
    )
    transient_cmd.add_argument(
        "--period", type=float, default=4.0,
        help="stale period T in mean service times (default 4.0)",
    )
    transient_cmd.add_argument("--jobs", type=int, default=20_000)
    transient_cmd.add_argument("--seed", type=int, default=1)
    transient_cmd.add_argument(
        "--window", type=float, default=5.0,
        help="time-bin width of the transient table (default 5.0)",
    )
    transient_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the full probe summaries as JSON instead of a table",
    )
    transient_cmd.set_defaults(handler=_cmd_transient)

    obs_cmd = sub.add_parser(
        "obs", help="summarize a run manifest written by `run --manifest-dir`"
    )
    obs_cmd.add_argument("path", help="manifest JSON file")
    obs_cmd.add_argument(
        "--epochs",
        action="store_true",
        help="also print per-epoch herd records (requires --full-traces "
        "at run time)",
    )
    obs_cmd.set_defaults(handler=_cmd_obs)

    show_cmd = sub.add_parser(
        "show", help="re-render a saved result (from `run --save`)"
    )
    show_cmd.add_argument("path", help="JSON result file")
    show_cmd.add_argument("--markdown", action="store_true")
    show_cmd.add_argument("--chart", action="store_true")
    show_cmd.add_argument("--log-y", action="store_true")
    show_cmd.set_defaults(handler=_cmd_show)

    grid_cmd = sub.add_parser(
        "grid",
        help="(T x load) advantage grid for one policy against a baseline",
    )
    grid_cmd.add_argument(
        "--subject", type=str, default="basic-li", help="policy under study"
    )
    grid_cmd.add_argument(
        "--baseline", type=str, default="random", help="comparison policy"
    )
    grid_cmd.add_argument(
        "--t", type=str, default="0.5,2,8,32", help="comma-separated T values"
    )
    grid_cmd.add_argument(
        "--loads",
        type=str,
        default="0.5,0.7,0.9",
        help="comma-separated per-server loads",
    )
    grid_cmd.add_argument("--jobs", type=int, default=15_000)
    grid_cmd.add_argument("--seeds", type=int, default=2)
    grid_cmd.add_argument("--servers", type=int, default=10)
    grid_cmd.set_defaults(handler=_cmd_grid)

    report_cmd = sub.add_parser(
        "report",
        help="assemble all regenerated tables from a results directory",
    )
    report_cmd.add_argument(
        "--results",
        type=str,
        default="benchmarks/results",
        help="directory of tables written by the bench harness",
    )
    report_cmd.set_defaults(handler=_cmd_report)

    fig1_cmd = sub.add_parser(
        "fig1", help="reproduce Fig. 1 (analytic + Monte-Carlo)"
    )
    fig1_cmd.add_argument("--servers", type=int, default=10)
    fig1_cmd.add_argument(
        "--k", type=str, default="1,2,3,5,10", help="comma-separated k values"
    )
    fig1_cmd.add_argument("--draws", type=int, default=200_000)
    fig1_cmd.add_argument("--seed", type=int, default=1)
    fig1_cmd.set_defaults(handler=_cmd_fig1)

    profile_cmd = sub.add_parser(
        "profile",
        help="profile (cProfile) or time (timeit-style) one sweep cell",
    )
    profile_cmd.add_argument("figure", help="figure id (see `list`)")
    profile_cmd.add_argument("curve", help="curve label within the figure")
    profile_cmd.add_argument("x", type=float, help="x value of the cell")
    profile_cmd.add_argument("--jobs", type=int, default=15_000)
    profile_cmd.add_argument("--seed", type=int, default=1)
    profile_cmd.add_argument(
        "--engine",
        choices=("auto", "event", "fast", "vector", "fluid"),
        default="auto",
        help="force a simulation engine (default auto)",
    )
    profile_cmd.add_argument(
        "--time",
        action="store_true",
        help="report best-of-N wall time instead of a cProfile listing",
    )
    profile_cmd.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (--time)"
    )
    profile_cmd.add_argument(
        "--sort",
        type=str,
        default="cumulative",
        help="cProfile sort column (default cumulative)",
    )
    profile_cmd.add_argument(
        "--limit", type=int, default=25, help="rows of profile output"
    )
    profile_cmd.set_defaults(handler=_cmd_profile)

    fluid_cmd = sub.add_parser(
        "fluid",
        help="solve a figure's cells in the mean-field (n → ∞) limit "
        "instead of simulating them",
    )
    fluid_cmd.add_argument("figure", help="figure id (see `list`)")
    fluid_cmd.add_argument(
        "--curves",
        type=str,
        default=None,
        help="comma-separated subset of curve labels",
    )
    fluid_cmd.add_argument(
        "--x",
        type=str,
        default=None,
        help="comma-separated subset of x values",
    )
    fluid_cmd.add_argument(
        "--verbose",
        action="store_true",
        help="also print per-cell convergence diagnostics (iterations, "
        "residual, truncation level)",
    )
    fluid_cmd.set_defaults(handler=_cmd_fluid)

    trend_cmd = sub.add_parser(
        "bench-trend",
        help="print the BENCH_*.json performance trajectory; optionally "
        "gate on regressions",
    )
    trend_cmd.add_argument(
        "--dir",
        type=str,
        default="benchmarks",
        help="directory holding BENCH_*.json files (default benchmarks/)",
    )
    trend_cmd.add_argument(
        "--check",
        action="store_true",
        help="compare the newest point against the baseline and exit "
        "non-zero on regression",
    )
    trend_cmd.add_argument(
        "--against",
        type=str,
        default=None,
        metavar="PATH",
        help="baseline BENCH file for --check (default: second-newest "
        "point in --dir)",
    )
    trend_cmd.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="relative slowdown tolerated by --check (default 0.15)",
    )
    trend_cmd.set_defaults(handler=_cmd_bench_trend)

    serve_cmd = sub.add_parser(
        "serve",
        help="serve an LI policy over real TCP sockets: launch backends, "
        "the bulletin-board poller and the dispatcher in one process",
    )
    _add_live_arguments(serve_cmd)
    serve_cmd.add_argument(
        "--port",
        type=int,
        default=0,
        help="dispatcher listen port (default 0: OS-assigned, printed)",
    )
    serve_cmd.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop after this many wall seconds (default: run until "
        "SIGINT; either way shutdown drains in-flight requests)",
    )
    serve_cmd.set_defaults(handler=_cmd_serve)

    live_cmd = sub.add_parser(
        "live-bench",
        help="run live loopback cells and print each policy's measured "
        "mean RT next to the simulator's prediction for the same cell",
    )
    _add_live_arguments(live_cmd)
    live_cmd.add_argument(
        "--policies",
        type=str,
        default=None,
        metavar="A,B,...",
        help="comma-separated live policies to bench (overrides --policy)",
    )
    live_cmd.add_argument(
        "--jobs", type=int, default=400, help="requests per live cell"
    )
    live_cmd.add_argument(
        "--mode",
        type=str,
        default="open",
        choices=("open", "closed"),
        help="open-loop Poisson traffic (default) or a closed client "
        "population",
    )
    live_cmd.add_argument(
        "--clients",
        type=int,
        default=8,
        help="closed-loop client population (default 8)",
    )
    live_cmd.add_argument(
        "--arrivals",
        type=str,
        default=None,
        metavar="SPEC",
        help="non-stationary arrival program (same specs as `transient`)",
    )
    live_cmd.add_argument(
        "--sim-jobs",
        type=int,
        default=20000,
        help="jobs per simulator prediction seed (default 20000)",
    )
    live_cmd.add_argument(
        "--sim-seeds",
        type=int,
        default=3,
        help="simulator prediction replications (default 3)",
    )
    live_cmd.add_argument(
        "--cache",
        type=str,
        default=None,
        metavar="DIR",
        help="result-cache directory for simulator predictions",
    )
    live_cmd.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the full manifest + comparison as JSON",
    )
    live_cmd.add_argument(
        "--check-tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="exit non-zero when any cell's |relative error| exceeds REL "
        "(the CI live-smoke gate)",
    )
    live_cmd.set_defaults(handler=_cmd_live_bench)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="inject real faults (kills, stalls, degradations, network "
        "impairment) into a live loopback run and compare the measured "
        "mean RT against the simulator's prediction for the same fault "
        "schedule",
    )
    _add_live_arguments(chaos_cmd)
    chaos_cmd.add_argument(
        "--faults",
        type=str,
        default="down=0:40:80,mode=abort,timeout=1.0,backoff=0.5",
        metavar="SPEC",
        help="fault schedule + retry policy (same spec strings as `run "
        "--faults`, plus scripted windows down=S:START:END / "
        "degrade=S:START:END:FACTOR); default kills server 0 on "
        "[40, 80) with abort semantics",
    )
    chaos_cmd.add_argument(
        "--impair",
        type=str,
        default=None,
        metavar="SPEC",
        help="network impairment on backend links: "
        "delay=D,jitter=J,drop=P (times in normalized units)",
    )
    chaos_cmd.add_argument(
        "--health",
        type=str,
        default=None,
        metavar="SPEC",
        help="active health checks with drain/rejoin: 'on' or "
        "interval=I,timeout=T,down_after=N,up_after=M (off by default: "
        "the simulator has no analogue)",
    )
    chaos_cmd.add_argument(
        "--board-max-age",
        type=float,
        default=None,
        metavar="PERIODS",
        help="evict bulletin-board entries not refreshed for this many "
        "polling periods (off by default)",
    )
    chaos_cmd.add_argument(
        "--jobs", type=int, default=400, help="requests in the live run"
    )
    chaos_cmd.add_argument(
        "--sim-jobs",
        type=int,
        default=None,
        help="jobs per simulator prediction seed (default: the live "
        "job count — scripted fault windows live in absolute time, so "
        "the prediction must cover the same span, no more)",
    )
    chaos_cmd.add_argument(
        "--sim-seeds",
        type=int,
        default=3,
        help="simulator prediction replications (default 3)",
    )
    chaos_cmd.add_argument(
        "--cache",
        type=str,
        default=None,
        metavar="DIR",
        help="result-cache directory for simulator predictions",
    )
    chaos_cmd.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help="also write the chaos manifest + comparison as JSON (the "
        "CI chaos-smoke artifact)",
    )
    chaos_cmd.add_argument(
        "--check-tolerance",
        type=float,
        default=None,
        metavar="REL",
        help="exit non-zero when |relative error| exceeds REL, or when "
        "the live run logged event-loop errors (the CI chaos-smoke "
        "gate)",
    )
    chaos_cmd.set_defaults(handler=_cmd_chaos)

    return parser


def _add_overload_arguments(
    command: argparse.ArgumentParser, default_capacity: int | None = None
) -> None:
    """The overload-protection flag block shared by `run` and `overload`."""
    command.add_argument(
        "--queue-capacity",
        type=int,
        default=default_capacity,
        metavar="K",
        help="bound every server queue at K jobs; dispatches beyond it "
        "are rejected"
        + (f" (default {default_capacity})" if default_capacity else ""),
    )
    command.add_argument(
        "--admission",
        type=str,
        default=None,
        metavar="SPEC",
        help="shed arrivals before dispatch: 'shed=P' (probabilistic) or "
        "'threshold=T' (refuse when the stale board's minimum is >= T)",
    )
    command.add_argument(
        "--breaker",
        type=str,
        default=None,
        metavar="SPEC",
        help="per-server circuit breakers: 'on' for defaults, or "
        "comma-separated threshold=N,cooldown=C,jitter=J",
    )
    command.add_argument(
        "--storm",
        type=str,
        default=None,
        metavar="SPEC",
        help="re-submit refused jobs after jittered client backoff "
        "(retry storms): 'on' for defaults, or comma-separated "
        "backoff=B,cap=C,jitter=J,resubmits=R",
    )


def _add_live_arguments(command: argparse.ArgumentParser) -> None:
    """The live-cell flag block shared by `serve` and `live-bench`."""
    command.add_argument(
        "--policy",
        type=str,
        default="basic-li",
        help="live policy label (default basic-li; see repro.live"
        ".LIVE_POLICIES)",
    )
    command.add_argument(
        "--servers", type=int, default=3, help="backend count (default 3)"
    )
    command.add_argument(
        "--load",
        type=float,
        default=0.6,
        metavar="RHO",
        help="per-server offered load (default 0.6)",
    )
    command.add_argument(
        "--period",
        type=float,
        default=4.0,
        metavar="T",
        help="bulletin-board polling period in time units (default 4)",
    )
    command.add_argument(
        "--time-unit",
        type=float,
        default=0.01,
        metavar="SECONDS",
        help="wall seconds per mean service time (default 0.01)",
    )
    command.add_argument(
        "--estimator",
        type=str,
        default="exact",
        choices=("exact", "conservative", "ewma"),
        help="arrival-rate estimator the policy interprets loads with",
    )
    command.add_argument(
        "--seed", type=int, default=1, help="root seed (default 1)"
    )
    command.add_argument(
        "--host",
        type=str,
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    command.add_argument(
        "--queue-capacity",
        type=int,
        default=None,
        metavar="K",
        help="bound every backend at K jobs in system",
    )
    command.add_argument(
        "--admission",
        type=str,
        default=None,
        metavar="SPEC",
        help="shed arrivals before dispatch: 'shed=P' or 'threshold=T'",
    )
    command.add_argument(
        "--breaker",
        type=str,
        default=None,
        metavar="SPEC",
        help="per-server circuit breakers: 'on' or "
        "threshold=N,cooldown=C,jitter=J",
    )


def _overload_tuple(args: argparse.Namespace) -> tuple | None:
    """Collect the overload flags into the runner's primitive 4-tuple."""
    if (
        args.queue_capacity is None
        and args.admission is None
        and args.breaker is None
        and args.storm is None
    ):
        return None
    return (args.queue_capacity, args.admission, args.breaker, args.storm)


def _cmd_list(args: argparse.Namespace) -> int:
    width = max(len(figure_id) for figure_id in FIGURES)
    for figure_id, spec in FIGURES.items():
        print(f"{figure_id.ljust(width)}  {spec.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        get_figure(args.figure)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    curves = tuple(args.curves.split(",")) if args.curves else None
    x_values = (
        tuple(float(value) for value in args.x.split(",")) if args.x else None
    )
    sweep_kwargs = dict(
        jobs=args.jobs,
        seeds=args.seeds,
        curves=curves,
        x_values=x_values,
        processes=args.processes,
        trace=args.trace,
        trace_interval=args.trace_interval,
        full_traces=args.full_traces,
        faults=args.faults,
        engine=args.engine,
        dispatchers=args.dispatchers,
        overload=_overload_tuple(args),
        arrivals=args.arrivals,
        autoscale=args.autoscale,
        cache=args.cache_dir,
        cache_refresh=args.cache_refresh,
    )
    try:
        if args.manifest_dir:
            from repro.experiments.runner import run_figure_with_manifest

            result, manifest_path = run_figure_with_manifest(
                args.figure, args.manifest_dir, **sweep_kwargs
            )
        else:
            result = run_figure(args.figure, **sweep_kwargs)
            manifest_path = None
    except (KeyError, ValueError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.save:
        from repro.experiments.persistence import save_result

        save_result(result, args.save)
    _render_result(result, markdown=args.markdown, chart=args.chart, log_y=args.log_y)
    if args.trace and result.observations:
        print()
        print(_observations_digest(result))
    if manifest_path is not None:
        print(f"\nmanifest written to {manifest_path}")
    if result.cache_info is not None:
        print(
            f"\ncache: {result.cache_info['cache_hits']} hits, "
            f"{result.cache_info['fresh_runs']} fresh runs "
            f"({result.cache_info['cache_dir']})"
        )
    return 0


def _cmd_ablate(args: argparse.Namespace) -> int:
    from repro.ablation import (
        AblationStudy,
        Knockout,
        default_knockouts,
        engine_knockouts,
        save_report,
    )

    knockouts = None
    if args.knockout or args.engine_axis:
        knockouts = []
        try:
            if args.knockout:
                by_curve = {
                    k.curve: k
                    for k in default_knockouts(args.figure, args.baseline)
                }
                for label in args.knockout:
                    knockouts.append(
                        by_curve.get(label)
                        or Knockout(
                            name=f"curve:{label}",
                            component="curve",
                            curve=label,
                        )
                    )
            if args.engine_axis:
                knockouts.extend(engine_knockouts())
        except (KeyError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        study = AblationStudy(
            args.figure,
            baseline=args.baseline,
            x=args.x,
            jobs=args.jobs,
            seeds=args.seeds,
            base_seed=args.base_seed,
            engine=args.engine,
            knockouts=knockouts,
        )
        report = study.run(cache=args.cache_dir, processes=args.processes)
    except (KeyError, ValueError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.format_table())
    if report.cache_stats is not None:
        print(
            f"\ncache: {report.cache_stats['hits']} hits, "
            f"{report.cache_stats['writes']} writes "
            f"({report.cache_stats['cache_dir']})"
        )
    if args.json:
        save_report(report, args.json)
        print(f"\nreport written to {args.json}")
    return 0


def _cmd_multidisp(args: argparse.Namespace) -> int:
    """Sweep m for one or more policies; print herd-alignment columns."""
    from functools import partial

    from repro.experiments.registry import MULTIDISP_VARIANTS
    from repro.multidispatch import MultiDispatchSimulation
    from repro.obs.multidispatch import DispatcherTraceProbe
    from repro.staleness.periodic import PeriodicUpdate
    from repro.workloads.service import exponential_service

    labels = [label.strip() for label in args.policy.split(",")]
    for label in labels:
        if label not in MULTIDISP_VARIANTS:
            print(
                f"error: unknown policy {label!r}; available: "
                f"{', '.join(MULTIDISP_VARIANTS)}",
                file=sys.stderr,
            )
            return 2
    try:
        m_values = [int(value) for value in args.m.split(",")]
    except ValueError:
        print(f"error: --m must be comma-separated integers, got {args.m!r}",
              file=sys.stderr)
        return 2
    print(
        f"multidisp: n={args.servers} load={args.load:g} T={args.period:g} "
        f"board={args.board} jobs={args.jobs} seed={args.seed}"
    )
    header = (
        f"{'policy':<18} {'m':>3} {'mean_rt':>9} {'align':>7} "
        f"{'imbal':>7} {'idle_rpts':>9} {'polls':>9} {'digest':>18}"
    )
    print(header)
    for label in labels:
        cfg = MULTIDISP_VARIANTS[label]
        for m in m_values:
            probe = DispatcherTraceProbe()
            try:
                simulation = MultiDispatchSimulation(
                    num_servers=args.servers,
                    total_rate=args.servers * args.load,
                    service=exponential_service(),
                    policy=cfg["policy"],
                    staleness=partial(PeriodicUpdate, args.period),
                    num_dispatchers=m,
                    board=args.board,
                    lambda_view=cfg.get("lambda_view", "local"),
                    total_jobs=args.jobs,
                    seed=args.seed,
                    probes=[probe],
                )
                result = simulation.run()
            except (ValueError, TypeError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            digest = probe.summary()
            print(
                f"{label:<18} {m:>3} {result.mean_response_time:>9.3f} "
                f"{digest['herd_alignment']:>7.3f} "
                f"{digest['dispatcher_imbalance']:>7.3f} "
                f"{result.messages['idle_reports']:>9} "
                f"{result.messages['load_polls']:>9} "
                f"{digest['dispatch_matrix_digest']:>18}"
            )
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    """Sweep rho for one or more policies; print overload accounting."""
    from repro.cluster.simulation import ClusterSimulation
    from repro.experiments.registry import OVERLOAD_VARIANTS
    from repro.overload import build_overload_config
    from repro.staleness.periodic import PeriodicUpdate
    from repro.workloads.arrivals import PoissonArrivals
    from repro.workloads.service import exponential_service

    labels = [label.strip() for label in args.policy.split(",")]
    for label in labels:
        if label not in OVERLOAD_VARIANTS:
            print(
                f"error: unknown policy {label!r}; available: "
                f"{', '.join(OVERLOAD_VARIANTS)}",
                file=sys.stderr,
            )
            return 2
    try:
        rho_values = [float(value) for value in args.rho.split(",")]
    except ValueError:
        print(
            f"error: --rho must be comma-separated numbers, got {args.rho!r}",
            file=sys.stderr,
        )
        return 2
    print(
        f"overload: n={args.servers} T={args.period:g} "
        f"capacity={args.queue_capacity} admission={args.admission} "
        f"breaker={args.breaker} storm={args.storm} "
        f"jobs={args.jobs} seed={args.seed}"
    )
    header = (
        f"{'policy':<16} {'rho':>5} {'goodput':>8} {'drop':>7} {'shed':>6} "
        f"{'reject':>7} {'trips':>6} {'resub':>6} {'mean_rt':>8}"
    )
    print(header)
    for label in labels:
        policy_factory, storm_curve = OVERLOAD_VARIANTS[label]
        storm_spec = args.storm if args.storm else ("on" if storm_curve else None)
        for rho in rho_values:
            try:
                overload = build_overload_config(
                    queue_capacity=args.queue_capacity,
                    admission=args.admission,
                    breaker=args.breaker,
                    storm=storm_spec,
                )
                simulation = ClusterSimulation(
                    num_servers=args.servers,
                    arrivals=PoissonArrivals(args.servers * rho),
                    service=exponential_service(),
                    policy=policy_factory(),
                    staleness=PeriodicUpdate(period=args.period),
                    total_jobs=args.jobs,
                    seed=args.seed,
                    overload=overload,
                )
                result = simulation.run()
            except (ValueError, TypeError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            print(
                f"{label:<16} {rho:>5.2f} {result.goodput:>8.4f} "
                f"{result.drop_rate:>7.4f} {result.jobs_shed:>6} "
                f"{result.jobs_rejected:>7} {result.breaker_trips:>6} "
                f"{result.storm_resubmits:>6} "
                f"{result.mean_response_time:>8.3f}"
            )
    return 0


def _cmd_transient(args: argparse.Namespace) -> int:
    """Run one non-stationary cell; print its per-window transient table."""
    from repro.cluster.simulation import ClusterSimulation
    from repro.core.ksubset import KSubsetPolicy
    from repro.core.li_aggressive import AggressiveLIPolicy
    from repro.core.li_basic import BasicLIPolicy
    from repro.core.random_policy import RandomPolicy
    from repro.core.rate_estimators import EWMARate
    from repro.nonstationary import (
        DriftAwareLIPolicy,
        DriftTrackingRate,
        ProgramRate,
        WindowedRate,
        parse_arrivals_spec,
        parse_autoscale_spec,
    )
    from repro.obs.transient import NonstationaryProvenanceProbe, TransientProbe
    from repro.staleness.periodic import PeriodicUpdate
    from repro.workloads.arrivals import TimeVaryingPoissonArrivals
    from repro.workloads.service import exponential_service

    estimator_kind = args.estimator
    if args.policy == "drift-li" and estimator_kind not in ("drift",):
        estimator_kind = "drift"
    try:
        program = parse_arrivals_spec(args.arrivals)(args.servers * args.load)
        autoscaler = (
            parse_autoscale_spec(args.autoscale) if args.autoscale else None
        )
        policies = {
            "random": RandomPolicy,
            "greedy": lambda: KSubsetPolicy(args.servers),
            "basic-li": BasicLIPolicy,
            "aggressive-li": AggressiveLIPolicy,
            "drift-li": DriftAwareLIPolicy,
        }
        estimators = {
            "exact": lambda: None,  # ClusterSimulation defaults to ExactRate
            "program": lambda: ProgramRate(program),
            "ewma": EWMARate,
            "windowed": WindowedRate,
            "drift": DriftTrackingRate,
        }
        transient = TransientProbe(window=args.window)
        provenance = NonstationaryProvenanceProbe()
        simulation = ClusterSimulation(
            num_servers=args.servers,
            arrivals=TimeVaryingPoissonArrivals(program),
            service=exponential_service(),
            policy=policies[args.policy](),
            staleness=PeriodicUpdate(period=args.period),
            rate_estimator=estimators[estimator_kind](),
            total_jobs=args.jobs,
            seed=args.seed,
            autoscaler=autoscaler,
            probes=[transient, provenance],
        )
        result = simulation.run()
    except (OSError, ValueError, TypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "mean_response_time": result.mean_response_time,
                    "transient": transient.summary(),
                    "nonstationary": provenance.summary(),
                    "scaling": simulation.last_scaling_summary,
                },
                indent=2,
                default=str,
            )
        )
        return 0
    print(
        f"transient: {args.arrivals} policy={args.policy} "
        f"estimator={estimator_kind} n={args.servers} load={args.load:g} "
        f"T={args.period:g} jobs={args.jobs} seed={args.seed}"
    )
    summary = transient.summary()
    print(
        f"mean_rt={result.mean_response_time:.3f} "
        f"herd_epochs={summary['herd_epochs']}/{summary['num_windows']} "
        + (
            f"lambda_underestimation={summary['mean_rate_underestimation']:+.1%}"
            if "mean_rate_underestimation" in summary
            else ""
        )
    )
    if simulation.last_scaling_summary is not None:
        scaling = simulation.last_scaling_summary
        print(
            f"autoscale: final_active={scaling['final_active']} "
            f"mean_active={scaling['mean_active']:.2f} "
            f"actions={scaling['actions']}"
        )
    header = (
        f"{'t0':>8} {'t1':>8} {'arrivals':>8} {'mean_rt':>8} {'drops':>6} "
        f"{'max_share':>9} {'herd':>5} {'est_rate':>9} {'true_rate':>9}"
    )
    print(header)
    for window in transient.windows():
        mean_rt = (
            f"{window['mean_response']:>8.3f}"
            if window["mean_response"] is not None
            else f"{'-':>8}"
        )
        est = (
            f"{window['estimated_rate']:>9.3f}"
            if "estimated_rate" in window
            else f"{'-':>9}"
        )
        true = (
            f"{window['true_rate']:>9.3f}"
            if "true_rate" in window
            else f"{'-':>9}"
        )
        print(
            f"{window['t0']:>8.1f} {window['t1']:>8.1f} "
            f"{window['arrivals']:>8} {mean_rt} {window['drops']:>6} "
            f"{window['max_share']:>9.3f} "
            f"{'yes' if window['herd'] else '':>5} {est} {true}"
        )
    return 0


def _observations_digest(result) -> str:
    """One line per traced cell: utilization spread and herd statistics."""
    lines = ["observations:"]
    for (curve, x, seed), probes in sorted(result.observations.items()):
        parts = [f"  {curve:<24} {result.x_label}={x:<8g} seed={seed}"]
        trace = probes.get("queue_trace") or {}
        if trace.get("utilization"):
            util = trace["utilization"]
            parts.append(f"util {min(util):.2f}..{max(util):.2f}")
            parts.append(f"imbalance {trace['imbalance']:.2f}")
        herd = probes.get("herd") or {}
        if herd.get("epochs"):
            parts.append(
                f"herding {herd['herding_epochs']}/{herd['epochs']} epochs"
            )
        faults = probes.get("faults") or {}
        if faults.get("retries") or faults.get("availability"):
            availability = faults.get("availability") or {}
            failed = sum(faults.get("failures", {}).values())
            parts.append(
                f"avail {availability.get('availability', 1.0):.3f} "
                f"retries {faults.get('retries', 0)} failed {failed}"
            )
        overload = probes.get("overload") or {}
        if overload:
            parts.append(
                f"sheds {overload.get('sheds', 0)} "
                f"rejects {overload.get('rejects_total', 0)} "
                f"drops {overload.get('drops_total', 0)} "
                f"trips {overload.get('breaker', {}).get('trips_total', 0)}"
            )
        info = probes.get("staleness_info") or {}
        if info.get("refreshes_attempted"):
            parts.append(
                f"refreshes {info['refreshes_attempted'] - info['refreshes_dropped']}"
                f"/{info['refreshes_attempted']} delivered"
            )
        lines.append("  ".join(parts))
    return "\n".join(lines)


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.manifest import format_manifest, load_manifest

    try:
        manifest = load_manifest(args.path)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(format_manifest(manifest))
    if args.epochs:
        printed = False
        for entry in manifest.get("observations", []):
            records = (entry.get("probes", {}).get("herd") or {}).get(
                "epoch_records"
            )
            if not records:
                continue
            printed = True
            print(
                f"\nepochs for {entry['curve']} x={entry['x']:g} "
                f"seed={entry['seed']}:"
            )
            print("  idx    start      end   jobs  max_share  top  entropy")
            for record in records:
                print(
                    f"  {record['index']:>3} {record['start']:>8.2f} "
                    f"{record['end']:>8.2f} {record['total']:>6} "
                    f"{record['max_share']:>10.3f} {record['top_server']:>4} "
                    f"{record['entropy']:>8.3f}"
                )
        if not printed:
            print(
                "\nno per-epoch records in this manifest "
                "(re-run with --trace --full-traces)"
            )
    return 0


def _render_result(result, markdown: bool, chart: bool, log_y: bool) -> None:
    print(result.format_markdown() if markdown else result.format_table())
    if chart:
        from repro.experiments.plot import ascii_chart

        print()
        print(ascii_chart(result, log_y=log_y))


def _cmd_show(args: argparse.Namespace) -> int:
    from repro.experiments.persistence import load_result

    try:
        result = load_result(args.path)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _render_result(result, markdown=args.markdown, chart=args.chart, log_y=args.log_y)
    return 0


#: Policy names accepted by the ``grid`` subcommand.
GRID_POLICIES = {
    "random": "repro.core.random_policy:RandomPolicy",
    "round-robin": "repro.core.round_robin:RoundRobinPolicy",
    "basic-li": "repro.core.li_basic:BasicLIPolicy",
    "aggressive-li": "repro.core.li_aggressive:AggressiveLIPolicy",
    "hybrid-li": "repro.core.li_hybrid:HybridLIPolicy",
    "k=2": "repro.core.ksubset:KSubsetPolicy:2",
    "k=3": "repro.core.ksubset:KSubsetPolicy:3",
    "k=10": "repro.core.ksubset:KSubsetPolicy:10",
}


def _grid_policy_factory(name: str):
    import importlib

    try:
        spec = GRID_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {', '.join(GRID_POLICIES)}"
        ) from None
    parts = spec.split(":")
    module = importlib.import_module(parts[0])
    policy_class = getattr(module, parts[1])
    if len(parts) == 3:
        argument = int(parts[2])
        return lambda: policy_class(argument)
    return policy_class


def _cmd_grid(args: argparse.Namespace) -> int:
    from repro.experiments.grid import run_advantage_grid

    try:
        subject = _grid_policy_factory(args.subject)
        baseline = _grid_policy_factory(args.baseline)
        result = run_advantage_grid(
            subject,
            baseline,
            subject_label=args.subject,
            baseline_label=args.baseline,
            t_values=tuple(float(v) for v in args.t.split(",")),
            load_values=tuple(float(v) for v in args.loads.split(",")),
            num_servers=args.servers,
            jobs=args.jobs,
            seeds=args.seeds,
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.format_table())
    print()
    print(result.format_heatmap())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    results_dir = Path(args.results)
    if not results_dir.is_dir():
        print(
            f"error: {results_dir} is not a directory; run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 2
    tables = sorted(results_dir.glob("*.txt"))
    if not tables:
        print(f"error: no tables found in {results_dir}", file=sys.stderr)
        return 2
    for path in tables:
        print(path.read_text().rstrip("\n"))
        print("-" * 72)
    print(f"{len(tables)} tables from {results_dir}")
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    k_values = tuple(int(value) for value in args.k.split(","))
    result = run_fig1(
        num_servers=args.servers,
        k_values=k_values,
        draws=args.draws,
        seed=args.seed,
    )
    print(result.format_table())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_cell

    try:
        get_figure(args.figure)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    def cell() -> float:
        return run_cell(
            args.figure,
            args.curve,
            args.x,
            args.seed,
            args.jobs,
            engine=args.engine,
        )

    try:
        if args.time:
            import timeit

            cell()  # warm-up: imports and caches stay out of the timing
            times = timeit.repeat(cell, number=1, repeat=max(1, args.repeats))
            best = min(times)
            print(
                f"{args.figure}/{args.curve} x={args.x:g} jobs={args.jobs} "
                f"engine={args.engine}: best {best:.4f}s of {len(times)} "
                f"({args.jobs / best:,.0f} jobs/sec)"
            )
        else:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            mean = cell()
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats(args.sort).print_stats(args.limit)
            print(f"mean response time: {mean:.6g}")
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_fluid(args: argparse.Namespace) -> int:
    """Mean-field solutions for a figure's cells, one row per x value.

    Deterministic (no seeds, no jobs): each cell is the fixed point of
    its fluid phase map.  Cells whose configuration has no fluid
    translation print the blocking reason's short form (``n/a``) instead
    of a number; non-converged solves are flagged with ``*``.
    """
    from repro.cluster.simulation import ClusterSimulation

    try:
        spec = get_figure(args.figure)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        labels = (
            tuple(args.curves.split(",")) if args.curves
            else tuple(curve.label for curve in spec.curves)
        )
        for label in labels:
            spec.curve(label)
        x_values = (
            tuple(float(value) for value in args.x.split(","))
            if args.x
            else spec.x_values
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(f"{spec.figure_id}: {spec.title} — fluid (n → ∞) limit")
    header = [spec.x_label] + list(labels)
    rows = []
    diagnostics = []
    for x in x_values:
        row = [f"{x:g}"]
        for label in labels:
            simulation = spec.build_simulation(
                spec.curve(label), x, seed=0, total_jobs=1
            )
            if not isinstance(simulation, ClusterSimulation):
                row.append("n/a")
                continue
            simulation.engine = "fluid"
            try:
                value = simulation.run().mean_response_time
            except ValueError as error:
                diagnostics.append(f"  {label} @ x={x:g}: {error}")
                row.append("n/a")
                continue
            summary = simulation.last_fluid_summary or {}
            flag = "" if summary.get("converged", True) else "*"
            row.append(f"{value:.4f}{flag}")
            if args.verbose:
                diagnostics.append(
                    f"  {label} @ x={x:g}: iters={summary.get('iterations')} "
                    f"residual={summary.get('residual'):.2e} "
                    f"K={summary.get('max_level')}"
                )
        rows.append(row)
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    if any(cell.endswith("*") for row in rows for cell in row):
        print("* fixed-point iteration did not meet tolerance")
    if diagnostics:
        print()
        print("\n".join(diagnostics))
    return 0


def _cmd_bench_trend(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.perf import compare_benches, format_trend, load_bench_files

    try:
        benches = load_bench_files(args.dir)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not benches:
        print(
            f"no BENCH_*.json files found in {args.dir}/ — run "
            "`python benchmarks/perf.py` to record the first point"
        )
        if args.check:
            print(
                "error: --check needs at least one BENCH file",
                file=sys.stderr,
            )
            return 2
        return 0
    print(format_trend(benches))
    if not args.check:
        return 0
    current = benches[-1][1]
    if args.against is not None:
        try:
            baseline = json.loads(Path(args.against).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: unreadable baseline: {error}", file=sys.stderr)
            return 2
    elif len(benches) >= 2:
        baseline = benches[-2][1]
    else:
        print("\nonly one BENCH point; nothing to check against")
        return 0
    try:
        regressions = compare_benches(
            current, baseline, tolerance=args.tolerance
        )
    except (KeyError, TypeError, ValueError) as error:
        print(f"error: malformed bench payload: {error}", file=sys.stderr)
        return 2
    if regressions:
        print(f"\nREGRESSIONS (tolerance {args.tolerance:.0%}):")
        for regression in regressions:
            print(f"  {regression.describe()}")
        return 1
    print(f"\nno regressions (tolerance {args.tolerance:.0%})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve one LI policy over real sockets until SIGINT or --duration."""
    import asyncio
    import contextlib
    import signal

    import numpy as np

    from repro.live.backend import BackendServer
    from repro.live.board import BulletinBoard
    from repro.live.dispatcher import LiveDispatcher
    from repro.live.harness import LiveSpec
    from repro.live.protocol import LiveClock
    from repro.overload.parse import parse_admission_spec, parse_breaker_spec

    try:
        spec = LiveSpec(
            policy=args.policy,
            num_servers=args.servers,
            load=args.load,
            period=args.period,
            seed=args.seed,
            time_unit=args.time_unit,
            queue_capacity=args.queue_capacity,
            admission=args.admission,
            breaker=args.breaker,
            estimator=args.estimator,
            host=args.host,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    async def serve() -> int:
        seed_seq = np.random.SeedSequence(spec.seed)
        backend_seeds = seed_seq.spawn(spec.num_servers)
        (dispatcher_seed,) = seed_seq.spawn(1)
        clock = LiveClock(spec.time_unit)
        backends = [
            BackendServer(
                i,
                time_unit=spec.time_unit,
                queue_capacity=spec.queue_capacity,
                seed=backend_seeds[i],
                host=spec.host,
            )
            for i in range(spec.num_servers)
        ]
        started: list = []
        board = dispatcher = None
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            for backend in backends:
                await backend.start()
                started.append(backend)
            clock.start()
            board = BulletinBoard(
                [backend.address for backend in backends],
                spec.period,
                clock,
            )
            await board.start()
            dispatcher = LiveDispatcher(
                [backend.address for backend in backends],
                board,
                spec.make_policy(),
                clock,
                rate_estimator=spec.make_estimator(),
                true_rate=spec.load,
                admission=(
                    parse_admission_spec(spec.admission)
                    if spec.admission
                    else None
                ),
                breaker_config=(
                    parse_breaker_spec(spec.breaker) if spec.breaker else None
                ),
                seed=dispatcher_seed,
                host=spec.host,
                port=args.port,
            )
            await dispatcher.start()
            for backend in backends:
                print(
                    f"backend {backend.server_id}: "
                    f"{backend.host}:{backend.port}"
                )
            print(
                f"dispatcher ({spec.policy}, T={spec.period:g}, "
                f"estimator={spec.estimator}): "
                f"{dispatcher.host}:{dispatcher.port}"
            )
            print("serving; Ctrl-C drains in-flight requests and exits")
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signal.SIGINT, stop_event.set)
                loop.add_signal_handler(signal.SIGTERM, stop_event.set)
            try:
                if args.duration is not None:
                    with contextlib.suppress(asyncio.TimeoutError, TimeoutError):
                        await asyncio.wait_for(
                            stop_event.wait(), timeout=args.duration
                        )
                else:
                    await stop_event.wait()
            except KeyboardInterrupt:  # signal handler unavailable
                pass
        finally:
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.remove_signal_handler(signal.SIGINT)
                loop.remove_signal_handler(signal.SIGTERM)
            if dispatcher is not None:
                await dispatcher.stop()
            if board is not None:
                await board.stop()
            for backend in started:
                await backend.stop()
        stats = dispatcher.stats
        print(
            f"served {stats.completed}/{stats.offered} requests "
            f"(shed={stats.shed} rejected={stats.rejected}); "
            f"mean RT {stats.mean_latency:.3f} time units"
        )
        return 0

    return asyncio.run(serve())


def _cmd_live_bench(args: argparse.Namespace) -> int:
    """Run live cells over loopback; print measured vs predicted."""
    import json
    import pathlib

    from repro.live.harness import (
        LIVE_POLICIES,
        LiveSpec,
        compare_live_to_sim,
        run_live_experiment,
        simulator_prediction,
    )

    labels = (
        [label.strip() for label in args.policies.split(",")]
        if args.policies
        else [args.policy]
    )
    for label in labels:
        if label not in LIVE_POLICIES:
            print(
                f"error: unknown live policy {label!r}; available: "
                f"{', '.join(LIVE_POLICIES)}",
                file=sys.stderr,
            )
            return 2
    cache = None
    if args.cache is not None:
        from repro.ablation.cache import ResultCache

        cache = ResultCache(args.cache)
    print(
        f"live-bench: n={args.servers} load={args.load:g} "
        f"T={args.period:g} jobs={args.jobs} seed={args.seed} "
        f"time_unit={args.time_unit:g}s estimator={args.estimator} "
        f"mode={args.mode}"
    )
    header = (
        f"{'policy':<16} {'live_rt':>8} {'sim_rt':>8} {'rel_err':>8} "
        f"{'goodput':>8} {'polls':>6} {'wall_s':>7}"
    )
    print(header)
    sim_seeds = tuple(range(1, args.sim_seeds + 1))
    rows = []
    worst = 0.0
    for label in labels:
        try:
            spec = LiveSpec(
                policy=label,
                num_servers=args.servers,
                load=args.load,
                period=args.period,
                jobs=args.jobs,
                seed=args.seed,
                time_unit=args.time_unit,
                queue_capacity=args.queue_capacity,
                admission=args.admission,
                breaker=args.breaker,
                estimator=args.estimator,
                arrivals=args.arrivals,
                mode=args.mode,
                clients=args.clients,
                host=args.host,
            )
            live = run_live_experiment(spec)
            if spec.mode == "open":
                sim = simulator_prediction(
                    spec, jobs=args.sim_jobs, seeds=sim_seeds, cache=cache
                )
                comparison = compare_live_to_sim(live, sim=sim)
            else:
                sim = None
                comparison = {"live": live.to_manifest()["results"]}
        except (ValueError, TypeError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        relative = comparison.get("relative_error")
        sim_rt = sim["mean_response_time"] if sim else float("nan")
        print(
            f"{label:<16} {live.mean_response_time:>8.3f} {sim_rt:>8.3f} "
            f"{(relative if relative is not None else float('nan')):>+8.3f} "
            f"{live.goodput:>8.4f} {live.board_polls:>6} "
            f"{live.wall_seconds:>7.2f}"
        )
        rows.append(
            {"policy": label, "manifest": live.to_manifest(), "sim": sim,
             "relative_error": relative}
        )
        if relative is not None and abs(relative) > worst:
            worst = abs(relative)
    if args.json is not None:
        target = pathlib.Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump({"cells": rows}, handle, indent=2)
        print(f"wrote {target}")
    if args.check_tolerance is not None and worst > args.check_tolerance:
        print(
            f"FAIL: worst |relative error| {worst:.3f} exceeds tolerance "
            f"{args.check_tolerance:g}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Faulted live run over loopback vs the simulator's prediction."""
    import json
    import pathlib

    from repro.live.harness import (
        LiveSpec,
        compare_live_to_sim,
        run_live_experiment,
        simulator_prediction,
    )

    cache = None
    if args.cache is not None:
        from repro.ablation.cache import ResultCache

        cache = ResultCache(args.cache)
    try:
        spec = LiveSpec(
            policy=args.policy,
            num_servers=args.servers,
            load=args.load,
            period=args.period,
            jobs=args.jobs,
            seed=args.seed,
            time_unit=args.time_unit,
            queue_capacity=args.queue_capacity,
            admission=args.admission,
            breaker=args.breaker,
            estimator=args.estimator,
            host=args.host,
            faults=args.faults or None,
            impair=args.impair,
            health=args.health,
            board_max_age=args.board_max_age,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"chaos: policy={spec.policy} n={spec.num_servers} "
        f"load={spec.load:g} T={spec.period:g} jobs={spec.jobs} "
        f"seed={spec.seed} faults={spec.faults!r}"
        + (f" impair={spec.impair!r}" if spec.impair else "")
        + (f" health={spec.health!r}" if spec.health else "")
    )
    try:
        live = run_live_experiment(spec)
        if spec.faults is not None:
            sim = simulator_prediction(
                spec,
                jobs=args.sim_jobs,
                seeds=tuple(range(1, args.sim_seeds + 1)),
                cache=cache,
            )
            comparison = compare_live_to_sim(live, sim=sim)
        else:  # impairment-only: the simulator has no impairment model
            sim = None
            comparison = {"live": live.to_manifest()["results"]}
    except (ValueError, TypeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    relative = comparison.get("relative_error")
    chaos = live.chaos or {}
    trace = chaos.get("trace", {})
    board = chaos.get("board", {})
    print(
        f"{'live_rt':>8} {'sim_rt':>8} {'rel_err':>8} {'goodput':>8} "
        f"{'retries':>7} {'failed':>6} {'evicted':>7} {'loop_err':>8} "
        f"{'wall_s':>7}"
    )
    sim_rt = sim["mean_response_time"] if sim else float("nan")
    print(
        f"{live.mean_response_time:>8.3f} {sim_rt:>8.3f} "
        f"{(relative if relative is not None else float('nan')):>+8.3f} "
        f"{live.goodput:>8.4f} {live.retries:>7} {live.jobs_failed:>6} "
        f"{board.get('entries_evicted', 0):>7} {live.loop_errors:>8} "
        f"{live.wall_seconds:>7.2f}"
    )
    for event in chaos.get("injected", []):
        print(
            f"  t={event['t']:<8g} server {event['server']} "
            f"{event['action']} (applied at t={event['applied']:.2f})"
            + (
                f" factor {event['factor']:g}"
                if event["action"] == "set-rate"
                else ""
            )
        )
    recoveries = trace.get("recoveries", [])
    if recoveries:
        latencies = ", ".join(
            f"server {r['server']}: {r['latency']:.1f}" for r in recoveries
        )
        print(f"  measured recovery latencies (time units): {latencies}")
    if args.json is not None:
        target = pathlib.Path(args.json)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "manifest": live.to_manifest(),
                    "sim": sim,
                    "relative_error": relative,
                },
                handle,
                indent=2,
            )
        print(f"wrote {target}")
    if args.check_tolerance is not None:
        if live.loop_errors:
            print(
                f"FAIL: {live.loop_errors} event-loop error(s) during the "
                "live run",
                file=sys.stderr,
            )
            return 1
        if relative is not None and abs(relative) > args.check_tolerance:
            print(
                f"FAIL: |relative error| {abs(relative):.3f} exceeds "
                f"tolerance {args.check_tolerance:g}",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
