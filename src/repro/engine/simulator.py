"""The discrete-event loop: clock, scheduling and stop conditions."""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.engine.events import Event, EventQueue

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the event loop is driven into an invalid state."""


class Simulator:
    """A minimal but complete discrete-event simulator.

    The simulator owns the clock and the event calendar.  Components
    schedule callbacks with :meth:`schedule` (absolute time) or
    :meth:`schedule_after` (relative delay); processes that re-schedule
    themselves model recurring activities such as periodic bulletin-board
    refreshes.

    Time never flows backwards: scheduling an event strictly in the past
    raises :class:`SimulationError`, which catches a large class of model
    bugs at their source rather than as corrupted statistics.
    """

    __slots__ = (
        "_queue",
        "_now",
        "_running",
        "_stop_requested",
        "_hooks",
        "events_processed",
    )

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._stop_requested = False
        self._hooks: list[Callable[[float], Any]] = []
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live events on the calendar."""
        return len(self._queue)

    def schedule(
        self, time: float, action: Callable[[], Any], priority: int = 0
    ) -> Event:
        """Schedule ``action`` at absolute ``time``.

        ``time`` may equal :attr:`now` (the event fires during the current
        sweep of the loop) but must not precede it, and must be finite —
        an event at ``inf`` or ``nan`` would silently wedge the calendar.
        """
        if not math.isfinite(time):
            raise SimulationError(
                f"cannot schedule event at non-finite time t={time}"
            )
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        return self._queue.push(time, action, priority)

    def schedule_after(
        self, delay: float, action: Callable[[], Any], priority: int = 0
    ) -> Event:
        """Schedule ``action`` after a non-negative, finite ``delay``."""
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, action, priority)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    def add_hook(self, hook: Callable[[float], Any]) -> None:
        """Register an observer called with the clock after every event.

        This is the engine-level probe point: observers (e.g. queue-trace
        sampling in :mod:`repro.obs`) see every instant at which state can
        have changed without adding anything to the event calendar, so
        they cannot perturb event ordering or randomness.  With no hooks
        registered the event loop pays a single truthiness check per
        event — the zero-overhead contract of the observability layer.

        Hooks must not schedule events or mutate simulation state.
        """
        if hook in self._hooks:
            raise SimulationError("hook is already registered")
        self._hooks.append(hook)

    def remove_hook(self, hook: Callable[[float], Any]) -> None:
        """Unregister an event hook; unknown hooks are ignored."""
        try:
            self._hooks.remove(hook)
        except ValueError:
            pass

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in time order and return the final clock value.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire after ``until``
            and advance the clock exactly to ``until``.
        max_events:
            Safety valve: raise :class:`SimulationError` if more than this
            many events fire (guards against runaway self-scheduling loops).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stop_requested = False
        try:
            while True:
                if self._stop_requested:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = max(self._now, until)
                    break
                event = self._queue.pop()
                self._now = event.time
                event.action()
                self.events_processed += 1
                if self._hooks:
                    for hook in self._hooks:
                        hook(self._now)
                if max_events is not None and self.events_processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "likely a runaway scheduling loop"
                    )
            if until is not None and not self._stop_requested and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False
