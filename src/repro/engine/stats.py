"""Streaming statistics for simulation measurement.

Provides numerically stable single-pass accumulators (Welford's algorithm),
Student-t confidence intervals for replication means (the paper reports 90%
confidence intervals over >= 10 seeds), and the percentile box summaries
(median, quartiles, min/max) that the Bounded Pareto experiments use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "RunningStats",
    "ConfidenceInterval",
    "PercentileSummary",
    "LogBinnedHistogram",
    "mean_confidence_interval",
]


class RunningStats:
    """Welford single-pass mean/variance accumulator.

    Numerically stable for long simulations where naive sum-of-squares
    accumulation loses precision.

    Examples
    --------
    >>> acc = RunningStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     acc.add(x)
    >>> acc.mean
    2.0
    >>> round(acc.variance, 10)
    1.0
    """

    __slots__ = ("_count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold several observations into the accumulator."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel Welford)."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count = other._count
            self._mean = other._mean
            self._m2 = other._m2
            self._min = other._min
            self._max = other._max
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._mean += delta * other._count / total
        self._count = total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def count(self) -> int:
        """Number of observations folded in so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean; 0.0 when empty."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (n - 1 denominator); 0.0 for n < 2."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation; +inf when empty."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest observation; -inf when empty."""
        return self._max

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunningStats(count={self._count}, mean={self.mean:.6g}, "
            f"stddev={self.stddev:.6g})"
        )


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean."""

    mean: float
    half_width: float
    confidence: float
    samples: int

    @property
    def low(self) -> float:
        """Lower endpoint of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper endpoint of the interval."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval (inclusive)."""
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.half_width:.4f}"


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.90
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean of i.i.d. ``samples``.

    This is the interval the paper draws around each data point, computed
    over per-seed replication means.  With a single sample the half width
    is 0 (no dispersion information) rather than undefined.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    n = len(samples)
    if n == 0:
        raise ValueError("need at least one sample")
    mean = float(np.mean(samples))
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, confidence=confidence, samples=1)
    sem = float(np.std(samples, ddof=1)) / math.sqrt(n)
    t_crit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(
        mean=mean, half_width=t_crit * sem, confidence=confidence, samples=n
    )


class LogBinnedHistogram:
    """A streaming histogram with geometrically spaced bins.

    Response times in a herding cluster span several orders of magnitude;
    a log-binned histogram captures the whole tail in O(bins) memory with
    bounded relative error per bin, which is what observability traces
    need from a run of millions of jobs.

    Bin ``k >= 1`` covers ``[min_value * growth**(k-1), min_value *
    growth**k)``; bin 0 is the underflow bin for values below
    ``min_value``.  ``growth = 2 ** (1 / bins_per_doubling)``, so
    ``bins_per_doubling=8`` bounds per-bin relative error at ~9%.

    Examples
    --------
    >>> hist = LogBinnedHistogram()
    >>> for v in [0.5, 1.0, 2.0, 4.0, 64.0]:
    ...     hist.add(v)
    >>> hist.count
    5
    >>> hist.quantile(0.5) >= 1.0
    True
    """

    __slots__ = ("_min_value", "_growth", "_log_growth", "_counts", "stats")

    def __init__(
        self, min_value: float = 1e-3, bins_per_doubling: int = 8
    ) -> None:
        if min_value <= 0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        if bins_per_doubling < 1:
            raise ValueError(
                f"bins_per_doubling must be >= 1, got {bins_per_doubling}"
            )
        self._min_value = float(min_value)
        self._growth = 2.0 ** (1.0 / bins_per_doubling)
        self._log_growth = math.log(self._growth)
        self._counts: dict[int, int] = {}
        self.stats = RunningStats()

    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self.stats.count

    def add(self, value: float) -> None:
        """Record one non-negative observation."""
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        if value < self._min_value:
            index = 0
        else:
            index = int(math.log(value / self._min_value) / self._log_growth) + 1
        self._counts[index] = self._counts.get(index, 0) + 1
        self.stats.add(value)

    def bin_edges(self, index: int) -> tuple[float, float]:
        """The ``[low, high)`` value range covered by bin ``index``."""
        if index < 0:
            raise ValueError(f"bin index must be >= 0, got {index}")
        if index == 0:
            return (0.0, self._min_value)
        return (
            self._min_value * self._growth ** (index - 1),
            self._min_value * self._growth ** index,
        )

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` quantile (upper edge of the covering bin).

        The estimate is exact to within one bin's relative width; the true
        observed maximum bounds the top bin.
        """
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        if not self._counts:
            raise ValueError("histogram is empty")
        target = q * self.stats.count
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= target:
                return min(self.bin_edges(index)[1], self.stats.maximum)
        return self.stats.maximum  # pragma: no cover - float safety net

    def merge(self, other: "LogBinnedHistogram") -> None:
        """Fold another histogram (same binning) into this one."""
        if (
            other._min_value != self._min_value
            or other._growth != self._growth
        ):
            raise ValueError("cannot merge histograms with different binning")
        for index, count in other._counts.items():
            self._counts[index] = self._counts.get(index, 0) + count
        self.stats.merge(other.stats)

    def to_dict(self) -> dict:
        """JSON-serializable digest: aggregates plus non-empty bins."""
        bins = [
            {
                "low": self.bin_edges(index)[0],
                "high": self.bin_edges(index)[1],
                "count": count,
            }
            for index, count in sorted(self._counts.items())
        ]
        payload = {
            "count": self.stats.count,
            "mean": self.stats.mean,
            "stddev": self.stats.stddev,
            "min": self.stats.minimum if self.stats.count else None,
            "max": self.stats.maximum if self.stats.count else None,
            "bins": bins,
        }
        if self.stats.count:
            payload["p50"] = self.quantile(0.50)
            payload["p90"] = self.quantile(0.90)
            payload["p99"] = self.quantile(0.99)
        return payload


@dataclass(frozen=True, slots=True)
class PercentileSummary:
    """The box-plot summary used for the Bounded Pareto experiments.

    The paper reports, per configuration, the median of the trial means, a
    box spanning the 25th to 75th percentiles, and whiskers to the min and
    max observed across trials.
    """

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    samples: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "PercentileSummary":
        """Build the summary from raw trial values."""
        if len(samples) == 0:
            raise ValueError("need at least one sample")
        values = np.asarray(samples, dtype=float)
        return cls(
            minimum=float(values.min()),
            p25=float(np.percentile(values, 25)),
            median=float(np.percentile(values, 50)),
            p75=float(np.percentile(values, 75)),
            maximum=float(values.max()),
            samples=len(samples),
        )

    def __str__(self) -> str:
        return (
            f"median={self.median:.4f} "
            f"[box {self.p25:.4f}..{self.p75:.4f}] "
            f"[whiskers {self.minimum:.4f}..{self.maximum:.4f}]"
        )
