"""Discrete-event simulation engine substrate.

This subpackage provides the generic machinery every experiment in the
reproduction is built on:

* :mod:`repro.engine.rng` — reproducible, independently seeded random
  streams derived from a single master seed.
* :mod:`repro.engine.events` — the event calendar (binary-heap priority
  queue with deterministic tie-breaking).
* :mod:`repro.engine.simulator` — the event loop: clock, scheduling,
  stop conditions and periodic processes.
* :mod:`repro.engine.stats` — streaming statistics (Welford accumulators,
  confidence intervals, percentile summaries) used for measurement.

The engine is deliberately paper-agnostic: nothing in it knows about load
balancing.  The cluster, staleness and policy layers are built on top.
"""

from repro.engine.events import Event, EventQueue
from repro.engine.rng import RandomStreams
from repro.engine.simulator import Simulator
from repro.engine.stats import (
    ConfidenceInterval,
    PercentileSummary,
    RunningStats,
    mean_confidence_interval,
)

__all__ = [
    "Event",
    "EventQueue",
    "RandomStreams",
    "Simulator",
    "ConfidenceInterval",
    "PercentileSummary",
    "RunningStats",
    "mean_confidence_interval",
]
