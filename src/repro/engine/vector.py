"""Vectorized batch kernel for periodic-board runs at large ``n``.

The phase-batched fast path (:mod:`repro.engine.fastpath`) already batches
the random draws, but its FCFS integration is a scalar Python loop — one
iteration per arrival — which caps it near a million arrivals per second
regardless of cluster size.  This module replays the *same* batched phases
with the per-arrival loop replaced by numpy array arithmetic, so the cost
per phase is a handful of O(batch) vector operations instead of O(batch)
interpreter iterations.  At ``n`` in the thousands (tens of arrivals per
server per phase) the kernel sustains millions of arrivals per second.

The contract is the same **bit-identity** the fast path guarantees against
the event engine — and the cross-engine equivalence tests enforce it
transitively: ``event ≡ fast ≡ vector``, the same floats.  Eligibility is
therefore *identical* to the fast path's
(:meth:`ClusterSimulation.fast_path_blocker`): anything the fast path
cannot replay, the vector kernel cannot either.

How each stage stays bitwise equal while vectorized:

* RNG streams — consumed in exactly the fast path's order: batched
  arrival gaps + the trailing unused draw, lossy-board drop uniforms,
  one ``select_batch`` per phase, one batched service draw.
* FCFS recurrence — the scalar loop computes, per job on server ``s``,
  ``completion = max(arrival, last_s) + service / rate_s``.  Jobs of one
  phase are grouped by server (stable argsort, so within-server order is
  preserved) and laid out in a ``(rounds, n)`` matrix: round ``r`` holds
  every server's ``r``-th job of the phase.  The recurrence then advances
  one round at a time with elementwise ``np.maximum``/``/``/``+`` — IEEE
  754 elementwise operations are bitwise identical to the same scalar
  operations, and servers with fewer jobs are padded with zeros, for which
  ``max(0.0, last) + 0.0/rate`` reproduces ``last`` exactly (completions
  are non-negative and the padding adds exactly ``0.0``).
* Board sampling — the scalar path bisects per-server arrival/completion
  lists at each refresh; every previously dispatched job arrived strictly
  before the refresh instant, so the queue length is simply dispatches
  minus completions-so-far, computed with ``np.bincount`` over an
  incrementally maintained pending set (exact integer arithmetic).  The
  work-backlog metric needs ``last_completion - t`` for busy servers —
  the same float subtraction the scalar path performs.
* Welford mean — float summation is not reorderable, so the measurement
  fold stays a sequential Python loop over responses in global arrival
  order, identical operation for operation to the event engine's
  ``RunningStats.add``.  This loop is the kernel's asymptotic ceiling
  (a few million jobs per second) and is intentionally not "optimized".
"""

from __future__ import annotations

import numpy as np

from repro.cluster.job import Job
from repro.engine.fastpath import (
    _refresh_attempt_times,
    validate_fast_path_inputs,
)
from repro.engine.rng import RandomStreams
from repro.staleness.base import LoadView
from repro.staleness.lossy import LossyPeriodicUpdate

__all__ = ["run_vector_path"]


def run_vector_path(simulation):
    """Run ``simulation`` with the vectorized batch kernel.

    Callers should not invoke this directly: construct the simulation with
    ``engine="vector"`` instead.  The precondition is that
    ``simulation.fast_path_blocker()`` returned ``None`` (the vector
    kernel replays exactly the set of configurations the fast path does).
    """
    from repro.cluster.simulation import SimulationResult

    num_servers = simulation.num_servers
    staleness = simulation.staleness
    period = staleness.period
    arrival_rate = simulation.arrivals.total_rate
    total_jobs = simulation.total_jobs
    rates = simulation.server_rates or [1.0] * num_servers
    validate_fast_path_inputs(
        num_servers, arrival_rate, period, rates, total_jobs
    )

    streams = RandomStreams(simulation.seed)
    arrivals_rng = streams.stream("arrivals")
    staleness_rng = streams.stream("staleness")
    simulation.rate_estimator.bind(num_servers, simulation._per_server_rate())
    rate_vector = np.asarray(rates, dtype=np.float64)
    simulation.policy.bind(
        num_servers,
        streams.stream("policy"),
        simulation.rate_estimator,
        server_rates=rate_vector,
    )
    service_rng = streams.stream("service")

    # -- arrivals: identical batched draws and sequential accumulation --
    mean_gap = 1.0 / arrival_rate
    arrival_times = np.cumsum(arrivals_rng.exponential(mean_gap, total_jobs))
    arrivals_rng.exponential(mean_gap)  # the event loop's final, unused gap
    last_arrival = float(arrival_times[-1])

    # -- board refreshes: attempts, drop draws, phase boundaries --------
    attempt_times = _refresh_attempt_times(period, last_arrival)
    if isinstance(staleness, LossyPeriodicUpdate):
        drops = staleness_rng.random(len(attempt_times)) < staleness.drop_probability
        success_times = [
            t for t, dropped in zip(attempt_times, drops) if not dropped
        ]
        staleness.refreshes_attempted = len(attempt_times)
        staleness.refreshes_dropped = len(attempt_times) - len(success_times)
    else:
        success_times = attempt_times
    success_arr = np.asarray(success_times, dtype=np.float64)
    phase_bounds = np.concatenate(
        (
            [0],
            np.searchsorted(arrival_times, success_arr, side="left"),
            [total_jobs],
        )
    )

    # -- service times: one batch draw, identical to per-arrival draws --
    service_times = simulation.service.sample_array(service_rng, total_jobs)

    policy = simulation.policy
    metric = staleness.metric
    warmup_jobs = int(total_jobs * simulation.warmup_fraction)
    latency_row = None
    if simulation.client_latency is not None:
        # PoissonArrivals emits client id 0 only.
        latency_row = simulation.client_latency[0 % simulation.client_latency.shape[0]]

    # Per-server FCFS state, advanced one phase at a time.
    last_completion = np.zeros(num_servers, dtype=np.float64)
    dispatch_counts = np.zeros(num_servers, dtype=np.int64)
    # Jobs dispatched but not yet counted as departed at a board refresh:
    # (server id, completion time) pairs, filtered incrementally so each
    # refresh costs O(outstanding + batch), not O(all jobs so far).
    pending_servers = np.empty(0, dtype=np.int64)
    pending_completions = np.empty(0, dtype=np.float64)
    departed_counts = np.zeros(num_servers, dtype=np.int64)

    all_selections = np.empty(total_jobs, dtype=np.int64)
    all_completions = np.empty(total_jobs, dtype=np.float64)
    all_responses = np.empty(total_jobs, dtype=np.float64)

    def sample_board(at_time: float) -> np.ndarray:
        """The load report the event engine would sample at ``at_time``.

        Every job dispatched in earlier phases arrived strictly before the
        refresh instant (phase boundaries use ``side="left"``), so present
        counts equal total dispatches; only completions need a time test.
        """
        nonlocal pending_servers, pending_completions
        done = pending_completions <= at_time
        if done.any():
            departed_counts[:] += np.bincount(
                pending_servers[done], minlength=num_servers
            )
            keep = ~done
            pending_servers = pending_servers[keep]
            pending_completions = pending_completions[keep]
        queue_lengths = dispatch_counts - departed_counts
        if metric == "work-backlog":
            # Busy servers report time-to-drain: last completion minus
            # now — the same subtraction the scalar path performs on the
            # identical last-completion float.
            return np.where(
                queue_lengths == 0, 0.0, last_completion - at_time
            )
        return queue_lengths.astype(np.float64)

    board = np.zeros(num_servers, dtype=np.float64)  # exact at t = 0
    info_time = 0.0
    for phase in range(len(success_times) + 1):
        if phase > 0:
            info_time = float(success_arr[phase - 1])
            board = sample_board(info_time)
        low = int(phase_bounds[phase])
        high = int(phase_bounds[phase + 1])
        if high == low:
            continue  # a phase with no arrivals consumes no draws
        batch_times = arrival_times[low:high]
        view = LoadView(
            loads=board,
            version=phase,
            info_time=info_time,
            now=float(batch_times[0]),
            horizon=period,
            elapsed=float(batch_times[0]) - info_time,
            known_age=True,
            phase_based=True,
            client_id=0,
        )
        selections = np.asarray(policy.select_batch(view, batch_times))
        if selections.shape != (high - low,) or (
            (selections < 0) | (selections >= num_servers)
        ).any():
            raise RuntimeError(
                f"{type(policy).__name__}.select_batch returned invalid "
                f"selections for a batch of {high - low} arrivals "
                f"(cluster size {num_servers})"
            )
        selections = selections.astype(np.int64, copy=False)
        batch_services = service_times[low:high]

        # Group the phase's jobs by server, preserving within-server
        # arrival order (stable sort), and scatter them into a
        # (rounds, n) layout: row r holds each server's r-th job.
        order = np.argsort(selections, kind="stable")
        sorted_servers = selections[order]
        counts = np.bincount(selections, minlength=num_servers)
        rounds = int(counts.max())
        group_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        position = np.arange(selections.size) - group_starts[sorted_servers]

        arrivals_grid = np.zeros((rounds, num_servers), dtype=np.float64)
        services_grid = np.zeros((rounds, num_servers), dtype=np.float64)
        arrivals_grid[position, sorted_servers] = batch_times[order]
        services_grid[position, sorted_servers] = batch_services[order]

        # The FCFS recurrence, one round across all servers at a time.
        # Padding cells (arrival 0, service 0) reproduce last_completion
        # bitwise: max(0, last) + 0/rate == last.
        completions_grid = np.empty((rounds, num_servers), dtype=np.float64)
        for r in range(rounds):
            start = np.maximum(arrivals_grid[r], last_completion)
            last_completion = start + services_grid[r] / rate_vector
            completions_grid[r] = last_completion

        batch_completions = np.empty(selections.size, dtype=np.float64)
        batch_completions[order] = completions_grid[position, sorted_servers]
        batch_responses = batch_completions - batch_times
        if latency_row is not None:
            batch_responses = batch_responses + latency_row[selections]

        all_selections[low:high] = selections
        all_completions[low:high] = batch_completions
        all_responses[low:high] = batch_responses
        dispatch_counts += counts
        pending_servers = np.concatenate((pending_servers, selections))
        pending_completions = np.concatenate(
            (pending_completions, batch_completions)
        )

    # -- measurement fold: sequential Welford, identical to the event
    # engine's RunningStats.add (float summation is order-sensitive, so
    # this stays a scalar loop over global arrival order).
    measured = 0
    mean = 0.0
    measured_tail = all_responses[warmup_jobs:]
    # The scalar paths fold python floats — except when a latency row is
    # added, which promotes each response (and thus the mean) to
    # np.float64.  Match the element type so the mean's type matches too.
    responses_seq = (
        list(measured_tail) if latency_row is not None else measured_tail.tolist()
    )
    for response in responses_seq:
        measured += 1
        delta = response - mean
        mean += delta / measured

    job_trace: list[Job] | None = None
    if simulation.trace_jobs:
        job_trace = [
            Job(
                index=i,
                client_id=0,
                server_id=int(all_selections[i]),
                arrival_time=float(arrival_times[i]),
                service_time=float(service_times[i]),
                completion_time=float(all_completions[i]),
                retries=0,
                penalty=0.0,
            )
            for i in range(total_jobs)
        ]

    return SimulationResult(
        mean_response_time=mean if measured else 0.0,
        jobs_measured=measured,
        jobs_total=total_jobs,
        duration=last_arrival,
        dispatch_counts=dispatch_counts,
        response_times=(
            all_responses[warmup_jobs:].copy()
            if simulation.trace_response_times
            else None
        ),
        trace=job_trace,
    )
