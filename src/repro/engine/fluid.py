"""Mean-field (fluid-limit) engine for periodic-staleness dispatch.

The event, fast and vector engines all simulate a *finite* cluster job by
job.  This engine instead solves the n → ∞ mean-field model of the same
system, giving mean-response curves whose cost is independent of the job
count — the natural tool for the ROADMAP's production-scale regime, and
an independent analytic check on the simulators (the cross-validation
tests require the two to converge as n grows).

The model (full derivation in DESIGN.md §11):

* State is the *board distribution* ``f``: ``f[j]`` is the fraction of
  servers whose last report was queue length ``j``.  Under periodic
  staleness every server reports truthfully at the refresh instant, so
  immediately after a refresh the joint (reported, actual) law is
  diagonal — class ``j`` starts the phase with exactly ``j`` jobs.

* Within a phase the board is frozen, so each policy reduces to a fixed
  probability vector ``w`` over reported levels (``w[j]`` = fraction of
  arrivals routed to class ``j``; see :func:`routing_weights`).  Jobs
  arrive Poisson and servers are exponential, hence each class evolves
  as an independent M/M/1 birth–death chain with arrival rate
  ``a_j = λ·w[j]/f[j]`` and service rate μ, started from ``δ_j``.

* The phase map sends ``f`` to the refresh-time mixture
  ``f'[k] = Σ_j f[j]·g_j(k, T)`` where ``g_j`` is the class-``j``
  transient after one period ``T``.  Its fixed point is the model's
  periodic steady state; the mean response time follows from Little's
  law, ``E[T_resp] = E[N] / λ``, with ``E[N]`` time-averaged over one
  period at the fixed point.

Transients are integrated by **uniformization** (Jensen's method): the
chain is embedded in a Poisson clock of rate ``Λ = max_j a_j + μ`` and
the matrix exponential becomes a Poisson-weighted sum of powers of a
*stochastic* operator.  Unlike Runge–Kutta, every partial sum is a
convex combination of probability vectors, so the computed occupancy
laws are nonnegative and sum to one by construction — the property the
Hypothesis invariant tests pin.

Exactness anchor: for the random policy the phase map is the plain
M/M/1 semigroup, its fixed point the geometric(ρ) law, and the mean
response exactly ``1/(μ − λ)`` — the oracle tests check this closed
form to numerical precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.ksubset import KSubsetPolicy
from repro.core.li_basic import BasicLIPolicy
from repro.core.random_policy import RandomPolicy
from repro.core.threshold import ThresholdPolicy

__all__ = [
    "FluidSolution",
    "routing_weights",
    "fluid_fixed_point",
    "run_fluid",
    "HERD_FLOOR",
]

#: Classes below this board mass are dropped from the phase transient
#: (their arrival rates λ·w/f would be numerically meaningless).
_SUPPORT_EPS = 1e-9

#: Poisson tail mass at which the uniformization series is truncated;
#: the retained weights are renormalized so no mass is lost.
_POISSON_TAIL = 1e-13

#: Cap on Λ·h per uniformization block: keeps ``exp(-Λh)`` well above
#: the subnormal range and the per-block term count near Λh.
_MAX_UNIFORM_EXPONENT = 50.0

#: Smallest fraction of servers the greedy (k = n) limit is allowed to
#: herd onto.  The strict n → ∞ greedy law routes *everything* to the
#: minimum reported level; when that class is vanishingly small the
#: arrival rate λ/f_min diverges and the ODEs turn stiff.  Spreading the
#: mass over the smallest classes up to this floor bounds the class
#: arrival rate by λ/HERD_FLOOR and perturbs the routing law by less
#: than the floor itself.
HERD_FLOOR = 1e-3


@dataclass(frozen=True)
class FluidSolution:
    """The fluid model's periodic steady state for one configuration."""

    #: Fixed-point board distribution over reported queue lengths.
    board: np.ndarray
    #: Routing weights the policy induces at the fixed point.
    weights: np.ndarray
    #: Time-averaged mean queue length per server over one period.
    mean_occupancy: float
    #: Little's-law mean response time, ``mean_occupancy / λ``.
    mean_response_time: float
    #: Whether the fixed-point iteration met ``tol`` within ``max_iters``.
    converged: bool
    #: Phase-map iterations performed.
    iterations: int
    #: Final L1 change of the board distribution per iteration.
    residual: float
    #: Queue-length truncation level of the state space.
    max_level: int


def _greedy_weights(board: np.ndarray, floor: float = HERD_FLOOR) -> np.ndarray:
    """The k = n (greedy) routing law with the herd-floor regularization.

    All arrival mass goes to the lowest reported levels, taken in
    ascending order until at least ``floor`` of the servers is covered,
    split proportionally to class mass.
    """
    weights = np.zeros_like(board)
    accumulated = 0.0
    for level in np.nonzero(board > _SUPPORT_EPS)[0]:
        weights[level] = board[level]
        accumulated += board[level]
        if accumulated >= floor:
            break
    if accumulated <= 0.0:  # degenerate board; fall back to random
        return board / board.sum()
    return weights / accumulated


def routing_weights(
    policy,
    board: np.ndarray,
    num_servers: int,
    window_jobs: float | None = None,
) -> np.ndarray:
    """Fraction of arrivals each reported level receives under ``policy``.

    ``board`` is a probability vector over reported queue lengths; the
    result is a probability vector over the same levels (the simplex
    invariant the property tests pin).  ``num_servers`` only
    distinguishes "probe k of n" from "probe all" variants;
    ``window_jobs`` is the expected per-server arrivals λ̂·T that Basic
    LI water-fills with (required for :class:`BasicLIPolicy`).
    """
    board = np.asarray(board, dtype=np.float64)
    if type(policy) is RandomPolicy:
        return board.copy()
    if type(policy) is KSubsetPolicy:
        if policy.k >= num_servers:
            return _greedy_weights(board)
        # Min of k independent uniform probes lands on level j iff all k
        # probes are >= j and not all are > j.
        survival = 1.0 - np.cumsum(board)
        survival_before = np.concatenate(([1.0], survival[:-1]))
        weights = np.maximum(survival_before, 0.0) ** policy.k - np.maximum(
            survival, 0.0
        ) ** policy.k
        weights = np.maximum(weights, 0.0)
        return weights / weights.sum()
    if type(policy) is ThresholdPolicy:
        levels = np.arange(board.size)
        light = levels <= policy.threshold
        light_mass = float(board[light].sum())
        if policy.k is None or policy.k >= num_servers:
            if light_mass > 0.0:
                weights = np.zeros_like(board)
                weights[light] = board[light] / light_mass
                return weights
            if policy.fallback == "least-loaded":
                return _greedy_weights(board)
            return board.copy()
        # Probe k servers; use a light one if the probe found any,
        # otherwise fall back uniformly among the probed (heavy) ones.
        # (fluid_blocker admits only fallback="random" here.)
        if light_mass <= 0.0:
            return board.copy()
        miss = (1.0 - light_mass) ** policy.k
        heavy_mass = 1.0 - light_mass
        weights = np.zeros_like(board)
        weights[light] = board[light] / light_mass * (1.0 - miss)
        if heavy_mass > 0.0:
            weights[~light] = board[~light] / heavy_mass * miss
        return weights / weights.sum()
    if type(policy) is BasicLIPolicy:
        if window_jobs is None:
            raise ValueError(
                "BasicLIPolicy fluid weights need window_jobs (λ̂·T)"
            )
        return _waterfill_weights(board, window_jobs)
    raise ValueError(
        f"policy {type(policy).__name__} has no fluid routing translation"
    )


def _waterfill_weights(board: np.ndarray, target: float) -> np.ndarray:
    """Basic LI's water-filling, applied to a level *distribution*.

    Solves ``Σ_j board[j]·(L − j)+ = target`` for the common fill level
    ``L`` (the distributional analogue of
    :func:`repro.core.weights.waterfill_probabilities`) and routes
    proportionally to each class's deficit below ``L``.
    """
    support = np.nonzero(board > _SUPPORT_EPS)[0]
    if target <= 0.0 or support.size == 0:
        # No expected arrivals to spread: everything to the minimum, the
        # same degenerate limit the finite-n water-fill takes.
        return _greedy_weights(board)
    mass = 0.0
    weighted_level = 0.0
    fill_level = float(support[-1]) + target  # fallback: above all levels
    for index, level in enumerate(support):
        mass += board[level]
        weighted_level += board[level] * level
        candidate = (target + weighted_level) / mass
        upper = support[index + 1] if index + 1 < support.size else math.inf
        if candidate <= upper:
            fill_level = candidate
            break
    deficits = board * np.maximum(fill_level - np.arange(board.size), 0.0)
    return deficits / deficits.sum()


def _apply_uniformized(
    G: np.ndarray, birth: np.ndarray, death: float, clock: float
) -> np.ndarray:
    """One application of the uniformized transition operator P = I + Q/Λ.

    ``G`` holds one occupancy law per row; ``birth`` the per-row arrival
    rate.  The top level is lossless-truncated (no birth out of it) —
    the truncation level is chosen so its mass is negligible.
    """
    out = G.copy()
    up_flow = G[:, :-1] * (birth[:, None] / clock)
    out[:, :-1] -= up_flow
    out[:, 1:] += up_flow
    down_flow = G[:, 1:] * (death / clock)
    out[:, 1:] -= down_flow
    out[:, :-1] += down_flow
    return out


def _uniformized_block(
    G: np.ndarray, birth: np.ndarray, death: float, duration: float
) -> np.ndarray:
    """Advance every row of ``G`` by ``duration`` via uniformization.

    Caller guarantees ``(max(birth) + death)·duration`` is at most
    :data:`_MAX_UNIFORM_EXPONENT`.  The Poisson-weighted series is
    truncated at tail mass :data:`_POISSON_TAIL` and renormalized, so
    each returned row is an exact convex combination of probability
    vectors — nonnegative and unit-mass to rounding.
    """
    clock = float(birth.max()) + death if birth.size else death
    if clock <= 0.0 or duration <= 0.0:
        return G
    exponent = clock * duration
    weight = math.exp(-exponent)
    term = G
    accumulated = weight * G
    total_weight = weight
    m = 0
    while total_weight < 1.0 - _POISSON_TAIL:
        m += 1
        term = _apply_uniformized(term, birth, death, clock)
        weight *= exponent / m
        accumulated = accumulated + weight * term
        total_weight += weight
    return accumulated / total_weight


def _advance_rows(
    G: np.ndarray, birth: np.ndarray, death: float, duration: float
) -> np.ndarray:
    """Advance every row of ``G`` by ``duration``, sub-blocking per row.

    Uniformization's cost scales with the *largest* row clock: under a
    herding policy one class receives ``λ/HERD_FLOOR``-scale arrivals
    while every other class idles, and a shared clock makes all rows pay
    for that one (minutes per solve at large ``T``).  Rows are instead
    bucketed by how many ``Λ_j·h ≤ _MAX_UNIFORM_EXPONENT`` sub-blocks
    they individually need — the per-class chains are independent, so
    each bucket integrates on its own clock.
    """
    if duration <= 0.0 or G.size == 0:
        return G
    out = np.empty_like(G)
    required = np.ceil((birth + death) * duration / _MAX_UNIFORM_EXPONENT)
    required = np.maximum(required, 1.0).astype(np.int64)
    for steps in np.unique(required):
        rows = np.nonzero(required == steps)[0]
        block = G[rows]
        step = duration / int(steps)
        for _ in range(int(steps)):
            block = _uniformized_block(block, birth[rows], death, step)
        out[rows] = block
    return out


def fluid_fixed_point(
    policy,
    *,
    arrival_rate: float,
    period: float,
    num_servers: int,
    service_rate: float = 1.0,
    window_jobs: float | None = None,
    max_level: int | None = None,
    tol: float = 1e-8,
    max_iters: int = 1000,
    samples: int = 48,
) -> FluidSolution:
    """Solve the fluid phase map to its fixed point and measure it.

    ``arrival_rate`` is the *per-server* λ and ``service_rate`` the
    per-server μ; ``window_jobs`` is Basic LI's λ̂·T (defaults to the
    true λ·T).  ``samples`` controls the trapezoid resolution of the
    final time-average pass; the fixed-point iterations themselves only
    need the end-of-phase law and skip the sampling.  The default
    ``tol`` sits just above the board's own discretization noise
    (truncation at ``max_level`` plus per-block renormalization leave an
    L1 residual floor of a few 1e-9) — tightening it past 1e-9 asks for
    precision the state space does not carry.
    """
    lam = float(arrival_rate)
    mu = float(service_rate)
    T = float(period)
    if lam <= 0.0 or mu <= 0.0 or T <= 0.0:
        raise ValueError("fluid model needs positive λ, μ and period")
    rho = lam / mu
    if rho >= 1.0:
        raise ValueError(
            f"fluid model needs offered load < 1, got rho={rho:.4g} "
            "(an overloaded mean-field queue has no stationary regime)"
        )
    if window_jobs is None and type(policy) is BasicLIPolicy:
        window_jobs = lam * T
    if max_level is None:
        # Deep enough that a geometric(rho) tail beyond it is < 1e-10 —
        # the heaviest stationary tail any supported policy produces.
        max_level = int(
            min(2048, max(48, math.ceil(math.log(1e-10) / math.log(rho)) + 16))
        )
    K = int(max_level)
    levels = np.arange(K + 1, dtype=np.float64)

    def phase(
        board: np.ndarray, measure: bool
    ) -> tuple[np.ndarray, float | None]:
        """One period of the phase map; optionally time-average E[N]."""
        weights = routing_weights(policy, board, num_servers, window_jobs)
        support = np.nonzero(board > _SUPPORT_EPS)[0]
        class_mass = board[support] / board[support].sum()
        class_weight = weights[support]
        weight_total = class_weight.sum()
        if weight_total > 0.0:
            class_weight = class_weight / weight_total
        birth = lam * class_weight / class_mass
        G = np.zeros((support.size, K + 1), dtype=np.float64)
        G[np.arange(support.size), support] = 1.0
        # The outer grid only sets the occupancy-sampling resolution;
        # _advance_rows sub-blocks each class to its own clock within a
        # step, so a hot class never inflates the shared step count.
        blocks = samples if measure else 1
        h = T / blocks
        occupancy_sum = 0.0
        if measure:
            start_occ = float(class_mass @ (G @ levels))
        for block in range(blocks):
            G = _advance_rows(G, birth, mu, h)
            if measure:
                occ = float(class_mass @ (G @ levels))
                # Trapezoid: interior points weight 1, endpoints 1/2.
                occupancy_sum += occ if block < blocks - 1 else 0.5 * occ
        next_board = class_mass @ G
        np.clip(next_board, 0.0, None, out=next_board)
        next_board /= next_board.sum()
        if not measure:
            return next_board, None
        mean_occupancy = (0.5 * start_occ + occupancy_sum) / blocks
        return next_board, mean_occupancy

    # Geometric(rho) start: exact for random, a sane overestimate of the
    # tail for every load-aware policy.
    board = (1.0 - rho) * rho**levels
    board /= board.sum()
    residual = math.inf
    converged = False
    iterations = 0
    # Herding policies at large T drive the phase map into a period-2
    # cycle (the mean-field herd oscillation) instead of a contraction.
    # Averaging successive iterates kills the cycle without moving the
    # fixed point; engage it only when the residual *stalls* over a
    # whole window — a genuine contraction decays measurably every
    # window, so its (fast) plain iteration is never perturbed.
    damped = False
    stall_window = 25
    window_start_residual = math.inf
    for iterations in range(1, max_iters + 1):
        next_board, _ = phase(board, measure=False)
        residual = float(np.abs(next_board - board).sum())
        board = 0.5 * (board + next_board) if damped else next_board
        if residual < tol:
            converged = True
            break
        if iterations % stall_window == 0:
            if residual > 0.9 * window_start_residual:
                damped = True
            window_start_residual = residual
    _, mean_occupancy = phase(board, measure=True)
    weights = routing_weights(policy, board, num_servers, window_jobs)
    return FluidSolution(
        board=board,
        weights=weights,
        mean_occupancy=float(mean_occupancy),
        mean_response_time=float(mean_occupancy) / lam,
        converged=converged,
        iterations=iterations,
        residual=residual,
        max_level=K,
    )


def run_fluid(simulation):
    """Solve ``simulation``'s fluid model and adapt it to SimulationResult.

    Callers should not invoke this directly: construct the simulation
    with ``engine="fluid"`` instead (``fluid_blocker`` has vetted the
    configuration by then).  No jobs are simulated, so the result
    reports ``jobs_measured=0`` / ``jobs_total=0`` and a zero dispatch
    vector; the headline ``mean_response_time`` is the mean-field value
    and the rich solution is kept on ``simulation.last_fluid_summary``.
    """
    from repro.cluster.simulation import SimulationResult

    n = simulation.num_servers
    lam = simulation.arrivals.total_rate / n
    rate = (
        float(simulation.server_rates[0]) if simulation.server_rates else 1.0
    )
    mu = rate / simulation.service.mean
    period = simulation.staleness.period
    simulation.rate_estimator.bind(n, simulation._per_server_rate())
    window_jobs = None
    if type(simulation.policy) is BasicLIPolicy:
        # LI water-fills with the *estimator's* λ̂, not the true λ — a
        # Fixed/Scaled estimator misestimates here exactly as it does in
        # the simulators.
        window_jobs = simulation.rate_estimator.per_server_rate() * period
    solution = fluid_fixed_point(
        simulation.policy,
        arrival_rate=lam,
        period=period,
        num_servers=n,
        service_rate=mu,
        window_jobs=window_jobs,
    )
    simulation.last_fluid_summary = {
        "engine": "fluid",
        "policy": type(simulation.policy).__name__,
        "rho": lam / mu,
        "period": period,
        "mean_response_time": solution.mean_response_time,
        "mean_occupancy": solution.mean_occupancy,
        "converged": solution.converged,
        "iterations": solution.iterations,
        "residual": solution.residual,
        "max_level": solution.max_level,
    }
    return SimulationResult(
        mean_response_time=solution.mean_response_time,
        jobs_measured=0,
        jobs_total=0,
        duration=float(solution.iterations) * period,
        dispatch_counts=np.zeros(n, dtype=np.int64),
    )
