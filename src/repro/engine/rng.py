"""Reproducible multi-stream random number generation.

Simulation studies need *independent* random streams for each stochastic
component (arrival process, service times, policy tie-breaking, ...) so that
changing one component — e.g. swapping the selection policy — does not
perturb the random draws of the others.  This is the classic
common-random-numbers variance-reduction discipline.

:class:`RandomStreams` derives named substreams from a single master seed
using :class:`numpy.random.SeedSequence` spawning keyed by a stable hash of
the stream label, so the mapping ``(master_seed, label) -> stream`` is
deterministic and independent of the order in which streams are requested.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RandomStreams"]


def _label_key(label: str) -> int:
    """Return a stable 32-bit key for a stream label.

    ``zlib.crc32`` is deterministic across processes and Python versions
    (unlike ``hash()``, which is salted per process for strings).
    """
    return zlib.crc32(label.encode("utf-8"))


class RandomStreams:
    """A factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    master_seed:
        The experiment replication seed.  Two ``RandomStreams`` built from
        the same master seed hand out identical streams for identical labels.

    Examples
    --------
    >>> streams = RandomStreams(7)
    >>> arrivals = streams.stream("arrivals")
    >>> service = streams.stream("service")
    >>> float(arrivals.random()) != float(service.random())
    True
    >>> again = RandomStreams(7).stream("arrivals")
    >>> RandomStreams(7).stream("arrivals").random() == again.random()
    """

    def __init__(self, master_seed: int) -> None:
        if master_seed < 0:
            raise ValueError(f"master_seed must be non-negative, got {master_seed}")
        self._master_seed = int(master_seed)
        self._generators: dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The master seed this factory was built from."""
        return self._master_seed

    def stream(self, label: str) -> np.random.Generator:
        """Return the generator for ``label``, creating it on first use.

        Repeated calls with the same label return the *same* generator
        object, so draws continue where they left off.
        """
        generator = self._generators.get(label)
        if generator is None:
            seed_seq = np.random.SeedSequence(
                entropy=self._master_seed, spawn_key=(_label_key(label),)
            )
            generator = np.random.Generator(np.random.PCG64(seed_seq))
            self._generators[label] = generator
        return generator

    def fresh(self, label: str) -> np.random.Generator:
        """Return a *new* generator for ``label``, reset to its initial state.

        Unlike :meth:`stream` this does not share state with previously
        handed-out generators; it is useful for replaying a component's
        draws in tests.
        """
        seed_seq = np.random.SeedSequence(
            entropy=self._master_seed, spawn_key=(_label_key(label),)
        )
        return np.random.Generator(np.random.PCG64(seed_seq))

    def spawn(self, index: int) -> "RandomStreams":
        """Derive an independent child factory (e.g. one per replication)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        # Mix the child index into the master seed through SeedSequence so
        # that children are statistically independent of the parent.
        mixed = np.random.SeedSequence(
            entropy=self._master_seed, spawn_key=(0xC1D, index)
        )
        child_seed = int(mixed.generate_state(1, dtype=np.uint64)[0] >> 1)
        return RandomStreams(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        labels = sorted(self._generators)
        return f"RandomStreams(master_seed={self._master_seed}, streams={labels})"
