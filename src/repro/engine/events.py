"""The event calendar: a binary-heap priority queue with stable ordering.

Events are ordered by ``(time, priority, sequence)``.  The monotonically
increasing sequence number guarantees deterministic FIFO ordering among
events scheduled for the same instant with the same priority, which keeps
simulations exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulation time at which the event fires.
    priority:
        Tie-breaker among same-time events; lower fires first.  Used e.g.
        to make bulletin-board updates observable by arrivals at the same
        instant.
    sequence:
        Insertion order, the final tie-breaker.
    action:
        Zero-argument callable run when the event fires.
    cancelled:
        Lazily-deleted events are marked rather than removed from the heap.
    """

    time: float
    priority: int
    sequence: int
    action: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return any(not event.cancelled for event in self._heap)

    def push(self, time: float, action: Callable[[], Any], priority: int = 0) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        if math.isnan(time):
            raise ValueError("event time must not be NaN")
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            action=action,
        )
        heapq.heappush(self._heap, event)
        return event

    def peek_time(self) -> float | None:
        """Return the fire time of the next live event, or ``None`` if empty."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._discard_cancelled()
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()

    def _discard_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
