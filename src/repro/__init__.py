"""Reproduction of Dahlin, *Interpreting Stale Load Information* (ICDCS '99).

A discrete-event simulation library for load balancing with stale
information.  The quickest route in::

    from repro import (
        BasicLIPolicy, ClusterSimulation, PeriodicUpdate,
        PoissonArrivals, exponential_service,
    )

    sim = ClusterSimulation(
        num_servers=10,
        arrivals=PoissonArrivals(rate=9.0),      # per-server load 0.9
        service=exponential_service(),
        policy=BasicLIPolicy(),
        staleness=PeriodicUpdate(period=10.0),   # board refresh every 10 svc times
        total_jobs=50_000,
        seed=1,
    )
    print(sim.run().mean_response_time)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure.
"""

from repro.analysis import (
    ksubset_rank_distribution,
    mm1_mean_response_time,
    mmc_mean_response_time,
    random_split_response_time,
)
from repro.cluster import ClusterSimulation, Job, Server, SimulationResult
from repro.cluster.stealing import StealingClusterSimulation, StealingConfig
from repro.core import (
    AggressiveLIPolicy,
    BasicLIPolicy,
    DecayedLoadPolicy,
    LocalityAwareLIPolicy,
    NearestServerPolicy,
    RoundRobinPolicy,
    EWMARate,
    ExactRate,
    FixedRate,
    HybridLIPolicy,
    KSubsetPolicy,
    Policy,
    RandomPolicy,
    RateEstimator,
    ScaledRate,
    SubsetLIPolicy,
    ThresholdPolicy,
    WeightedLIPolicy,
    waterfill_probabilities,
    weighted_waterfill_probabilities,
)
from repro.engine import RandomStreams, Simulator
from repro.multidispatch import (
    JoinIdleQueuePolicy,
    LocalShortestQueuePolicy,
    MultiDispatcherPolicy,
    MultiDispatchResult,
    MultiDispatchSimulation,
)
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    RetryPolicy,
    ServerState,
    parse_fault_spec,
)
from repro.overload import (
    AdmissionPolicy,
    AlwaysAdmit,
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    OverloadConfig,
    ProbabilisticShed,
    RetryStormConfig,
    StaleBoardShed,
    build_overload_config,
)
from repro.staleness import (
    ContinuousUpdate,
    IndividualUpdate,
    LoadView,
    LossyPeriodicUpdate,
    PeriodicUpdate,
    StalenessModel,
    UpdateOnAccess,
)
from repro.workloads import (
    BoundedPareto,
    BurstyClientArrivals,
    ClientArrivals,
    Constant,
    Exponential,
    PoissonArrivals,
    Uniform,
    bounded_pareto_service,
    exponential_service,
)

__version__ = "1.0.0"

__all__ = [
    # core policies
    "Policy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "KSubsetPolicy",
    "ThresholdPolicy",
    "BasicLIPolicy",
    "AggressiveLIPolicy",
    "HybridLIPolicy",
    "SubsetLIPolicy",
    "WeightedLIPolicy",
    "DecayedLoadPolicy",
    "NearestServerPolicy",
    "LocalityAwareLIPolicy",
    # rate estimation
    "RateEstimator",
    "ExactRate",
    "FixedRate",
    "ScaledRate",
    "EWMARate",
    # water filling
    "waterfill_probabilities",
    "weighted_waterfill_probabilities",
    # cluster substrate
    "ClusterSimulation",
    "StealingClusterSimulation",
    "StealingConfig",
    "SimulationResult",
    "Server",
    "Job",
    # multi-dispatcher subsystem
    "MultiDispatchSimulation",
    "MultiDispatchResult",
    "MultiDispatcherPolicy",
    "JoinIdleQueuePolicy",
    "LocalShortestQueuePolicy",
    # staleness models
    "StalenessModel",
    "LoadView",
    "PeriodicUpdate",
    "LossyPeriodicUpdate",
    "ContinuousUpdate",
    "UpdateOnAccess",
    "IndividualUpdate",
    # fault injection
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "RetryPolicy",
    "ServerState",
    "parse_fault_spec",
    # overload protection
    "OverloadConfig",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "ProbabilisticShed",
    "StaleBoardShed",
    "BreakerConfig",
    "BreakerState",
    "BreakerBoard",
    "RetryStormConfig",
    "build_overload_config",
    # workloads
    "PoissonArrivals",
    "ClientArrivals",
    "BurstyClientArrivals",
    "Constant",
    "Exponential",
    "Uniform",
    "BoundedPareto",
    "exponential_service",
    "bounded_pareto_service",
    # engine
    "Simulator",
    "RandomStreams",
    # analysis
    "mm1_mean_response_time",
    "mmc_mean_response_time",
    "random_split_response_time",
    "ksubset_rank_distribution",
    "__version__",
]
