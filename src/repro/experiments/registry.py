"""Every figure of the paper's evaluation section, as executable specs.

The registry maps figure ids (``fig2`` ... ``fig14c``, plus ``ext-*``
ablations that go beyond the paper) to :class:`FigureSpec` objects.  All
factories here are module-level functions or partials of them, so sweep
cells can be reconstructed by name inside worker processes.

Fig. 1 is not a queueing sweep (it is the analytic Eq. 1 rank
distribution) and lives in :mod:`repro.experiments.fig1`.
"""

from __future__ import annotations

from functools import partial

from repro.cluster.simulation import ClusterSimulation
from repro.cluster.stealing import StealingClusterSimulation, StealingConfig
from repro.core.ksubset import KSubsetPolicy
from repro.core.li_aggressive import AggressiveLIPolicy
from repro.core.li_basic import BasicLIPolicy
from repro.core.li_hybrid import HybridLIPolicy
from repro.core.li_subset import SubsetLIPolicy
import numpy as np

from repro.core.decay import DecayedLoadPolicy
from repro.core.li_weighted import WeightedLIPolicy
from repro.core.locality import LocalityAwareLIPolicy, NearestServerPolicy
from repro.core.random_policy import RandomPolicy
from repro.core.rate_estimators import EWMARate, FixedRate, ScaledRate
from repro.nonstationary import (
    Autoscaler,
    DiurnalProgram,
    DriftAwareLIPolicy,
    DriftTrackingRate,
    FlashCrowdProgram,
    ProgramRate,
    TargetUtilizationPolicy,
    WindowedRate,
)
from repro.core.threshold import ThresholdPolicy
from repro.experiments.spec import CurveSpec, FigureSpec
from repro.faults import FaultInjector, FaultSchedule
from repro.multidispatch import (
    JoinIdleQueuePolicy,
    LocalShortestQueuePolicy,
    MultiDispatchSimulation,
)
from repro.overload import (
    BreakerConfig,
    OverloadConfig,
    RetryStormConfig,
)
from repro.staleness.continuous import ContinuousUpdate
from repro.staleness.individual import IndividualUpdate
from repro.staleness.lossy import LossyPeriodicUpdate
from repro.staleness.periodic import PeriodicUpdate
from repro.staleness.update_on_access import UpdateOnAccess
from repro.workloads.arrivals import (
    BurstyClientArrivals,
    ClientArrivals,
    PoissonArrivals,
    TimeVaryingPoissonArrivals,
)
from repro.workloads.distributions import Constant, Exponential, Uniform
from repro.workloads.service import bounded_pareto_service, exponential_service

__all__ = ["FIGURES", "figure_ids", "get_figure"]

# ---------------------------------------------------------------------------
# Sweep axes (information age T is in units of mean service time)
# ---------------------------------------------------------------------------

T_SWEEP = (0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)
T_SWEEP_SHORT = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
T_SWEEP_BOX = (0.5, 2.0, 8.0, 32.0)
LAMBDA_SWEEP = (0.3, 0.5, 0.7, 0.8, 0.9, 0.95)

# The paper's defaults (matching Mitzenmacher's study).
DEFAULT_SERVERS = 10
DEFAULT_LOAD = 0.9


# ---------------------------------------------------------------------------
# Arrival factories: (x, num_servers, offered_load) -> ArrivalSource
# ---------------------------------------------------------------------------

def poisson_arrivals(x: float, num_servers: int, load: float) -> PoissonArrivals:
    """Aggregate Poisson stream at rate n·λ (x is the staleness axis)."""
    return PoissonArrivals(num_servers * load)


def capacity_poisson_arrivals(
    x: float, num_servers: int, load: float, total_capacity: float
) -> PoissonArrivals:
    """Poisson stream sized to a heterogeneous cluster's total capacity."""
    return PoissonArrivals(total_capacity * load)


def poisson_arrivals_lambda_axis(
    x: float, num_servers: int, load: float
) -> PoissonArrivals:
    """Aggregate Poisson stream where the x axis is λ itself (Fig. 13)."""
    return PoissonArrivals(num_servers * x)


def _clients_for_age(x: float, num_servers: int, load: float) -> int:
    # Under update-on-access, T equals the per-client inter-request time
    # C / (n·λ); choosing C = round(T·n·λ) realizes the requested T as
    # closely as an integer client count allows.
    return max(1, round(x * num_servers * load))


def update_on_access_arrivals(
    x: float, num_servers: int, load: float
) -> ClientArrivals:
    """Per-client Poisson population sized so the mean snapshot age is x."""
    return ClientArrivals(_clients_for_age(x, num_servers, load), num_servers * load)


def bursty_arrivals(
    x: float, num_servers: int, load: float, burst_size: int = 10
) -> BurstyClientArrivals:
    """Bursty on/off clients with the same average rate (Fig. 9)."""
    return BurstyClientArrivals(
        _clients_for_age(x, num_servers, load),
        num_servers * load,
        burst_size=burst_size,
    )


# ---------------------------------------------------------------------------
# Staleness factories: (x) -> StalenessModel
# ---------------------------------------------------------------------------

def periodic(x: float) -> PeriodicUpdate:
    return PeriodicUpdate(period=x)


def periodic_work_backlog(x: float) -> PeriodicUpdate:
    """Periodic board that reports work backlog instead of queue length."""
    return PeriodicUpdate(period=x, metric="work-backlog")


def periodic_fixed(x: float, period: float) -> PeriodicUpdate:
    """Periodic board with a period independent of the x axis (Fig. 13)."""
    return PeriodicUpdate(period=period)


def continuous_constant(x: float, known_age: bool = False) -> ContinuousUpdate:
    return ContinuousUpdate(Constant(x), known_age=known_age)


def continuous_uniform_narrow(x: float, known_age: bool = False) -> ContinuousUpdate:
    """Uniform(T/2, 3T/2) delays — mild variance around the mean T."""
    return ContinuousUpdate(Uniform(0.5 * x, 1.5 * x), known_age=known_age)


def continuous_uniform_wide(x: float, known_age: bool = False) -> ContinuousUpdate:
    """Uniform(0, 2T) delays — some requests see nearly fresh data."""
    return ContinuousUpdate(Uniform(0.0, 2.0 * x), known_age=known_age)


def continuous_exponential(x: float, known_age: bool = False) -> ContinuousUpdate:
    """Exponential(T) delays — the most variable distribution studied."""
    return ContinuousUpdate(Exponential(x), known_age=known_age)


def update_on_access_model(x: float) -> UpdateOnAccess:
    return UpdateOnAccess(nominal_age=x)


def individual_update(x: float) -> IndividualUpdate:
    return IndividualUpdate(period=x)


def lossy_periodic(x: float, period: float = 4.0) -> LossyPeriodicUpdate:
    """Lossy bulletin board where the x axis is the drop probability."""
    return LossyPeriodicUpdate(period=period, drop_probability=x)


# ---------------------------------------------------------------------------
# Curve sets
# ---------------------------------------------------------------------------

def standard_curves(num_servers: int) -> tuple[CurveSpec, ...]:
    """The line-up of Figs. 2–4 and 6–11: baselines plus both LI variants."""
    return (
        CurveSpec("random", RandomPolicy),
        CurveSpec("k=2", partial(KSubsetPolicy, 2)),
        CurveSpec("k=3", partial(KSubsetPolicy, 3)),
        CurveSpec(f"k={num_servers}", partial(KSubsetPolicy, num_servers)),
        CurveSpec("basic-li", BasicLIPolicy),
        CurveSpec("aggressive-li", AggressiveLIPolicy),
    )


def threshold_curves(k: int) -> tuple[CurveSpec, ...]:
    """Fig. 5's threshold sweep for a fixed subset size ``k``."""
    thresholds = (0, 1, 4, 8, 16, 24, 32, 40)
    curves = tuple(
        CurveSpec(f"thr={t},k={k}", partial(ThresholdPolicy, float(t), k))
        for t in thresholds
    )
    return curves + (
        CurveSpec("basic-li", BasicLIPolicy),
        CurveSpec("aggressive-li", AggressiveLIPolicy),
    )


def misestimation_curves() -> tuple[CurveSpec, ...]:
    """Fig. 12: Basic LI fed λ estimates off by fixed error factors."""
    factors = (0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
    curves = tuple(
        CurveSpec(
            f"li({factor:g}x)",
            BasicLIPolicy,
            partial(ScaledRate, factor),
        )
        for factor in factors
    )
    return curves + (CurveSpec("random", RandomPolicy),)


def conservative_lambda_curves() -> tuple[CurveSpec, ...]:
    """Fig. 13: exact λ versus the assume-max-throughput strategy."""
    return (
        CurveSpec("random", RandomPolicy),
        CurveSpec("k=2", partial(KSubsetPolicy, 2)),
        CurveSpec("k=10", partial(KSubsetPolicy, 10)),
        CurveSpec("basic-li(exact)", BasicLIPolicy),
        CurveSpec("basic-li(assume=1.0)", BasicLIPolicy, partial(FixedRate, 1.0)),
    )


def subset_li_curves() -> tuple[CurveSpec, ...]:
    """Fig. 14: LI-k versus standard k-subset for matched information."""
    return (
        CurveSpec("k=2", partial(KSubsetPolicy, 2)),
        CurveSpec("k=3", partial(KSubsetPolicy, 3)),
        CurveSpec("li-1", partial(SubsetLIPolicy, 1)),
        CurveSpec("li-2", partial(SubsetLIPolicy, 2)),
        CurveSpec("li-3", partial(SubsetLIPolicy, 3)),
        CurveSpec("li-10", partial(SubsetLIPolicy, 10)),
    )


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------

def _periodic_figure(
    figure_id: str,
    title: str,
    num_servers: int = DEFAULT_SERVERS,
    load: float = DEFAULT_LOAD,
    **overrides,
) -> FigureSpec:
    defaults = dict(
        figure_id=figure_id,
        title=title,
        x_label="T",
        x_values=T_SWEEP,
        curves=standard_curves(num_servers),
        num_servers=num_servers,
        offered_load=load,
        make_arrivals=poisson_arrivals,
        make_staleness=periodic,
        make_service=exponential_service,
    )
    defaults.update(overrides)
    return FigureSpec(**defaults)


FIGURES: dict[str, FigureSpec] = {}


def _register(spec: FigureSpec) -> None:
    if spec.figure_id in FIGURES:
        raise ValueError(f"duplicate figure id {spec.figure_id}")
    FIGURES[spec.figure_id] = spec


_register(
    _periodic_figure(
        "fig2",
        "Response time vs update period, periodic model (n=10, load=0.9)",
        notes="Fig. 2a/2b are the same data at two x ranges",
    )
)
_register(
    _periodic_figure(
        "fig3",
        "Response time vs update period at light load (n=10, load=0.5)",
        load=0.5,
    )
)
_register(
    _periodic_figure(
        "fig4",
        "Response time vs update period with 100 servers (load=0.9)",
        num_servers=100,
        default_jobs=200_000,
        default_seeds=3,
    )
)
_register(
    _periodic_figure(
        "fig5a",
        "Threshold algorithm vs LI, k=2 subsets (periodic, n=10, load=0.9)",
        curves=threshold_curves(2),
        x_values=T_SWEEP_SHORT,
    )
)
_register(
    _periodic_figure(
        "fig5b",
        "Threshold algorithm vs LI, k=10 subsets (periodic, n=10, load=0.9)",
        curves=threshold_curves(10),
        x_values=T_SWEEP_SHORT,
    )
)

# Fig. 6: continuous update, clients know only the mean delay.
for _suffix, _factory, _dist_name in (
    ("a", continuous_constant, "constant(T)"),
    ("b", continuous_uniform_narrow, "uniform(T/2, 3T/2)"),
    ("c", continuous_uniform_wide, "uniform(0, 2T)"),
    ("d", continuous_exponential, "exponential(T)"),
):
    _register(
        _periodic_figure(
            f"fig6{_suffix}",
            f"Continuous update, delay {_dist_name}, mean age known "
            "(n=10, load=0.9)",
            make_staleness=partial(_factory, known_age=False),
            x_values=T_SWEEP_SHORT,
        )
    )

# Fig. 7: continuous update, each request knows its actual delay.
for _suffix, _factory, _dist_name in (
    ("a", continuous_uniform_narrow, "uniform(T/2, 3T/2)"),
    ("b", continuous_uniform_wide, "uniform(0, 2T)"),
    ("c", continuous_exponential, "exponential(T)"),
):
    _register(
        _periodic_figure(
            f"fig7{_suffix}",
            f"Continuous update, delay {_dist_name}, actual age known "
            "(n=10, load=0.9)",
            make_staleness=partial(_factory, known_age=True),
            x_values=T_SWEEP_SHORT,
        )
    )

_register(
    _periodic_figure(
        "fig8",
        "Update-on-access model: T = per-client inter-request time "
        "(n=10, load=0.9)",
        make_arrivals=update_on_access_arrivals,
        make_staleness=update_on_access_model,
        x_values=T_SWEEP_SHORT,
        notes="client count C = round(T·n·λ) realizes the requested age",
    )
)
_register(
    _periodic_figure(
        "fig9",
        "Update-on-access with bursty clients, burst size 10 "
        "(n=10, load=0.9)",
        make_arrivals=bursty_arrivals,
        make_staleness=update_on_access_model,
        x_values=T_SWEEP_SHORT,
    )
)

# Figs. 10-11: Bounded Pareto job sizes, percentile boxes over trials.
for _suffix, _load in (("a", 0.5), ("b", 0.7), ("c", 0.9)):
    _register(
        _periodic_figure(
            f"fig10{_suffix}",
            f"Bounded Pareto(alpha=1.1, p=1000) job sizes, load={_load} "
            "(periodic, n=10)",
            load=_load,
            make_service=partial(bounded_pareto_service, 1.1, 1000.0),
            curves=(
                CurveSpec("random", RandomPolicy),
                CurveSpec("k=2", partial(KSubsetPolicy, 2)),
                CurveSpec("k=10", partial(KSubsetPolicy, 10)),
                CurveSpec("basic-li", BasicLIPolicy),
                CurveSpec("aggressive-li", AggressiveLIPolicy),
            ),
            x_values=T_SWEEP_BOX,
            summary="box",
            default_seeds=10,
            notes="box = median [p25..p75] over per-seed means",
        )
    )
_register(
    _periodic_figure(
        "fig11",
        "Bounded Pareto(alpha=1.1, p=10000) job sizes, load=0.7 "
        "(periodic, n=10)",
        load=0.7,
        make_service=partial(bounded_pareto_service, 1.1, 10_000.0),
        curves=(
            CurveSpec("random", RandomPolicy),
            CurveSpec("k=2", partial(KSubsetPolicy, 2)),
            CurveSpec("k=10", partial(KSubsetPolicy, 10)),
            CurveSpec("basic-li", BasicLIPolicy),
            CurveSpec("aggressive-li", AggressiveLIPolicy),
        ),
        x_values=T_SWEEP_BOX,
        summary="box",
        default_seeds=10,
        notes="box = median [p25..p75] over per-seed means",
    )
)

_register(
    _periodic_figure(
        "fig12",
        "Basic LI with misestimated arrival rate (periodic, n=10, load=0.9)",
        curves=misestimation_curves(),
        notes="li(fx) feeds Basic LI the estimate f·λ",
    )
)
_register(
    _periodic_figure(
        "fig13",
        "Response time vs arrival rate: exact λ vs assume-λ=1.0 "
        "(periodic, T=4, n=10)",
        x_label="lambda",
        x_values=LAMBDA_SWEEP,
        curves=conservative_lambda_curves(),
        make_arrivals=poisson_arrivals_lambda_axis,
        make_staleness=partial(periodic_fixed, period=4.0),
        notes="offered_load field is unused; the x axis sets λ",
    )
)

# Fig. 14: LI-k (restricted information) under three update models.
for _suffix, _staleness, _model_name in (
    ("a", update_on_access_model, "update-on-access"),
    ("b", partial(continuous_constant, known_age=False), "continuous fixed delay"),
    ("c", periodic, "periodic bulletin board"),
):
    _make_arrivals = (
        update_on_access_arrivals if _suffix == "a" else poisson_arrivals
    )
    _register(
        _periodic_figure(
            f"fig14{_suffix}",
            f"LI-k with restricted information, {_model_name} model "
            "(n=10, load=0.9)",
            curves=subset_li_curves(),
            make_arrivals=_make_arrivals,
            make_staleness=_staleness,
            x_values=T_SWEEP_SHORT,
        )
    )

# ---------------------------------------------------------------------------
# Extension ablations (beyond the paper; see DESIGN.md §6)
# ---------------------------------------------------------------------------

_register(
    _periodic_figure(
        "ext-hybrid",
        "Ablation: Hybrid LI sits between Basic and Aggressive "
        "(periodic, n=10, load=0.9)",
        curves=(
            CurveSpec("basic-li", BasicLIPolicy),
            CurveSpec("hybrid-li", HybridLIPolicy),
            CurveSpec("aggressive-li", AggressiveLIPolicy),
            CurveSpec("random", RandomPolicy),
        ),
        notes="the paper describes this variant in §4.1.1 without plotting it",
    )
)
_register(
    _periodic_figure(
        "ext-individual",
        "Individual per-server updates (Mitzenmacher's third model) "
        "(n=10, load=0.9)",
        make_staleness=individual_update,
        x_values=T_SWEEP_SHORT,
    )
)
_register(
    _periodic_figure(
        "ext-ewma",
        "Ablation: online EWMA λ estimation vs oracle and conservative "
        "(periodic, n=10, load=0.9)",
        curves=(
            CurveSpec("basic-li(exact)", BasicLIPolicy),
            CurveSpec("basic-li(ewma)", BasicLIPolicy, EWMARate),
            CurveSpec("basic-li(assume=1.0)", BasicLIPolicy, partial(FixedRate, 1.0)),
            CurveSpec("random", RandomPolicy),
        ),
    )
)


_register(
    _periodic_figure(
        "ext-lossy",
        "Extension: dropped board refreshes — hidden staleness "
        "(periodic T=4, n=10, load=0.9)",
        x_label="drop_prob",
        x_values=(0.0, 0.2, 0.4, 0.6, 0.8),
        curves=standard_curves(DEFAULT_SERVERS)
        + (
            CurveSpec(
                "basic-li(ts)", partial(BasicLIPolicy, timestamp_aware=True)
            ),
        ),
        make_staleness=lossy_periodic,
        notes="clients still believe the board is at most T=4 old; "
        "each refresh is lost with probability x; basic-li(ts) reads "
        "the board timestamp",
    )
)

_register(
    _periodic_figure(
        "ext-decay",
        "Ablation: ad-hoc exponential age-decay heuristic (paper §2) vs LI "
        "(periodic, n=10, load=0.9)",
        curves=(
            CurveSpec("decay(tau=1)", partial(DecayedLoadPolicy, 1.0)),
            CurveSpec("decay(tau=8)", partial(DecayedLoadPolicy, 8.0)),
            CurveSpec("decay(tau=64)", partial(DecayedLoadPolicy, 64.0)),
            CurveSpec("basic-li", BasicLIPolicy),
            CurveSpec("aggressive-li", AggressiveLIPolicy),
            CurveSpec("random", RandomPolicy),
        ),
        notes="the hand-tuned tau has no connection to lambda; LI needs "
        "no such constant",
    )
)

# Receiver-driven rebalancing variants: curve label -> (policy, stealing).
STEALING_VARIANTS: dict[str, tuple] = {
    "random": (RandomPolicy, None),
    "random+steal": (RandomPolicy, StealingConfig()),
    "k=2": (partial(KSubsetPolicy, 2), None),
    "k=2+steal": (partial(KSubsetPolicy, 2), StealingConfig()),
    "basic-li": (BasicLIPolicy, None),
    "basic-li+steal": (BasicLIPolicy, StealingConfig()),
}


def build_stealing_simulation(spec, curve, x, seed, total_jobs):
    """Construct a work-stealing cell (FigureSpec.make_simulation hook)."""
    policy_factory, stealing = STEALING_VARIANTS[curve.label]
    return StealingClusterSimulation(
        num_servers=spec.num_servers,
        arrivals=spec.make_arrivals(x, spec.num_servers, spec.offered_load),
        service=spec.make_service(),
        policy=policy_factory(),
        staleness=spec.make_staleness(x),
        stealing=stealing,
        total_jobs=total_jobs,
        warmup_fraction=spec.warmup_fraction,
        seed=seed,
    )


_register(
    _periodic_figure(
        "ext-stealing",
        "Extension: receiver-driven rebalancing (work stealing) in "
        "comparison and combination with LI (periodic, n=10, load=0.9)",
        curves=tuple(
            CurveSpec(label, factory)
            for label, (factory, _config) in STEALING_VARIANTS.items()
        ),
        x_values=T_SWEEP_SHORT,
        make_simulation=build_stealing_simulation,
        notes="receiver polls are fresh by construction; '+steal' adds "
        "idle-initiated transfers (poll 2 peers, threshold 1 waiting job)",
    )
)

# WAN replica-selection scenario: 4 replicas in two regions, 8 of 10
# clients near region A.  Round trips in units of mean service time.
WAN_NEAR, WAN_FAR = 0.2, 4.0
WAN_LATENCY = np.array(
    [[WAN_NEAR, WAN_NEAR, WAN_FAR, WAN_FAR]] * 8
    + [[WAN_FAR, WAN_FAR, WAN_NEAR, WAN_NEAR]] * 2
)
WAN_SERVERS = 4
WAN_TOTAL_RATE = 2.4

WAN_VARIANTS: dict[str, object] = {
    "nearest": partial(NearestServerPolicy, WAN_LATENCY),
    "greedy": partial(KSubsetPolicy, WAN_SERVERS),
    "basic-li": BasicLIPolicy,
    "locality-li": partial(LocalityAwareLIPolicy, WAN_LATENCY),
}


def build_wan_simulation(spec, curve, x, seed, total_jobs):
    """Construct a WAN replica-selection cell (make_simulation hook)."""
    policy_factory = WAN_VARIANTS[curve.label]
    return ClusterSimulation(
        num_servers=WAN_SERVERS,
        arrivals=ClientArrivals(
            num_clients=WAN_LATENCY.shape[0], total_rate=WAN_TOTAL_RATE
        ),
        service=exponential_service(),
        policy=policy_factory(),
        staleness=PeriodicUpdate(period=x),
        total_jobs=total_jobs,
        warmup_fraction=spec.warmup_fraction,
        seed=seed,
        client_latency=WAN_LATENCY,
    )


_register(
    _periodic_figure(
        "ext-wan",
        "Extension: wide-area replica selection — locality-aware LI vs "
        "nearest/greedy/plain LI (periodic, 4 replicas, 2 regions)",
        num_servers=WAN_SERVERS,
        load=WAN_TOTAL_RATE / WAN_SERVERS,
        curves=tuple(
            CurveSpec(label, factory)
            for label, factory in WAN_VARIANTS.items()
        ),
        x_values=T_SWEEP_SHORT,
        make_simulation=build_wan_simulation,
        notes="round trips near=0.2 far=4.0; responses include the RTT",
    )
)

# Four slow, four standard, two fast nodes: total capacity 12.
HETERO_RATES = (0.5, 0.5, 0.5, 0.5, 1.0, 1.0, 1.0, 1.0, 3.0, 3.0)

_register(
    _periodic_figure(
        "ext-hetero",
        "Extension: heterogeneous-capacity cluster — capacity-aware LI vs "
        "Basic LI vs baselines (periodic, capacity load=0.85)",
        load=0.85,
        curves=(
            CurveSpec("random", RandomPolicy),
            CurveSpec("k=2", partial(KSubsetPolicy, 2)),
            CurveSpec("basic-li", BasicLIPolicy),
            CurveSpec("weighted-li", WeightedLIPolicy),
        ),
        make_arrivals=partial(
            capacity_poisson_arrivals, total_capacity=float(sum(HETERO_RATES))
        ),
        x_values=T_SWEEP_SHORT,
        server_rates=HETERO_RATES,
        notes="the paper's future-work case; rates "
        + "/".join(f"{rate:g}" for rate in HETERO_RATES),
    )
)

_register(
    _periodic_figure(
        "ext-workinfo",
        "Ablation: queue-length vs work-backlog load reports under "
        "Bounded Pareto jobs (periodic, n=10, load=0.7)",
        load=0.7,
        make_service=partial(bounded_pareto_service, 1.1, 1000.0),
        curves=(
            CurveSpec("random", RandomPolicy),
            CurveSpec("basic-li(queue)", BasicLIPolicy),
            CurveSpec(
                "basic-li(work)",
                BasicLIPolicy,
                make_staleness=periodic_work_backlog,
            ),
            CurveSpec("k=10(queue)", partial(KSubsetPolicy, 10)),
            CurveSpec(
                "k=10(work)",
                partial(KSubsetPolicy, 10),
                make_staleness=periodic_work_backlog,
            ),
        ),
        x_values=T_SWEEP_BOX,
        summary="box",
        default_seeds=10,
        notes="work reports expose job sizes that queue lengths hide "
        "(cf. Harchol-Balter et al., paper §2)",
    )
)


# ---------------------------------------------------------------------------
# Fault-injection ablations: stale information about servers that crash
# ---------------------------------------------------------------------------

def faults_failure_rate(x: float, mttr: float = 10.0) -> FaultInjector:
    """x axis is the per-server crash rate 1/MTTF; x=0 means no faults."""
    if x <= 0:
        return FaultInjector()
    return FaultInjector(schedule=FaultSchedule(mttf=1.0 / x, mttr=mttr))


def faults_mttr(x: float, mttf: float = 500.0) -> FaultInjector:
    """x axis is the mean repair time for a fixed crash rate."""
    return FaultInjector(schedule=FaultSchedule(mttf=mttf, mttr=x))


def faults_degraded(
    x: float, mttf: float = 200.0, mttr: float = 20.0
) -> FaultInjector:
    """x axis is the degraded-mode service-rate factor (no crashes)."""
    return FaultInjector(
        schedule=FaultSchedule(
            degrade_mttf=mttf, degrade_mttr=mttr, degrade_factor=x
        )
    )


def fault_curves() -> tuple[CurveSpec, ...]:
    """The line-up of the fault ablations: baselines, threshold, both LIs."""
    return (
        CurveSpec("random", RandomPolicy),
        CurveSpec("k=2", partial(KSubsetPolicy, 2)),
        CurveSpec("k=10", partial(KSubsetPolicy, 10)),
        CurveSpec("thr=1,k=2", partial(ThresholdPolicy, 1.0, 2)),
        CurveSpec("basic-li", BasicLIPolicy),
        CurveSpec("aggressive-li", AggressiveLIPolicy),
    )


_register(
    _periodic_figure(
        "ext-faults",
        "Extension: server crashes under stale boards — response time vs "
        "failure rate (periodic T=4, n=10, load=0.7, MTTR=10)",
        load=0.7,
        x_label="failure_rate",
        x_values=(0.0, 0.0005, 0.001, 0.002, 0.005),
        curves=fault_curves(),
        make_staleness=partial(periodic_fixed, period=4.0),
        make_faults=faults_failure_rate,
        notes="boards keep advertising a crashed server's last load; "
        "misdirected jobs pay timeout=0.5 plus capped backoff; x=0 is the "
        "fault-free baseline (bit-identical to an uninjected run)",
    )
)
_register(
    _periodic_figure(
        "ext-faults-mttr",
        "Extension: repair time under stale boards — response time vs MTTR "
        "(periodic T=4, n=10, load=0.7, MTTF=500)",
        load=0.7,
        x_label="mttr",
        x_values=(2.0, 5.0, 10.0, 20.0, 40.0),
        curves=fault_curves(),
        make_staleness=partial(periodic_fixed, period=4.0),
        make_faults=faults_mttr,
        notes="longer outages widen the window in which every policy "
        "trusts a dead server's last report",
    )
)
_register(
    _periodic_figure(
        "ext-faults-degraded",
        "Extension: degraded servers (brownout) under stale boards — "
        "response time vs degraded rate factor "
        "(periodic T=4, n=10, load=0.7)",
        load=0.7,
        x_label="degrade_factor",
        x_values=(0.1, 0.25, 0.5, 0.75, 0.9),
        curves=fault_curves(),
        make_staleness=partial(periodic_fixed, period=4.0),
        make_faults=faults_degraded,
        notes="degraded servers still report their queue length but drain "
        "it slower than any policy's model assumes",
    )
)


# ---------------------------------------------------------------------------
# Overload-protection extension: bounded queues, drops, retry storms
# ---------------------------------------------------------------------------

#: Offered-load axis of the overload sweeps (ρ crosses 1: a genuine
#: overload regime the unbounded figures cannot reach).
RHO_SWEEP = (0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3)
#: Tighter ρ axis for the metastability sweep, centered on capacity.
RHO_SWEEP_METASTABLE = (0.85, 0.9, 0.95, 1.0, 1.05)
#: Stale period fixed for the ρ sweeps (units of mean service time).
OVERLOAD_PERIOD = 4.0
#: Bounded per-server queue capacity of the overload cells.
OVERLOAD_CAPACITY = 16

# Curve label -> (policy factory, retry storms enabled for this curve).
OVERLOAD_VARIANTS: dict[str, tuple] = {
    "random": (RandomPolicy, False),
    "greedy": (partial(KSubsetPolicy, DEFAULT_SERVERS), False),
    "threshold": (partial(ThresholdPolicy, 1.0, 2), False),
    "basic-li": (BasicLIPolicy, False),
    "aggressive-li": (AggressiveLIPolicy, False),
    "random+storm": (RandomPolicy, True),
    "basic-li+storm": (BasicLIPolicy, True),
}


def build_overload_simulation(
    spec,
    curve,
    x,
    seed,
    total_jobs,
    axis: str = "rho",
    rho: float = 1.1,
    period: float = OVERLOAD_PERIOD,
    queue_capacity: int = OVERLOAD_CAPACITY,
    breaker: bool = False,
):
    """Construct an overload cell (FigureSpec.make_simulation hook).

    ``axis="rho"`` sweeps the offered load at a fixed stale period;
    ``axis="T"`` sweeps the stale period at a fixed offered load.  Curves
    whose label carries ``+storm`` re-submit refused jobs after jittered
    client backoff (the metastability mode).
    """
    policy_factory, storm = OVERLOAD_VARIANTS[curve.label]
    load = float(x) if axis == "rho" else rho
    stale_period = period if axis == "rho" else float(x)
    return ClusterSimulation(
        num_servers=spec.num_servers,
        arrivals=PoissonArrivals(spec.num_servers * load),
        service=spec.make_service(),
        policy=policy_factory(),
        staleness=PeriodicUpdate(period=stale_period),
        total_jobs=total_jobs,
        warmup_fraction=spec.warmup_fraction,
        seed=seed,
        overload=OverloadConfig(
            queue_capacity=queue_capacity,
            breaker=BreakerConfig() if breaker else None,
            retry_storm=RetryStormConfig() if storm else None,
        ),
    )


def overload_curves(*labels: str) -> tuple[CurveSpec, ...]:
    return tuple(
        CurveSpec(label, OVERLOAD_VARIANTS[label][0]) for label in labels
    )


_register(
    _periodic_figure(
        "ext-overload-goodput",
        "Extension: goodput under bounded queues vs offered load "
        "(periodic T=4, n=10, capacity=16)",
        x_label="rho",
        x_values=RHO_SWEEP,
        curves=overload_curves(
            "random", "greedy", "threshold", "basic-li", "aggressive-li"
        ),
        make_simulation=build_overload_simulation,
        metric="goodput",
        notes="drop_rate = 1 - goodput (no faults here); beyond capacity "
        "every policy sheds the excess, but herding policies also bounce "
        "jobs off swamped servers while the cluster has room elsewhere",
    )
)
_register(
    _periodic_figure(
        "ext-overload-herd",
        "Extension: bounded-queue herd losses vs staleness T "
        "(rho=1.1, n=10, capacity=16)",
        x_values=T_SWEEP_SHORT,
        curves=overload_curves(
            "random", "greedy", "threshold", "basic-li", "aggressive-li"
        ),
        make_simulation=partial(build_overload_simulation, axis="T"),
        metric="drop_rate",
        notes="at rho=1.1 about 9% of arrivals must drop; anything above "
        "that floor is herd loss — jobs bounced off a swamped server "
        "while other queues had room",
    )
)
_register(
    _periodic_figure(
        "ext-overload-metastable",
        "Extension: retry storms — recovery vs metastable collapse "
        "(periodic T=4, n=10, capacity=8, breakers on)",
        x_label="rho",
        x_values=RHO_SWEEP_METASTABLE,
        curves=overload_curves(
            "random", "random+storm", "basic-li", "basic-li+storm"
        ),
        make_simulation=partial(
            build_overload_simulation, queue_capacity=8, breaker=True
        ),
        metric="goodput",
        default_jobs=30_000,
        notes="+storm curves re-submit refused jobs (default backoff, 8 "
        "max resubmits), inflating effective demand past the offered "
        "rate; sustained retry pressure keeps tripping breakers, which "
        "then refuse work the cluster had room for — the storm-free run "
        "recovers after each herd transient, the storm run stays "
        "degraded (lower goodput, ~3x the response time, ~10x the "
        "breaker trips)",
    )
)


# ---------------------------------------------------------------------------
# Multi-dispatcher extension: m concurrent stale-view front-ends
# ---------------------------------------------------------------------------

#: Stale period fixed for the m sweeps (units of mean service time).
MULTIDISP_PERIOD = 4.0
#: Dispatcher-count axis of the m sweeps.
M_SWEEP = (1.0, 2.0, 4.0, 8.0, 16.0)

# Curve label -> policy factory plus per-curve driver overrides.
MULTIDISP_VARIANTS: dict[str, dict] = {
    "random": {"policy": RandomPolicy},
    "k=2": {"policy": partial(KSubsetPolicy, 2)},
    "greedy": {"policy": partial(KSubsetPolicy, DEFAULT_SERVERS)},
    "basic-li": {"policy": BasicLIPolicy},
    "basic-li(global)": {"policy": BasicLIPolicy, "lambda_view": "global"},
    "aggressive-li": {"policy": AggressiveLIPolicy},
    "jiq": {"policy": JoinIdleQueuePolicy},
    "lsq": {"policy": partial(LocalShortestQueuePolicy, 2)},
}


def skewed_dispatcher_weights(m: int) -> tuple[float, ...]:
    """A 1:2:...:m front-end rate skew (the heterogeneous mode)."""
    return tuple(float(d + 1) for d in range(m))


def build_multidisp_simulation(
    spec,
    curve,
    x,
    seed,
    total_jobs,
    axis: str = "m",
    dispatchers: int = 4,
    board: str = "shared",
    period: float = MULTIDISP_PERIOD,
    heterogeneous: bool = False,
):
    """Construct a multi-dispatcher cell (FigureSpec.make_simulation hook).

    ``axis="m"`` sweeps the dispatcher count at a fixed stale period;
    ``axis="T"`` sweeps the stale period at a fixed dispatcher count.
    """
    cfg = MULTIDISP_VARIANTS[curve.label]
    m = int(x) if axis == "m" else int(dispatchers)
    return MultiDispatchSimulation(
        num_servers=spec.num_servers,
        total_rate=spec.num_servers * spec.offered_load,
        service=spec.make_service(),
        policy=cfg["policy"],
        staleness=partial(
            PeriodicUpdate, period if axis == "m" else float(x)
        ),
        num_dispatchers=m,
        board=board,
        lambda_view=cfg.get("lambda_view", "local"),
        dispatcher_weights=(
            skewed_dispatcher_weights(m) if heterogeneous else None
        ),
        total_jobs=total_jobs,
        warmup_fraction=spec.warmup_fraction,
        seed=seed,
    )


def multidisp_curves(*labels: str) -> tuple[CurveSpec, ...]:
    return tuple(
        CurveSpec(label, MULTIDISP_VARIANTS[label]["policy"])
        for label in labels
    )


_register(
    _periodic_figure(
        "ext-multidisp-herd",
        "Extension: the herd effect vs dispatcher count — m front-ends "
        "sharing one stale board (periodic T=4, n=10, load=0.9)",
        x_label="m",
        x_values=M_SWEEP,
        curves=multidisp_curves(
            "random", "k=2", "greedy", "basic-li", "basic-li(global)"
        ),
        make_simulation=build_multidisp_simulation,
        notes="basic-li interprets the board with the honest local "
        "lambda_d = lambda/m, so m dispatchers collectively overshoot "
        "LI's water level m-fold: a partial herd that grows gracefully "
        "with m and stays below random; greedy herds fully at every m; "
        "basic-li(global) is the told-the-total-rate upper bound",
    )
)
_register(
    _periodic_figure(
        "ext-multidisp-li-vs-jiq",
        "Extension: stale-board LI vs message-based JIQ/LSQ with m=4 "
        "dispatchers (periodic, n=10, load=0.9)",
        x_values=T_SWEEP_SHORT,
        curves=multidisp_curves(
            "random", "basic-li", "aggressive-li", "jiq", "lsq"
        ),
        make_simulation=partial(build_multidisp_simulation, axis="T"),
        notes="jiq and lsq never read the stale board, so their curves "
        "are flat in T at the cost of server-to-dispatcher messages "
        "(one idle report per idle period; 2 load polls per arrival); "
        "LI needs no messages but degrades as T grows",
    )
)
_register(
    _periodic_figure(
        "ext-multidisp-scaling",
        "Extension: heterogeneous dispatcher rates with independent "
        "staggered boards, response time vs m (periodic T=4, n=10, "
        "load=0.9, weights 1:2:...:m)",
        x_label="m",
        x_values=M_SWEEP,
        curves=multidisp_curves(
            "random", "k=2", "basic-li", "basic-li(global)", "lsq"
        ),
        make_simulation=partial(
            build_multidisp_simulation, board="independent",
            heterogeneous=True,
        ),
        notes="each dispatcher gets its own board offset by period*d/m, "
        "so refreshes interleave; local-lambda LI binds each front-end's "
        "true skewed share lambda*w_d/sum(w)",
    )
)


# ---------------------------------------------------------------------------
# Scale-out: thousands of servers (vector kernel) and the n → ∞ fluid limit
# ---------------------------------------------------------------------------

N_SWEEP = (16, 64, 256, 1024, 4096, 10_000)
SCALE_PERIOD = 2.0
FLUID_VS_SIM_SERVERS = 256

# Policies that are both phase-batchable (vector-eligible; k-subset with
# 1 < k < n is not) and fluid-translatable (see ClusterSimulation.
# fluid_blocker), so every cell of these figures runs on any engine.
# "greedy" probes the whole cluster: its k must track the cell's n, which
# build_scale_simulation resolves per cell (the CurveSpec factory is
# registry metadata only for these make_simulation-driven figures).
SCALE_VARIANTS: dict[str, object] = {
    "random": RandomPolicy,
    "thr=4": partial(ThresholdPolicy, 4),
    "greedy": None,
    "basic-li": BasicLIPolicy,
}


def build_scale_simulation(
    spec, curve, x, seed, total_jobs, axis: str = "n",
    num_servers: int = FLUID_VS_SIM_SERVERS,
):
    """Construct a scale-out cell (FigureSpec.make_simulation hook).

    ``axis="n"`` sweeps the cluster size at the fixed
    :data:`SCALE_PERIOD`; ``axis="T"`` sweeps the stale period at a
    fixed cluster size.
    """
    n = int(x) if axis == "n" else int(num_servers)
    factory = SCALE_VARIANTS[curve.label]
    policy = KSubsetPolicy(n) if factory is None else factory()
    return ClusterSimulation(
        num_servers=n,
        arrivals=PoissonArrivals(n * spec.offered_load),
        service=exponential_service(),
        policy=policy,
        staleness=PeriodicUpdate(
            period=SCALE_PERIOD if axis == "n" else float(x)
        ),
        total_jobs=total_jobs,
        warmup_fraction=spec.warmup_fraction,
        seed=seed,
    )


def scale_curves() -> tuple[CurveSpec, ...]:
    # The "greedy" factory here is a stand-in at the fluid-vs-sim cluster
    # size; build_scale_simulation re-resolves k to the cell's actual n.
    return tuple(
        CurveSpec(
            label,
            factory
            if factory is not None
            else partial(KSubsetPolicy, FLUID_VS_SIM_SERVERS),
        )
        for label, factory in SCALE_VARIANTS.items()
    )


_register(
    _periodic_figure(
        "ext-scale-n",
        "Extension: response time vs cluster size n at fixed T=2 "
        "(periodic, load=0.9)",
        x_label="n",
        x_values=N_SWEEP,
        curves=scale_curves(),
        default_jobs=200_000,
        default_seeds=3,
        make_simulation=build_scale_simulation,
        notes="run with --engine vector for the large-n cells (the "
        "scalar engines are O(jobs) in python); jobs should grow with n "
        "to keep per-server duration constant — the default is sized "
        "for n<=1024",
    )
)
_register(
    _periodic_figure(
        "ext-fluid-vs-sim",
        "Extension: finite-n simulation vs the mean-field fluid limit "
        "(periodic, n=256, load=0.9)",
        num_servers=FLUID_VS_SIM_SERVERS,
        x_values=T_SWEEP_SHORT,
        curves=scale_curves(),
        default_jobs=500_000,
        default_seeds=3,
        make_simulation=partial(build_scale_simulation, axis="T"),
        notes="run once with --engine vector and once with --engine "
        "fluid: the curves converge as n grows (the oracle tests pin "
        "2% agreement at n=256, rho=0.9)",
    )
)


# ---------------------------------------------------------------------------
# Non-stationary extension: flash crowds, diurnal cycles, elastic capacity
# ---------------------------------------------------------------------------

#: Flash-crowd pulse train: surges of FLASH_DURATION starting at
#: FLASH_START, repeating every FLASH_EVERY (duty cycle 1/3, and peak
#: load stays below 1 for every surge factor swept).  The low base load
#: matters: herding damage from an underestimated λ̂ only shows when the
#: surge pushes the system near — but not over — capacity, because past
#: saturation every policy queues and dispatch quality stops mattering.
FLASH_START = 40.0
FLASH_DURATION = 80.0
FLASH_EVERY = 240.0
FLASH_BASE_LOAD = 0.2
#: Surge-factor axis: peak load = FLASH_BASE_LOAD * x (4.5 -> 0.9).
SURGE_SWEEP = (1.0, 2.0, 3.0, 4.0, 4.5)

DIURNAL_PERIOD = 40.0
DIURNAL_BASE_LOAD = 0.7
#: Amplitude axis of the diurnal sweep (0 is the stationary baseline).
AMPLITUDE_SWEEP = (0.0, 0.3, 0.6, 0.9)

#: Stale board period fixed for the diurnal/autoscale sweeps.
NONSTATIONARY_BOARD_PERIOD = 4.0
#: Flash-crowd cells use a longer board period: LI's water-filling
#: spreads expected_arrivals = λ̂·n·T over the board, so the absolute
#: dispatch error from a lagged λ̂ grows with T (§5.6's "dangerous
#: direction" needs a big T to be visible above queueing noise).
FLASH_BOARD_PERIOD = 16.0

#: Control-interval axis of the autoscale sweep.
AUTOSCALE_INTERVAL_SWEEP = (2.0, 5.0, 10.0, 20.0)
AUTOSCALE_AMPLITUDE = 0.6
AUTOSCALE_MIN_SERVERS = 3
AUTOSCALE_TARGET = 0.75
AUTOSCALE_WARMUP = 1.0

# Curve label -> (policy factory, estimator kind).  The estimator kinds:
# "mean-rate" is the stationary oracle (knows the long-run mean but not
# the transient), "true-rate" the non-stationary oracle λ(t), "ewma" the
# lagged online estimator, "drift" the fast/slow pair drift-li widens on.
NONSTATIONARY_VARIANTS: dict[str, tuple] = {
    "random": (RandomPolicy, "mean-rate"),
    "basic-li(mean-rate)": (BasicLIPolicy, "mean-rate"),
    "basic-li(true-rate)": (BasicLIPolicy, "true-rate"),
    "basic-li(ewma)": (BasicLIPolicy, "ewma"),
    "drift-li": (DriftAwareLIPolicy, "drift"),
}

# The flash-crowd figure swaps the ewma curve onto the slow estimator:
# with the default smoothing the EWMA converges within a handful of
# board periods and the herding window is too brief to measure.  The
# label stays "basic-li(ewma)" — the estimator horizon is a figure
# parameter, documented in the notes, not a separate policy.
FLASHCROWD_VARIANTS: dict[str, tuple] = {
    **NONSTATIONARY_VARIANTS,
    "basic-li(ewma)": (BasicLIPolicy, "slow-ewma"),
}


def _nonstationary_estimator(kind: str, program):
    if kind == "mean-rate":
        return None  # ClusterSimulation defaults to ExactRate
    if kind == "true-rate":
        return ProgramRate(program)
    if kind == "ewma":
        return EWMARate()
    if kind == "slow-ewma":
        # Deliberately long horizon (~1/0.002 = 500 arrivals): models an
        # operator-tuned estimator smoothed against noise, whose lag then
        # spans a whole surge ramp instead of a few board periods.
        return EWMARate(smoothing=0.002)
    if kind == "windowed":
        return WindowedRate()
    if kind == "drift":
        return DriftTrackingRate()
    raise ValueError(f"unknown estimator kind {kind!r}")


def build_flashcrowd_simulation(spec, curve, x, seed, total_jobs):
    """Construct a flash-crowd cell (FigureSpec.make_simulation hook).

    The x axis is the surge factor; x=1 is the stationary baseline (a
    constant program, bit-identical to PoissonArrivals).
    """
    base_rate = spec.num_servers * spec.offered_load
    program = FlashCrowdProgram(
        base_rate,
        surge_factor=float(x),
        start=FLASH_START,
        duration=FLASH_DURATION,
        every=FLASH_EVERY,
    )
    policy_factory, estimator_kind = FLASHCROWD_VARIANTS[curve.label]
    return ClusterSimulation(
        num_servers=spec.num_servers,
        arrivals=TimeVaryingPoissonArrivals(program),
        service=spec.make_service(),
        policy=policy_factory(),
        staleness=PeriodicUpdate(period=FLASH_BOARD_PERIOD),
        rate_estimator=_nonstationary_estimator(estimator_kind, program),
        total_jobs=total_jobs,
        warmup_fraction=spec.warmup_fraction,
        seed=seed,
    )


def build_diurnal_simulation(spec, curve, x, seed, total_jobs):
    """Construct a diurnal cell (FigureSpec.make_simulation hook).

    The x axis is the relative amplitude; x=0 is the stationary baseline.
    """
    base_rate = spec.num_servers * spec.offered_load
    program = DiurnalProgram(
        base_rate, amplitude=float(x), period=DIURNAL_PERIOD
    )
    policy_factory, estimator_kind = NONSTATIONARY_VARIANTS[curve.label]
    return ClusterSimulation(
        num_servers=spec.num_servers,
        arrivals=TimeVaryingPoissonArrivals(program),
        service=spec.make_service(),
        policy=policy_factory(),
        staleness=PeriodicUpdate(period=NONSTATIONARY_BOARD_PERIOD),
        rate_estimator=_nonstationary_estimator(estimator_kind, program),
        total_jobs=total_jobs,
        warmup_fraction=spec.warmup_fraction,
        seed=seed,
    )


# Curve label -> (policy factory, estimator kind) for the autoscale cells;
# every curve observes λ through an honest online estimator (the
# controller shares it), so the scaling loop never sees oracle data.
AUTOSCALE_VARIANTS: dict[str, tuple] = {
    "random": (RandomPolicy, "windowed"),
    "greedy": (partial(KSubsetPolicy, DEFAULT_SERVERS), "windowed"),
    "basic-li": (BasicLIPolicy, "windowed"),
    "drift-li": (DriftAwareLIPolicy, "drift"),
}


def build_autoscale_simulation(spec, curve, x, seed, total_jobs):
    """Construct an elastic-capacity cell (FigureSpec.make_simulation hook).

    The x axis is the controller tick interval (cool-down tracks it), so
    the sweep measures how controller responsiveness trades against
    stale-board flapping under a diurnal load.
    """
    base_rate = spec.num_servers * spec.offered_load
    program = DiurnalProgram(
        base_rate, amplitude=AUTOSCALE_AMPLITUDE, period=DIURNAL_PERIOD
    )
    policy_factory, estimator_kind = AUTOSCALE_VARIANTS[curve.label]
    autoscaler = Autoscaler(
        policy=TargetUtilizationPolicy(
            target=AUTOSCALE_TARGET,
            min_servers=AUTOSCALE_MIN_SERVERS,
            max_servers=spec.num_servers,
        ),
        interval=float(x),
        cooldown=float(x),
        warmup_delay=AUTOSCALE_WARMUP,
        initial_servers=None,
    )
    return ClusterSimulation(
        num_servers=spec.num_servers,
        arrivals=TimeVaryingPoissonArrivals(program),
        service=spec.make_service(),
        policy=policy_factory(),
        staleness=PeriodicUpdate(period=NONSTATIONARY_BOARD_PERIOD),
        rate_estimator=_nonstationary_estimator(estimator_kind, program),
        total_jobs=total_jobs,
        warmup_fraction=spec.warmup_fraction,
        seed=seed,
        autoscaler=autoscaler,
    )


def nonstationary_curves(variants: dict, *labels: str) -> tuple[CurveSpec, ...]:
    return tuple(
        CurveSpec(label, variants[label][0]) for label in labels
    )


_register(
    _periodic_figure(
        "ext-flashcrowd",
        "Extension: flash crowds — exact-λ(t) LI vs EWMA-lagged LI vs "
        "drift-aware LI (periodic T=16, n=10, base load=0.2, repeating "
        "surges)",
        load=FLASH_BASE_LOAD,
        x_label="surge",
        x_values=SURGE_SWEEP,
        curves=nonstationary_curves(
            NONSTATIONARY_VARIANTS,
            "random",
            "basic-li(mean-rate)",
            "basic-li(true-rate)",
            "basic-li(ewma)",
            "drift-li",
        ),
        make_staleness=partial(
            periodic_fixed, period=FLASH_BOARD_PERIOD
        ),
        make_simulation=build_flashcrowd_simulation,
        default_jobs=60_000,
        default_seeds=3,
        notes="surges of x*base for 80 time units every 240 (x=4.5 peaks "
        "at load 0.9); the ewma curve runs a deliberately slow estimator "
        "(smoothing 0.002, ~500-arrival horizon), so during the surge it "
        "underestimates λ and its LI dispatches too aggressively and "
        "herds (§5.6's dangerous direction, now caused by lag instead of "
        "misconfiguration); the long board period T=16 makes the "
        "water-filling error visible above queueing noise; drift-li "
        "widens its window while its fast/slow estimates disagree",
    )
)
_register(
    _periodic_figure(
        "ext-diurnal",
        "Extension: diurnal load — response time vs cycle amplitude "
        "(periodic T=4, n=10, base load=0.7, cycle period 40)",
        load=DIURNAL_BASE_LOAD,
        x_label="amplitude",
        x_values=AMPLITUDE_SWEEP,
        curves=nonstationary_curves(
            NONSTATIONARY_VARIANTS,
            "random",
            "basic-li(mean-rate)",
            "basic-li(true-rate)",
            "basic-li(ewma)",
            "drift-li",
        ),
        make_staleness=partial(
            periodic_fixed, period=NONSTATIONARY_BOARD_PERIOD
        ),
        make_simulation=build_diurnal_simulation,
        default_jobs=60_000,
        default_seeds=3,
        notes="x=0 is the stationary baseline; amplitude 0.9 swings the "
        "load between 0.07 and 1.33 — peaks run over capacity and drain "
        "in the troughs, so the mean is dominated by how each policy "
        "behaves at the peaks",
    )
)
_register(
    _periodic_figure(
        "ext-autoscale",
        "Extension: elastic capacity under diurnal load — response time "
        "vs controller interval (target-util autoscaler, periodic T=4, "
        "n=10 max, base load=0.6, amplitude 0.6)",
        load=FLASH_BASE_LOAD,
        x_label="interval",
        x_values=AUTOSCALE_INTERVAL_SWEEP,
        curves=nonstationary_curves(
            AUTOSCALE_VARIANTS, "random", "greedy", "basic-li", "drift-li"
        ),
        make_staleness=partial(
            periodic_fixed, period=NONSTATIONARY_BOARD_PERIOD
        ),
        make_simulation=build_autoscale_simulation,
        default_jobs=60_000,
        default_seeds=3,
        notes="the controller reads the same stale board and windowed λ "
        "estimate as the dispatcher (target 0.75, min 3, max 10, warm-up "
        "1.0, cooldown = interval); scaled-up servers enter with stale "
        "board entries, so dispatches discover them only after the next "
        "refresh",
    )
)


def figure_ids() -> list[str]:
    """All registered figure ids, in registration order."""
    return list(FIGURES)


def get_figure(figure_id: str) -> FigureSpec:
    """Look up a figure spec, with a helpful error for typos."""
    try:
        return FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; available: {', '.join(FIGURES)}"
        ) from None
