"""Sweep execution: run every (curve × x × seed) cell of a figure.

The runner supports optional process-level parallelism.  Work units are
:class:`CellTask` records — frozen dataclasses of primitives (figure id,
curve label, x, seed, jobs, override strings) — re-materialized from the
registry inside the worker, so nothing unpicklable crosses the process
boundary.  Parallel sweeps partition the task list into deterministic
round-robin shards (:func:`shard_work`) and reassemble results by
position, never by completion order, so a sharded run is bit-identical to
a serial one.  Traced runs attach the standard observability probes
(queue trace, response histogram, herd detector) inside the worker and
return their summaries as plain dictionaries.

Sweeps can be *cache-aware*: given a
:class:`~repro.ablation.cache.ResultCache` (or a cache directory), each
cell's content-hashed run ID (:func:`cell_run_id`) is looked up first and
only stale cells are re-run — incremental regeneration.  Cache provenance
(hits vs fresh runs, per-cell run IDs) lands in
``FigureResult.cache_info`` and, through
:func:`run_figure_with_manifest`, in the run manifest.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.registry import get_figure
from repro.experiments.report import CellResult, FigureResult

__all__ = [
    "CellTask",
    "cell_run_id",
    "shard_work",
    "run_cell",
    "run_cell_observed",
    "run_figure",
    "run_figure_with_manifest",
    "run_until_precise",
    "PreciseCellResult",
]

#: Default spacing (in mean service times) of queue-trace samples.
DEFAULT_TRACE_INTERVAL = 1.0


def _apply_fault_spec(simulation, fault_spec: str, figure_id: str) -> None:
    """Attach a parsed ``--faults`` injector to a cell's simulation.

    Only the standard :class:`~repro.cluster.simulation.ClusterSimulation`
    driver supports fault injection; figures built on alternative drivers
    (e.g. the work-stealing cluster) fail with a clear error instead of
    silently running fault-free.
    """
    from repro.cluster.simulation import ClusterSimulation
    from repro.faults import parse_fault_spec

    if not isinstance(simulation, ClusterSimulation):
        raise TypeError(
            f"figure {figure_id!r} builds {type(simulation).__name__}, "
            "which does not support fault injection; --faults requires "
            "figures driven by ClusterSimulation"
        )
    simulation.faults = parse_fault_spec(fault_spec)


#: Overload overrides cross process boundaries as a 4-tuple of primitives
#: ``(queue_capacity, admission_spec, breaker_spec, storm_spec)`` and are
#: re-materialized in the worker via ``build_overload_config`` — same
#: picklability discipline as the ``--faults`` string.
OverloadSpec = "tuple[int | None, str | None, str | None, str | None]"


def _apply_overload(simulation, overload: tuple, figure_id: str) -> None:
    """Apply an overload-protection override to a cell's simulation.

    ``overload`` is the primitive 4-tuple described by ``OverloadSpec``.
    Only cells driven by the standard
    :class:`~repro.cluster.simulation.ClusterSimulation` accept it;
    figures built on alternative drivers fail with a clear error instead
    of silently running unprotected.
    """
    from repro.cluster.simulation import ClusterSimulation
    from repro.overload import build_overload_config

    if not isinstance(simulation, ClusterSimulation):
        raise TypeError(
            f"figure {figure_id!r} builds {type(simulation).__name__}, "
            "which does not accept an overload override; "
            "--queue-capacity/--admission/--breaker/--storm require "
            "figures driven by ClusterSimulation"
        )
    queue_capacity, admission, breaker, storm = overload
    simulation.overload = build_overload_config(
        queue_capacity=queue_capacity,
        admission=admission,
        breaker=breaker,
        storm=storm,
    )


def _apply_arrivals(simulation, arrivals_spec: str, figure_id: str) -> None:
    """Apply a parsed ``--arrivals`` program to a cell's simulation.

    The override re-shapes the cell's Poisson arrival stream in time while
    preserving its mean rate: the program factory is evaluated at the
    stationary cell's total rate, so ``constant`` reproduces the original
    cell exactly and ``diurnal:...``/``flash:...`` modulate around it.
    Only cells whose arrivals are the plain stationary
    :class:`~repro.workloads.arrivals.PoissonArrivals` accept the override;
    anything else (client-bound or bursty sources, figures that already
    fix their own program) fails with a clear error rather than silently
    dropping the requested shape.
    """
    from repro.cluster.simulation import ClusterSimulation
    from repro.nonstationary import parse_arrivals_spec
    from repro.workloads.arrivals import (
        PoissonArrivals,
        TimeVaryingPoissonArrivals,
    )

    if not isinstance(simulation, ClusterSimulation):
        raise TypeError(
            f"figure {figure_id!r} builds {type(simulation).__name__}, "
            "which does not accept an arrival-program override; --arrivals "
            "requires figures driven by ClusterSimulation"
        )
    if type(simulation.arrivals) is not PoissonArrivals:
        raise TypeError(
            f"figure {figure_id!r} drives cells with "
            f"{type(simulation.arrivals).__name__}; --arrivals can only "
            "re-shape plain stationary PoissonArrivals"
        )
    factory = parse_arrivals_spec(arrivals_spec)
    program = factory(simulation.arrivals.total_rate)
    simulation.arrivals = TimeVaryingPoissonArrivals(program)


def _apply_autoscale(simulation, autoscale_spec: str, figure_id: str) -> None:
    """Apply a parsed ``--autoscale`` controller to a cell's simulation."""
    from repro.cluster.simulation import ClusterSimulation
    from repro.nonstationary import parse_autoscale_spec

    if not isinstance(simulation, ClusterSimulation):
        raise TypeError(
            f"figure {figure_id!r} builds {type(simulation).__name__}, "
            "which does not accept an autoscaler override; --autoscale "
            "requires figures driven by ClusterSimulation"
        )
    simulation.autoscaler = parse_autoscale_spec(autoscale_spec)


def _apply_dispatchers(simulation, dispatchers: int, figure_id: str) -> None:
    """Apply a ``--dispatchers`` override to a cell's simulation.

    Only cells driven by the standard
    :class:`~repro.cluster.simulation.ClusterSimulation` can be re-split
    across front-ends after the fact; figures built on alternative
    drivers (including the multidispatch figures, which already fix their
    own dispatcher count per x value) fail with a clear error.
    """
    from repro.cluster.simulation import (
        ClusterSimulation,
        validate_dispatcher_count,
    )

    if not isinstance(simulation, ClusterSimulation):
        raise TypeError(
            f"figure {figure_id!r} builds {type(simulation).__name__}, "
            "which does not accept a dispatcher-count override; "
            "--dispatchers requires figures driven by ClusterSimulation"
        )
    simulation.dispatchers = validate_dispatcher_count(dispatchers)


@dataclass(frozen=True)
class CellTask:
    """One sweep cell as a self-describing, picklable work unit.

    Replaces the positional worker tuples the runner used to ship to
    processes (which had grown to 13 unnamed slots).  Every field is a
    primitive or a tuple of primitives — the same discipline as before,
    so a task pickles cheaply and re-materializes its simulation from the
    registry inside the worker.  Frozen, so tasks are hashable and safe
    to share across shards.
    """

    figure_id: str
    curve: str
    x: float
    seed: int
    jobs: int
    trace: bool = False
    trace_interval: float = DEFAULT_TRACE_INTERVAL
    full_traces: bool = False
    faults: str | None = None
    engine: str = "auto"
    dispatchers: int | None = None
    overload: tuple | None = None
    arrivals: str | None = None
    autoscale: str | None = None


def _materialize_cell(task: CellTask):
    """Build the (not yet run) simulation for one cell, overrides applied.

    Returns ``(figure_spec, simulation)``.  Construction is cheap — every
    driver stores attributes and builds nothing until ``run()`` — which
    is what makes content-hashed run IDs affordable: the parent process
    materializes each cell once to describe it, workers materialize again
    to run it, and both see the identical resolved configuration.
    """
    spec = get_figure(task.figure_id)
    curve = spec.curve(task.curve)
    simulation = spec.build_simulation(curve, task.x, task.seed, task.jobs)
    if task.arrivals is not None:
        _apply_arrivals(simulation, task.arrivals, task.figure_id)
    if task.autoscale is not None:
        _apply_autoscale(simulation, task.autoscale, task.figure_id)
    if task.faults is not None:
        _apply_fault_spec(simulation, task.faults, task.figure_id)
    if task.dispatchers is not None:
        _apply_dispatchers(simulation, task.dispatchers, task.figure_id)
    if task.overload is not None:
        _apply_overload(simulation, task.overload, task.figure_id)
    if task.engine != "auto":
        _apply_engine(simulation, task.engine, task.figure_id)
    return spec, simulation


def cell_run_id(task: CellTask) -> tuple[str, dict]:
    """Content-hashed identity of one cell: ``(run_id, resolved_spec)``.

    The ID digests the *fully-resolved* cell — the materialized
    simulation with every registry constant and CLI override applied —
    via :func:`repro.ablation.runid.resolve_simulation_spec`, so editing
    a registry factory or passing a different override changes the ID
    even though the (figure, curve, x, seed) coordinates stay the same.
    """
    from repro.ablation.runid import resolve_simulation_spec, run_id

    spec, simulation = _materialize_cell(task)
    resolved = resolve_simulation_spec(
        simulation,
        figure_id=task.figure_id,
        curve=task.curve,
        x=task.x,
        seed=task.seed,
        jobs=task.jobs,
        metric=spec.metric,
        engine=task.engine,
    )
    return run_id(resolved), resolved


def run_cell(
    figure_id: str,
    curve_label: str,
    x: float,
    seed: int,
    total_jobs: int,
    fault_spec: str | None = None,
    engine: str = "auto",
    dispatchers: int | None = None,
    overload: tuple | None = None,
    arrivals: str | None = None,
    autoscale: str | None = None,
) -> float:
    """Run one replication of one sweep cell; returns the spec's metric.

    Most figures report the mean response time; the overload sweeps set
    ``FigureSpec.metric`` to ``"goodput"`` or ``"drop_rate"`` instead.

    ``engine`` forwards to :class:`~repro.cluster.simulation.ClusterSimulation`
    (``"auto"``, ``"event"``, ``"fast"``, ``"vector"`` or ``"fluid"``);
    event/fast/vector are bit-identical, so among those this is a
    performance knob for the profiling and benchmark harnesses, while
    ``"fluid"`` swaps the simulation for its mean-field fixed point.
    Figures built on other drivers accept ``"auto"``/``"event"`` (they are
    event-driven anyway) and reject the specialized engines.  ``dispatchers`` splits the
    cell's arrival stream across that many concurrent front-ends (see
    ``ClusterSimulation(dispatchers=...)``).  ``overload`` is the primitive
    4-tuple ``(queue_capacity, admission_spec, breaker_spec, storm_spec)``
    applied to every cell (see :func:`repro.overload.build_overload_config`).
    ``arrivals`` re-shapes the cell's stationary Poisson stream with a
    rate-program specification string (see
    :func:`repro.nonstationary.parse_arrivals_spec`); ``autoscale``
    attaches an elastic-capacity controller (see
    :func:`repro.nonstationary.parse_autoscale_spec`).  Both ship to
    workers as strings, like ``fault_spec``.
    """
    spec, simulation = _materialize_cell(
        CellTask(
            figure_id=figure_id,
            curve=curve_label,
            x=x,
            seed=seed,
            jobs=total_jobs,
            faults=fault_spec,
            engine=engine,
            dispatchers=dispatchers,
            overload=overload,
            arrivals=arrivals,
            autoscale=autoscale,
        )
    )
    return getattr(simulation.run(), spec.metric)


def _apply_engine(simulation, engine: str, figure_id: str) -> None:
    """Force the simulation engine for a cell built from the registry."""
    from repro.cluster.simulation import ClusterSimulation

    if isinstance(simulation, ClusterSimulation):
        if engine not in ("auto", "event", "fast", "vector", "fluid"):
            raise ValueError(
                "engine must be 'auto', 'event', 'fast', 'vector' or "
                f"'fluid', got {engine!r}"
            )
        simulation.engine = engine
        return
    if engine in ("fast", "vector", "fluid"):
        raise ValueError(
            f"figure {figure_id!r} builds {type(simulation).__name__}, "
            "which only runs on the event engine"
        )


def standard_probes(
    figure_id: str, x: float, sample_interval: float = DEFAULT_TRACE_INTERVAL
) -> list:
    """The default probe line-up for traced sweeps.

    The herd detector epochs on board refreshes when the figure's
    staleness model publishes them (periodic-family models) and falls back
    to fixed windows of the cell's x value (the information age axis)
    otherwise, so every figure gets meaningful per-epoch concentration
    statistics.
    """
    from repro.obs.herd import HerdDetector
    from repro.obs.traces import QueueTraceProbe, ResponseHistogramProbe
    from repro.staleness.periodic import PeriodicUpdate

    spec = get_figure(figure_id)
    phase_based = isinstance(spec.make_staleness(max(x, 1e-9)), PeriodicUpdate)
    epoch_length = None if phase_based else max(float(x), sample_interval)
    from repro.obs.engine_probe import EngineProvenanceProbe

    return [
        QueueTraceProbe(sample_interval=sample_interval),
        ResponseHistogramProbe(),
        HerdDetector(epoch_length=epoch_length),
        EngineProvenanceProbe(),
    ]


def run_cell_observed(
    figure_id: str,
    curve_label: str,
    x: float,
    seed: int,
    total_jobs: int,
    sample_interval: float = DEFAULT_TRACE_INTERVAL,
    full_traces: bool = False,
    fault_spec: str | None = None,
    engine: str = "auto",
    dispatchers: int | None = None,
    overload: tuple | None = None,
    arrivals: str | None = None,
    autoscale: str | None = None,
) -> tuple[float, dict]:
    """Run one cell with the standard probes attached.

    Returns ``(metric_value, probe_summaries)`` — the metric is the
    spec's (mean response time for the paper figures, goodput or drop
    rate for the overload sweeps) and the summaries
    are plain JSON-serializable dictionaries (safe to ship across process
    boundaries).  ``full_traces`` additionally embeds the complete queue
    trace (timestamps × per-server queue lengths) and per-epoch herd
    records rather than just their digests.  Cells with a fault injector
    (from the figure spec or ``fault_spec``) additionally get a
    :class:`~repro.obs.fault_trace.FaultTraceProbe` recording availability
    and retry timelines; multi-dispatcher cells (from the figure spec or
    ``dispatchers``) get a
    :class:`~repro.obs.multidispatch.DispatcherTraceProbe` recording the
    dispatcher-by-server matrix and herd alignment; cells with an active
    overload configuration (from the figure spec or ``overload``) get an
    :class:`~repro.obs.overload.OverloadProbe` recording drops, sheds and
    breaker timelines.
    """
    spec, simulation = _materialize_cell(
        CellTask(
            figure_id=figure_id,
            curve=curve_label,
            x=x,
            seed=seed,
            jobs=total_jobs,
            faults=fault_spec,
            engine=engine,
            dispatchers=dispatchers,
            overload=overload,
            arrivals=arrivals,
            autoscale=autoscale,
        )
    )
    probes = standard_probes(figure_id, x, sample_interval)
    if getattr(simulation, "faults", None) is not None:
        from repro.obs.fault_trace import FaultTraceProbe

        probes.append(FaultTraceProbe())
    if (
        getattr(simulation, "autoscaler", None) is not None
        or getattr(getattr(simulation, "arrivals", None), "program", None)
        is not None
    ):
        from repro.obs.transient import NonstationaryProvenanceProbe

        probes.append(NonstationaryProvenanceProbe())
    if getattr(simulation, "dispatchers", 1) > 1 or getattr(
        simulation, "num_dispatchers", 1
    ) > 1:
        from repro.obs.multidispatch import DispatcherTraceProbe

        probes.append(DispatcherTraceProbe())
    overload_config = getattr(simulation, "overload", None)
    if overload_config is not None and overload_config.active:
        from repro.obs.overload import OverloadProbe

        probes.append(OverloadProbe())
    simulation.probes = probes
    result = simulation.run()

    from repro.obs.probes import ProbeSet

    summaries = ProbeSet(probes).summary()
    staleness = getattr(simulation, "staleness", None)
    if staleness is not None and hasattr(staleness, "info_summary"):
        info = staleness.info_summary()
        if info:
            summaries["staleness_info"] = info
    arrivals_source = getattr(simulation, "arrivals", None)
    if arrivals_source is not None and hasattr(arrivals_source, "info_summary"):
        info = arrivals_source.info_summary()
        if info:
            summaries["arrivals_info"] = info
    if full_traces:
        for probe in probes:
            if hasattr(probe, "trace_dict"):
                summaries[probe.name]["trace"] = probe.trace_dict()
            if hasattr(probe, "epochs_dict"):
                summaries[probe.name]["epoch_records"] = probe.epochs_dict()
    return getattr(result, spec.metric), summaries


def run_figure(
    figure_id: str,
    jobs: int | None = None,
    seeds: int | None = None,
    x_values: tuple[float, ...] | None = None,
    curves: tuple[str, ...] | None = None,
    processes: int | None = None,
    base_seed: int = 1,
    trace: bool = False,
    trace_interval: float = DEFAULT_TRACE_INTERVAL,
    full_traces: bool = False,
    faults: str | None = None,
    engine: str = "auto",
    dispatchers: int | None = None,
    overload: tuple | None = None,
    arrivals: str | None = None,
    autoscale: str | None = None,
    cache=None,
    cache_refresh: bool = False,
) -> FigureResult:
    """Execute a figure's full sweep and return its :class:`FigureResult`.

    Parameters
    ----------
    figure_id:
        Registry key, e.g. ``"fig2"``.
    jobs / seeds:
        Override the spec's default scale (the paper uses 500,000 jobs and
        >= 10 seeds; the spec defaults are laptop-friendly).
    x_values / curves:
        Restrict the sweep to a subset of points or lines.
    processes:
        Worker processes; ``None`` or 1 runs inline.  The cell grid is
        deterministic either way — results are keyed by (curve, x, seed),
        never by completion order.
    base_seed:
        Replication ``r`` of every cell runs with seed ``base_seed + r``,
        giving common random numbers across curves for variance reduction.
    trace:
        Attach the standard observability probes to every cell and
        collect their summaries into ``result.observations`` (keyed by
        ``(curve, x, seed)``).  Probes never perturb measurements: a
        traced sweep's samples are bit-identical to an untraced one's.
    trace_interval:
        Queue-trace sample spacing, in mean service times.
    full_traces:
        With ``trace``, embed complete queue traces and per-epoch herd
        records in the observations (larger manifests).
    faults:
        Optional ``--faults`` specification string (see
        :func:`repro.faults.parse_fault_spec`) applied to every cell.
        Shipped to workers as a string and parsed there, so the sweep
        stays picklable.  Fails with a clear error on figures whose
        cells are not driven by ``ClusterSimulation``.
    engine:
        Engine override applied to every cell (``"auto"``, ``"event"``,
        ``"fast"``, ``"vector"`` or ``"fluid"``; see
        ``ClusterSimulation(engine=...)``).  Traced sweeps attach probes,
        which force the event loop, so combining ``trace`` with a forced
        specialized engine fails with the probes' blocking reason.
    dispatchers:
        Optional dispatcher-count override applied to every cell: the
        arrival stream is split across that many concurrent front-ends
        (``ClusterSimulation(dispatchers=...)``).  Like ``faults``, only
        valid on figures driven by ``ClusterSimulation``.
    overload:
        Optional overload-protection override applied to every cell, as
        the primitive 4-tuple ``(queue_capacity, admission_spec,
        breaker_spec, storm_spec)`` — the CLI's ``--queue-capacity``,
        ``--admission``, ``--breaker`` and ``--storm`` strings.  Shipped
        to workers as primitives and re-materialized there via
        :func:`repro.overload.build_overload_config`.  Like ``faults``,
        only valid on figures driven by ``ClusterSimulation``.
    arrivals:
        Optional ``--arrivals`` rate-program specification string (see
        :func:`repro.nonstationary.parse_arrivals_spec`) re-shaping every
        cell's stationary Poisson stream in time while preserving its
        mean rate.  Shipped to workers as a string.
    autoscale:
        Optional ``--autoscale`` controller specification string (see
        :func:`repro.nonstationary.parse_autoscale_spec`) attaching an
        elastic-capacity controller to every cell.  Shipped to workers as
        a string.
    cache:
        Optional result cache: a
        :class:`~repro.ablation.cache.ResultCache` or a cache directory
        (str/Path).  Each cell's content-hashed run ID is looked up
        before running; hits reuse the stored metric value bit-for-bit
        and only stale cells execute (incremental regeneration).  Fresh
        values are written back.  Provenance (hit/fresh counts, per-cell
        run IDs) lands in ``result.cache_info``.  Traced sweeps bypass
        the cache with a warning — probe summaries are not cached, and a
        hit would silently drop them.
    cache_refresh:
        With ``cache``, skip lookups and re-run every cell, overwriting
        cached entries — for forcing regeneration after a code change the
        run-ID canonicalization cannot see (there should be none; this is
        the escape hatch for debugging exactly that).
    """
    spec = get_figure(figure_id)
    jobs = jobs if jobs is not None else spec.default_jobs
    seeds = seeds if seeds is not None else spec.default_seeds
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    sweep_x = tuple(x_values) if x_values is not None else spec.x_values
    if curves is not None:
        curve_labels = tuple(curves)
        for label in curve_labels:
            spec.curve(label)  # validate early
    else:
        curve_labels = tuple(curve.label for curve in spec.curves)

    if faults is not None:
        from repro.faults import parse_fault_spec

        parse_fault_spec(faults)  # validate once, before any worker starts
    if arrivals is not None:
        from repro.nonstationary import parse_arrivals_spec

        parse_arrivals_spec(arrivals)  # validate once, before any worker starts
    if autoscale is not None:
        from repro.nonstationary import parse_autoscale_spec

        parse_autoscale_spec(autoscale)  # validate once, before any worker starts
    if dispatchers is not None:
        from repro.cluster.simulation import validate_dispatcher_count

        dispatchers = validate_dispatcher_count(dispatchers)
    if overload is not None:
        from repro.overload import build_overload_config

        overload = tuple(overload)
        if len(overload) != 4:
            raise ValueError(
                "overload must be a (queue_capacity, admission, breaker, "
                f"storm) 4-tuple, got {overload!r}"
            )
        # Validate once, before any worker starts; workers re-parse.
        if build_overload_config(*overload) is None:
            overload = None
    tasks = [
        CellTask(
            figure_id=figure_id,
            curve=label,
            x=x,
            seed=base_seed + replication,
            jobs=jobs,
            trace=trace,
            trace_interval=trace_interval,
            full_traces=full_traces,
            faults=faults,
            engine=engine,
            dispatchers=dispatchers,
            overload=overload,
            arrivals=arrivals,
            autoscale=autoscale,
        )
        for label in curve_labels
        for x in sweep_x
        for replication in range(seeds)
    ]

    cache = _coerce_cache(cache)
    if cache is not None and trace:
        from repro.ablation.cache import CacheWarning

        warnings.warn(
            "traced sweeps bypass the result cache: probe summaries are "
            "not cached, and a cache hit would silently drop them",
            CacheWarning,
            stacklevel=2,
        )
        cache = None

    cache_info = None
    if cache is not None:
        resolved_ids = [cell_run_id(task) for task in tasks]
        cached_values: dict[int, float] = {}
        if not cache_refresh:
            for index, (rid, _) in enumerate(resolved_ids):
                value = cache.get(rid)
                if value is not None:
                    cached_values[index] = value
        pending_indices = [
            index for index in range(len(tasks)) if index not in cached_values
        ]
        fresh_values = _execute_tasks(
            [tasks[index] for index in pending_indices], processes
        )
        values: list = [None] * len(tasks)
        for index, value in cached_values.items():
            values[index] = value
        for index, value in zip(pending_indices, fresh_values):
            rid, resolved = resolved_ids[index]
            cache.put(rid, value, spec=resolved)
            values[index] = value
        cache_info = {
            "enabled": True,
            "refresh": bool(cache_refresh),
            "cells": len(tasks),
            "cache_hits": len(cached_values),
            "fresh_runs": len(pending_indices),
            **cache.stats(),
            "run_ids": {
                f"{task.curve}|{task.x:g}|{task.seed}": rid
                for task, (rid, _) in zip(tasks, resolved_ids)
            },
        }
    else:
        values = _execute_tasks(tasks, processes)

    samples: dict[tuple[str, float], list[float]] = {
        (label, x): [] for label in curve_labels for x in sweep_x
    }
    observations: dict[tuple[str, float, int], dict] = {}
    for task, value in zip(tasks, values):
        if trace:
            value, obs = value
            observations[(task.curve, task.x, task.seed)] = obs
        samples[(task.curve, task.x)].append(value)

    result = FigureResult(
        figure_id=spec.figure_id,
        title=spec.title,
        x_label=spec.x_label,
        x_values=sweep_x,
        curve_labels=curve_labels,
        summary=spec.summary,
        jobs=jobs,
        seeds=seeds,
        notes=spec.notes,
        observations=observations,
        cache_info=cache_info,
    )
    for key, cell_samples in samples.items():
        label, x = key
        result.cells[key] = CellResult(
            curve=label, x=x, samples=tuple(cell_samples)
        )
    return result


def _coerce_cache(cache):
    """Accept a ResultCache, a cache directory, or None."""
    if cache is None:
        return None
    from repro.ablation.cache import ResultCache

    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)


def shard_work(tasks: list, shards: int) -> list[list]:
    """Deterministically partition ``tasks`` round-robin into ``shards``.

    Shard ``i`` gets ``tasks[i::shards]`` — a pure function of the task
    list and the shard count, independent of worker scheduling, so the
    caller can reassemble results by position (shard ``i`` item ``j`` is
    task ``i + j*shards``) and a sharded sweep stays bit-identical to a
    serial one.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return [tasks[i::shards] for i in range(shards)]


def _execute_tasks(tasks: list[CellTask], processes: int | None) -> list:
    """Run tasks inline, or across deterministically sharded workers."""
    if processes is None:
        processes = 1
    if processes <= 1 or len(tasks) <= 1:
        return [_run_task(task) for task in tasks]
    shards = min(processes, os.cpu_count() or 1, len(tasks))
    parts = shard_work(tasks, shards)
    with ProcessPoolExecutor(max_workers=shards) as pool:
        shard_values = list(pool.map(_run_shard, parts))
    values: list = [None] * len(tasks)
    for index, part in enumerate(shard_values):
        for offset, value in enumerate(part):
            values[index + offset * shards] = value
    return values


def run_figure_with_manifest(
    figure_id: str,
    manifest_dir: str | Path,
    base_seed: int = 1,
    **kwargs,
) -> tuple[FigureResult, Path]:
    """Run a sweep and write its JSON run manifest.

    Times the sweep, assembles the manifest (spec, seeds, git describe,
    environment, wall time, per-cell results, probe observations when
    ``trace=True``) and writes ``<figure_id>.manifest.json`` into
    ``manifest_dir``.  Returns ``(result, manifest_path)``.
    """
    from repro.obs.manifest import build_manifest, save_manifest

    started = time.perf_counter()
    result = run_figure(figure_id, base_seed=base_seed, **kwargs)
    wall_time = time.perf_counter() - started
    extra = None
    fault_spec = kwargs.get("faults")
    if fault_spec:
        from repro.faults import parse_fault_spec

        injector = parse_fault_spec(fault_spec)
        extra = {"faults": {"spec": fault_spec, **injector.describe()}}
    dispatcher_override = kwargs.get("dispatchers")
    if dispatcher_override is not None:
        extra = {**(extra or {}), "dispatchers": int(dispatcher_override)}
    arrivals_spec = kwargs.get("arrivals")
    if arrivals_spec:
        from repro.nonstationary import parse_arrivals_spec
        from repro.obs.transient import spec_digest

        # The program's absolute rates depend on each cell's mean rate;
        # the manifest pins the shape at a reference rate of 1.0 plus the
        # raw spec string, which together determine every cell's program.
        described = parse_arrivals_spec(arrivals_spec)(1.0).describe()
        extra = {
            **(extra or {}),
            "arrivals": {
                "spec": arrivals_spec,
                "program_at_unit_rate": described,
                "digest": spec_digest(described),
            },
        }
    autoscale_spec = kwargs.get("autoscale")
    if autoscale_spec:
        from repro.nonstationary import parse_autoscale_spec
        from repro.obs.transient import spec_digest

        described = parse_autoscale_spec(autoscale_spec).describe()
        extra = {
            **(extra or {}),
            "autoscale": {
                "spec": autoscale_spec,
                **described,
                "digest": spec_digest(described),
            },
        }
    overload_override = kwargs.get("overload")
    if overload_override is not None:
        from repro.overload import build_overload_config

        config = build_overload_config(*overload_override)
        if config is not None:
            queue_capacity, admission, breaker, storm = overload_override
            extra = {
                **(extra or {}),
                "overload": {
                    "spec": {
                        "queue_capacity": queue_capacity,
                        "admission": admission,
                        "breaker": breaker,
                        "storm": storm,
                    },
                    **config.describe(),
                },
            }
    if result.cache_info is not None:
        extra = {**(extra or {}), "cache": result.cache_info}
    manifest = build_manifest(result, wall_time, base_seed=base_seed, extra=extra)
    path = save_manifest(manifest, manifest_dir)
    return result, path


def _run_task(task: CellTask):
    """Worker entry point: run one cell, traced or untraced."""
    if task.trace:
        return run_cell_observed(
            task.figure_id,
            task.curve,
            task.x,
            task.seed,
            task.jobs,
            sample_interval=task.trace_interval,
            full_traces=task.full_traces,
            fault_spec=task.faults,
            engine=task.engine,
            dispatchers=task.dispatchers,
            overload=task.overload,
            arrivals=task.arrivals,
            autoscale=task.autoscale,
        )
    return run_cell(
        task.figure_id,
        task.curve,
        task.x,
        task.seed,
        task.jobs,
        fault_spec=task.faults,
        engine=task.engine,
        dispatchers=task.dispatchers,
        overload=task.overload,
        arrivals=task.arrivals,
        autoscale=task.autoscale,
    )


def _run_shard(tasks: list[CellTask]) -> list:
    """Worker entry point: run one deterministic shard, in order."""
    return [_run_task(task) for task in tasks]


@dataclass(frozen=True)
class PreciseCellResult(CellResult):
    """A :class:`CellResult` from sequential sampling, with its verdict.

    ``converged`` is True when the precision target was provably met; a
    False value means the caller got ``max_seeds`` replications (or a
    degenerate near-zero mean) without reaching the target and must not
    silently treat the samples as high-precision.
    """

    converged: bool = False


def run_until_precise(
    figure_id: str,
    curve_label: str,
    x: float,
    jobs: int,
    target_relative_halfwidth: float = 0.05,
    confidence: float = 0.90,
    min_seeds: int = 3,
    max_seeds: int = 50,
    base_seed: int = 1,
    zero_mean_atol: float = 1e-9,
) -> PreciseCellResult:
    """Add replications until the CI half-width is small enough.

    Sequential-sampling helper for high-accuracy single points: runs at
    least ``min_seeds`` replications, then keeps adding seeds until the
    confidence interval's half-width falls below
    ``target_relative_halfwidth`` of the mean, or ``max_seeds`` is hit.

    A *relative* precision target is undefined at a mean of zero, and a
    near-zero mean turns the stopping rule into a near-unsatisfiable one;
    instead of silently burning ``max_seeds`` replications, the loop stops
    as soon as ``|mean| <= zero_mean_atol`` and reports convergence only
    if the half-width is also within ``zero_mean_atol`` (the genuinely
    degenerate all-zeros case).

    Returns
    -------
    PreciseCellResult
        With however many samples precision required, and ``converged``
        stating whether the target was actually met.
    """
    from repro.engine.stats import mean_confidence_interval

    if not 0.0 < target_relative_halfwidth < 1.0:
        raise ValueError(
            "target_relative_halfwidth must be in (0, 1), got "
            f"{target_relative_halfwidth}"
        )
    if not 1 < min_seeds <= max_seeds:
        raise ValueError(
            f"need 1 < min_seeds <= max_seeds, got {min_seeds}, {max_seeds}"
        )
    if zero_mean_atol < 0:
        raise ValueError(
            f"zero_mean_atol must be non-negative, got {zero_mean_atol}"
        )
    samples: list[float] = []
    converged = False
    for replication in range(max_seeds):
        samples.append(
            run_cell(figure_id, curve_label, x, base_seed + replication, jobs)
        )
        if len(samples) < min_seeds:
            continue
        interval = mean_confidence_interval(samples, confidence)
        scale = abs(interval.mean)
        if scale <= zero_mean_atol:
            converged = interval.half_width <= zero_mean_atol
            break
        if interval.half_width / scale <= target_relative_halfwidth:
            converged = True
            break
    return PreciseCellResult(
        curve=curve_label, x=x, samples=tuple(samples), converged=converged
    )
