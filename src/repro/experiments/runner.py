"""Sweep execution: run every (curve × x × seed) cell of a figure.

The runner supports optional process-level parallelism.  Work units are
shipped to workers as plain ``(figure_id, curve_label, x, seed, jobs)``
tuples and re-materialized from the registry inside the worker, so nothing
unpicklable crosses the process boundary.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

from repro.experiments.registry import get_figure
from repro.experiments.report import CellResult, FigureResult

__all__ = ["run_figure", "run_cell"]


def run_cell(
    figure_id: str, curve_label: str, x: float, seed: int, total_jobs: int
) -> float:
    """Run one replication of one sweep cell; returns the mean response time."""
    spec = get_figure(figure_id)
    curve = spec.curve(curve_label)
    simulation = spec.build_simulation(curve, x, seed, total_jobs)
    return simulation.run().mean_response_time


def run_figure(
    figure_id: str,
    jobs: int | None = None,
    seeds: int | None = None,
    x_values: tuple[float, ...] | None = None,
    curves: tuple[str, ...] | None = None,
    processes: int | None = None,
    base_seed: int = 1,
) -> FigureResult:
    """Execute a figure's full sweep and return its :class:`FigureResult`.

    Parameters
    ----------
    figure_id:
        Registry key, e.g. ``"fig2"``.
    jobs / seeds:
        Override the spec's default scale (the paper uses 500,000 jobs and
        >= 10 seeds; the spec defaults are laptop-friendly).
    x_values / curves:
        Restrict the sweep to a subset of points or lines.
    processes:
        Worker processes; ``None`` or 1 runs inline.  The cell grid is
        deterministic either way — results are keyed by (curve, x, seed),
        never by completion order.
    base_seed:
        Replication ``r`` of every cell runs with seed ``base_seed + r``,
        giving common random numbers across curves for variance reduction.
    """
    spec = get_figure(figure_id)
    jobs = jobs if jobs is not None else spec.default_jobs
    seeds = seeds if seeds is not None else spec.default_seeds
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    sweep_x = tuple(x_values) if x_values is not None else spec.x_values
    if curves is not None:
        curve_labels = tuple(curves)
        for label in curve_labels:
            spec.curve(label)  # validate early
    else:
        curve_labels = tuple(curve.label for curve in spec.curves)

    cells = [
        (label, x, base_seed + replication)
        for label in curve_labels
        for x in sweep_x
        for replication in range(seeds)
    ]
    work = [(figure_id, label, x, seed, jobs) for (label, x, seed) in cells]

    if processes is None:
        processes = 1
    if processes > 1:
        max_workers = min(processes, os.cpu_count() or 1, len(work))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            values = list(pool.map(_run_cell_tuple, work, chunksize=1))
    else:
        values = [_run_cell_tuple(item) for item in work]

    samples: dict[tuple[str, float], list[float]] = {
        (label, x): [] for label in curve_labels for x in sweep_x
    }
    for (label, x, _seed), value in zip(cells, values):
        samples[(label, x)].append(value)

    result = FigureResult(
        figure_id=spec.figure_id,
        title=spec.title,
        x_label=spec.x_label,
        x_values=sweep_x,
        curve_labels=curve_labels,
        summary=spec.summary,
        jobs=jobs,
        seeds=seeds,
        notes=spec.notes,
    )
    for key, cell_samples in samples.items():
        label, x = key
        result.cells[key] = CellResult(
            curve=label, x=x, samples=tuple(cell_samples)
        )
    return result


def _run_cell_tuple(item: tuple[str, str, float, int, int]) -> float:
    figure_id, curve_label, x, seed, total_jobs = item
    return run_cell(figure_id, curve_label, x, seed, total_jobs)


def run_until_precise(
    figure_id: str,
    curve_label: str,
    x: float,
    jobs: int,
    target_relative_halfwidth: float = 0.05,
    confidence: float = 0.90,
    min_seeds: int = 3,
    max_seeds: int = 50,
    base_seed: int = 1,
):
    """Add replications until the CI half-width is small enough.

    Sequential-sampling helper for high-accuracy single points: runs at
    least ``min_seeds`` replications, then keeps adding seeds until the
    confidence interval's half-width falls below
    ``target_relative_halfwidth`` of the mean, or ``max_seeds`` is hit.

    Returns
    -------
    CellResult
        With however many samples precision required.
    """
    from repro.engine.stats import mean_confidence_interval

    if not 0.0 < target_relative_halfwidth < 1.0:
        raise ValueError(
            "target_relative_halfwidth must be in (0, 1), got "
            f"{target_relative_halfwidth}"
        )
    if not 1 < min_seeds <= max_seeds:
        raise ValueError(
            f"need 1 < min_seeds <= max_seeds, got {min_seeds}, {max_seeds}"
        )
    samples: list[float] = []
    for replication in range(max_seeds):
        samples.append(
            run_cell(figure_id, curve_label, x, base_seed + replication, jobs)
        )
        if len(samples) < min_seeds:
            continue
        interval = mean_confidence_interval(samples, confidence)
        if interval.mean > 0 and (
            interval.half_width / interval.mean <= target_relative_halfwidth
        ):
            break
    return CellResult(curve=curve_label, x=x, samples=tuple(samples))
