"""Two-dimensional sweeps: where does interpreting load information pay?

The paper sweeps one axis at a time (T at fixed λ, λ at fixed T).  This
module runs the full (T × λ) grid for a pair of policies and reports the
*advantage ratio* — baseline response time over subject response time —
as a table and an ASCII heatmap, mapping out the whole region where LI's
interpretation beats a baseline and by how much.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.simulation import ClusterSimulation
from repro.core.policy import Policy
from repro.engine.stats import mean_confidence_interval
from repro.staleness.periodic import PeriodicUpdate
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.service import exponential_service

__all__ = ["GridResult", "run_advantage_grid"]

# Heatmap buckets for the advantage ratio baseline/subject.
_HEAT_LEVELS = (
    (4.0, "#"),  # subject >= 4x better
    (2.0, "*"),  # >= 2x
    (1.25, "+"),  # >= 1.25x
    (0.8, "."),  # roughly even
)
_HEAT_WORSE = "-"  # subject clearly worse


@dataclass
class GridResult:
    """Advantage ratios over a (T × λ) grid."""

    subject_label: str
    baseline_label: str
    t_values: tuple[float, ...]
    load_values: tuple[float, ...]
    jobs: int
    seeds: int
    # (t, load) -> (subject mean, baseline mean)
    cells: dict[tuple[float, float], tuple[float, float]] = field(
        default_factory=dict
    )

    def ratio(self, t: float, load: float) -> float:
        """Advantage ratio baseline/subject at one grid point (>1 = win)."""
        subject, baseline = self.cells[(t, load)]
        return baseline / subject

    def format_table(self) -> str:
        """Ratios as an aligned table, loads as rows and T as columns."""
        lines = [
            f"advantage of {self.subject_label} over {self.baseline_label} "
            f"(ratio of mean response times; jobs={self.jobs}, "
            f"seeds={self.seeds})",
            "load".ljust(8)
            + "".join(f"T={t:<10g}" for t in self.t_values),
        ]
        for load in self.load_values:
            row = [f"{load:<8g}"]
            for t in self.t_values:
                row.append(f"{self.ratio(t, load):<12.2f}")
            lines.append("".join(row))
        return "\n".join(lines)

    def format_heatmap(self) -> str:
        """A compact ASCII heatmap of the advantage region."""
        lines = [
            f"advantage heatmap ({self.subject_label} vs "
            f"{self.baseline_label}): "
            "# >=4x   * >=2x   + >=1.25x   . even   - worse",
            "load".ljust(8) + "".join(f"{t:<6g}" for t in self.t_values),
        ]
        for load in self.load_values:
            row = [f"{load:<8g}"]
            for t in self.t_values:
                ratio = self.ratio(t, load)
                symbol = _HEAT_WORSE
                for threshold, candidate in _HEAT_LEVELS:
                    if ratio >= threshold:
                        symbol = candidate
                        break
                row.append(f"{symbol:<6}")
            lines.append("".join(row))
        lines.append(" " * 8 + "(columns: update period T)")
        return "\n".join(lines)


def run_advantage_grid(
    make_subject,
    make_baseline,
    subject_label: str,
    baseline_label: str,
    t_values: tuple[float, ...] = (0.5, 2.0, 8.0, 32.0),
    load_values: tuple[float, ...] = (0.5, 0.7, 0.9),
    num_servers: int = 10,
    jobs: int = 15_000,
    seeds: int = 2,
    base_seed: int = 1,
) -> GridResult:
    """Run the (T × λ) grid for two policy factories under the periodic
    model and return the advantage ratios."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")

    def mean_over_seeds(policy_factory: "type | object", t: float, load: float) -> float:
        samples = []
        for replication in range(seeds):
            simulation = ClusterSimulation(
                num_servers=num_servers,
                arrivals=PoissonArrivals(num_servers * load),
                service=exponential_service(),
                policy=policy_factory(),
                staleness=PeriodicUpdate(period=t),
                total_jobs=jobs,
                seed=base_seed + replication,
            )
            samples.append(simulation.run().mean_response_time)
        return mean_confidence_interval(samples).mean

    result = GridResult(
        subject_label=subject_label,
        baseline_label=baseline_label,
        t_values=tuple(t_values),
        load_values=tuple(load_values),
        jobs=jobs,
        seeds=seeds,
    )
    for load in load_values:
        for t in t_values:
            subject_mean = mean_over_seeds(make_subject, t, load)
            baseline_mean = mean_over_seeds(make_baseline, t, load)
            result.cells[(t, load)] = (subject_mean, baseline_mean)
    return result
