"""Declarative specifications of figures and their curves.

A :class:`FigureSpec` describes one figure of the paper as a sweep: an
x-axis (usually the information age ``T``, sometimes the offered load λ),
a set of curves (policies, possibly with non-oracle rate estimators), and
factories mapping each x-value to the workload and staleness model for
that point.  The factories must be module-level functions or
:func:`functools.partial` objects so figure cells can be shipped to worker
processes by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cluster.simulation import ClusterSimulation
from repro.core.policy import Policy
from repro.core.rate_estimators import ExactRate, RateEstimator
from repro.staleness.base import StalenessModel
from repro.workloads.arrivals import ArrivalSource
from repro.workloads.distributions import Distribution

__all__ = ["CurveSpec", "FigureSpec"]


@dataclass(frozen=True)
class CurveSpec:
    """One line of a figure: a policy plus its λ estimator.

    ``make_staleness``, when set, overrides the figure-level staleness
    factory for this curve only — used by ablations that compare the same
    policy under different information (e.g. queue-length versus
    work-backlog reports).
    """

    label: str
    make_policy: Callable[[], Policy]
    make_estimator: Callable[[], RateEstimator] = ExactRate
    make_staleness: Callable[[float], StalenessModel] | None = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("curve label must be non-empty")


@dataclass(frozen=True)
class FigureSpec:
    """One figure of the paper as an executable sweep.

    Attributes
    ----------
    figure_id:
        Stable identifier, e.g. ``"fig2"``; used by the CLI, the bench
        harness and worker processes.
    title:
        Human-readable description matching the paper's caption.
    x_label:
        Meaning of the x axis (``"T"`` or ``"lambda"``).
    x_values:
        Sweep points.
    curves:
        The lines to draw.
    num_servers / offered_load:
        Cluster size and per-server load (ignored where a factory makes
        its own choice, e.g. the λ sweep of Fig. 13).
    make_arrivals / make_staleness / make_service:
        Factories invoked per x-value.
    summary:
        ``"ci"`` (mean ± confidence interval over seeds, the default) or
        ``"box"`` (percentile box over seeds, used by the Bounded Pareto
        figures).
    metric:
        Which scalar each cell reports: ``"mean_response_time"`` (the
        default, every paper figure), ``"goodput"`` or ``"drop_rate"``
        (the overload-protection sweeps, where response time of the
        survivors is the wrong headline).
    default_jobs / default_seeds:
        Scale knobs; the paper uses 500,000 jobs and >= 10 seeds, the
        defaults here are laptop-friendly and can be raised.
    notes:
        Free-form reproduction notes surfaced in reports.
    """

    figure_id: str
    title: str
    x_label: str
    x_values: tuple[float, ...]
    curves: tuple[CurveSpec, ...]
    num_servers: int
    offered_load: float
    make_arrivals: Callable[[float, int, float], ArrivalSource]
    make_staleness: Callable[[float], StalenessModel]
    make_service: Callable[[], Distribution]
    summary: str = "ci"
    metric: str = "mean_response_time"
    default_jobs: int = 50_000
    default_seeds: int = 5
    warmup_fraction: float = 0.1
    notes: str = ""
    server_rates: tuple[float, ...] | None = None
    # Full construction override: (spec, curve, x, seed, total_jobs) -> an
    # object with .run() returning a SimulationResult.  Used by sweeps on
    # alternative drivers (e.g. the work-stealing cluster).
    make_simulation: Callable[..., object] | None = None
    # Optional per-x fault-injector factory (x -> FaultInjector); used by
    # the ext-faults ablations, where the x axis is a fault parameter.
    make_faults: Callable[[float], object] | None = None

    def __post_init__(self) -> None:
        if not self.x_values:
            raise ValueError(f"{self.figure_id}: x_values must be non-empty")
        if not self.curves:
            raise ValueError(f"{self.figure_id}: curves must be non-empty")
        if self.summary not in ("ci", "box"):
            raise ValueError(
                f"{self.figure_id}: summary must be 'ci' or 'box', "
                f"got {self.summary!r}"
            )
        if self.metric not in ("mean_response_time", "goodput", "drop_rate"):
            raise ValueError(
                f"{self.figure_id}: metric must be 'mean_response_time', "
                f"'goodput' or 'drop_rate', got {self.metric!r}"
            )
        labels = [curve.label for curve in self.curves]
        if len(set(labels)) != len(labels):
            raise ValueError(f"{self.figure_id}: duplicate curve labels in {labels}")
        if self.server_rates is not None and len(self.server_rates) != self.num_servers:
            raise ValueError(
                f"{self.figure_id}: server_rates has {len(self.server_rates)} "
                f"entries for {self.num_servers} servers"
            )

    def curve(self, label: str) -> CurveSpec:
        """Look up a curve by label."""
        for candidate in self.curves:
            if candidate.label == label:
                return candidate
        raise KeyError(
            f"{self.figure_id} has no curve {label!r}; "
            f"available: {[c.label for c in self.curves]}"
        )

    def build_simulation(
        self, curve: CurveSpec, x: float, seed: int, total_jobs: int
    ) -> ClusterSimulation:
        """Materialize the simulation for one cell of the sweep."""
        if self.make_simulation is not None:
            return self.make_simulation(self, curve, x, seed, total_jobs)
        arrivals = self.make_arrivals(x, self.num_servers, self.offered_load)
        staleness_factory = curve.make_staleness or self.make_staleness
        return ClusterSimulation(
            num_servers=self.num_servers,
            arrivals=arrivals,
            service=self.make_service(),
            policy=curve.make_policy(),
            staleness=staleness_factory(x),
            rate_estimator=curve.make_estimator(),
            total_jobs=total_jobs,
            warmup_fraction=self.warmup_fraction,
            seed=seed,
            server_rates=(
                list(self.server_rates) if self.server_rates is not None else None
            ),
            faults=self.make_faults(x) if self.make_faults is not None else None,
        )
