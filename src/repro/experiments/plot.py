"""Dependency-free ASCII charts for figure results.

The reproduction environment is text-only, so this module renders a
:class:`~repro.experiments.report.FigureResult` as a terminal scatter
chart: x is the sweep axis (spaced by index, since the paper's sweeps are
roughly geometric), y is mean response time, one marker per curve.  Good
enough to *see* the herd-effect crossover without leaving the shell.
"""

from __future__ import annotations

import math

from repro.experiments.report import FigureResult

__all__ = ["ascii_chart"]

MARKERS = "o*x+#@%&"


def ascii_chart(
    result: FigureResult,
    width: int = 72,
    height: int = 20,
    log_y: bool = False,
) -> str:
    """Render a figure result as an ASCII chart.

    Parameters
    ----------
    result:
        A completed sweep.
    width / height:
        Plot area size in characters (excluding axes).
    log_y:
        Plot log10 of the response time — useful when a herding curve
        dwarfs everything else.
    """
    if width < 10 or height < 4:
        raise ValueError(f"chart too small: {width}x{height}")
    curves = list(result.curve_labels)
    if len(curves) > len(MARKERS):
        raise ValueError(
            f"too many curves to chart ({len(curves)} > {len(MARKERS)})"
        )
    xs = list(result.x_values)
    series = {label: result.series(label) for label in curves}

    def transform(value: float) -> float:
        if log_y:
            return math.log10(max(value, 1e-12))
        return value

    values = [transform(v) for ys in series.values() for v in ys]
    y_min, y_max = min(values), max(values)
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for curve_index, label in enumerate(curves):
        marker = MARKERS[curve_index]
        for x_index, value in enumerate(series[label]):
            column = (
                0
                if len(xs) == 1
                else round(x_index * (width - 1) / (len(xs) - 1))
            )
            fraction = (transform(value) - y_min) / (y_max - y_min)
            row = (height - 1) - round(fraction * (height - 1))
            grid[row][column] = marker

    y_label = "log10(resp)" if log_y else "resp"
    lines = [f"{result.figure_id}: {result.title}"]
    top = y_max if not log_y else 10**y_max
    bottom = y_min if not log_y else 10**y_min
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{top:8.2f} |"
        elif row_index == height - 1:
            prefix = f"{bottom:8.2f} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    x_axis = " " * 10 + f"{xs[0]:<10g}"
    x_axis += f"{result.x_label:^{max(0, width - 20)}}"
    x_axis += f"{xs[-1]:>10g}"
    lines.append(x_axis)
    legend = "   ".join(
        f"{MARKERS[i]}={label}" for i, label in enumerate(curves)
    )
    lines.append(" " * 10 + legend + f"   [{y_label}]")
    return "\n".join(lines)
