"""Save and load figure results and run manifests as JSON.

Sweeps at paper scale take real time; persisting their raw per-seed
samples lets tables and charts be re-rendered, compared across code
versions, or post-processed without re-simulating.  Run manifests (see
:mod:`repro.obs.manifest`) additionally record the code version,
environment, wall time and probe observations of a sweep; they are
re-exported here so the experiments layer has one persistence surface.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.report import CellResult, FigureResult
from repro.obs.manifest import load_manifest, save_manifest

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "save_result",
    "load_result",
    "save_manifest",
    "load_manifest",
]

FORMAT_VERSION = 1


def result_to_dict(result: FigureResult) -> dict:
    """Convert a figure result to a JSON-serializable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "figure_id": result.figure_id,
        "title": result.title,
        "x_label": result.x_label,
        "x_values": list(result.x_values),
        "curve_labels": list(result.curve_labels),
        "summary": result.summary,
        "jobs": result.jobs,
        "seeds": result.seeds,
        "notes": result.notes,
        "cells": [
            {
                "curve": cell.curve,
                "x": cell.x,
                "samples": list(cell.samples),
            }
            for cell in result.cells.values()
        ],
    }


def result_from_dict(payload: dict) -> FigureResult:
    """Reconstruct a figure result from :func:`result_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    result = FigureResult(
        figure_id=payload["figure_id"],
        title=payload["title"],
        x_label=payload["x_label"],
        x_values=tuple(payload["x_values"]),
        curve_labels=tuple(payload["curve_labels"]),
        summary=payload["summary"],
        jobs=payload["jobs"],
        seeds=payload["seeds"],
        notes=payload.get("notes", ""),
    )
    for cell in payload["cells"]:
        key = (cell["curve"], cell["x"])
        result.cells[key] = CellResult(
            curve=cell["curve"], x=cell["x"], samples=tuple(cell["samples"])
        )
    return result


def save_result(result: FigureResult, path: str | Path) -> None:
    """Write a figure result to ``path`` as JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n"
    )


def load_result(path: str | Path) -> FigureResult:
    """Read a figure result previously written by :func:`save_result`."""
    return result_from_dict(json.loads(Path(path).read_text()))
