"""Fig. 1: request distribution by server rank under the k-subset policy.

Fig. 1 of the paper is analytic (Eq. 1): with servers ordered by reported
load, the fraction of a phase's requests sent to each rank depends only on
``n`` and ``k``.  We reproduce the analytic curves and cross-check them
with a Monte-Carlo simulation of the subset-selection step itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ksubset_analytic import ksubset_rank_distribution
from repro.engine.rng import RandomStreams

__all__ = ["Fig1Result", "run_fig1"]


@dataclass(frozen=True)
class Fig1Result:
    """Analytic and empirical rank distributions for several ``k``."""

    num_servers: int
    k_values: tuple[int, ...]
    analytic: dict[int, np.ndarray]
    empirical: dict[int, np.ndarray]
    draws: int

    def max_abs_error(self, k: int) -> float:
        """Largest |empirical - analytic| over ranks for one ``k``."""
        return float(np.abs(self.empirical[k] - self.analytic[k]).max())

    def format_table(self) -> str:
        """Plain-text table: one row per rank, analytic/empirical per k."""
        lines = [
            f"fig1: k-subset request distribution by server rank "
            f"(n={self.num_servers}, {self.draws} draws per k)",
            "rank".ljust(6)
            + "".join(
                f"k={k} (eq.1 / sim)".rjust(24) for k in self.k_values
            ),
        ]
        for rank in range(self.num_servers):
            row = [f"{rank + 1:<6d}"]
            for k in self.k_values:
                row.append(
                    f"{self.analytic[k][rank]:.4f} / "
                    f"{self.empirical[k][rank]:.4f}".rjust(24)
                )
            lines.append("".join(row))
        return "\n".join(lines)


def run_fig1(
    num_servers: int = 10,
    k_values: tuple[int, ...] = (1, 2, 3, 5, 10),
    draws: int = 200_000,
    seed: int = 1,
) -> Fig1Result:
    """Reproduce Fig. 1: Eq. 1 versus Monte-Carlo subset selection.

    The empirical side draws ``draws`` random k-subsets over servers with
    fixed distinct loads (load = rank) and tallies where the least-loaded
    rule sends each request.
    """
    if draws < 1:
        raise ValueError(f"draws must be >= 1, got {draws}")
    rng = RandomStreams(seed).stream("fig1")
    loads = np.arange(num_servers, dtype=float)  # rank i has load i (ties: none)
    analytic: dict[int, np.ndarray] = {}
    empirical: dict[int, np.ndarray] = {}
    for k in k_values:
        analytic[k] = ksubset_rank_distribution(num_servers, k)
        counts = np.zeros(num_servers, dtype=np.int64)
        if k == 1:
            picks = rng.integers(num_servers, size=draws)
            np.add.at(counts, picks, 1)
        elif k == num_servers:
            counts[0] = draws
        else:
            for _ in range(draws):
                subset = rng.choice(num_servers, size=k, replace=False)
                counts[subset[loads[subset].argmin()]] += 1
        empirical[k] = counts / draws
    return Fig1Result(
        num_servers=num_servers,
        k_values=tuple(k_values),
        analytic=analytic,
        empirical=empirical,
        draws=draws,
    )
