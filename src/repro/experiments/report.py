"""Result containers and table formatting for figure sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.stats import (
    ConfidenceInterval,
    PercentileSummary,
    mean_confidence_interval,
)

__all__ = ["CellResult", "FigureResult"]


@dataclass(frozen=True)
class CellResult:
    """All replications of one (curve, x) cell."""

    curve: str
    x: float
    samples: tuple[float, ...]

    def confidence_interval(self, confidence: float = 0.90) -> ConfidenceInterval:
        """Mean ± t-interval over the per-seed means (the paper's bars)."""
        return mean_confidence_interval(list(self.samples), confidence)

    def percentile_box(self) -> PercentileSummary:
        """Median/quartile/min-max box over the per-seed means (Figs. 10–11)."""
        return PercentileSummary.from_samples(list(self.samples))

    @property
    def mean(self) -> float:
        """Mean over replications."""
        return sum(self.samples) / len(self.samples)

    @property
    def median(self) -> float:
        """Median over replications."""
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class FigureResult:
    """A completed figure sweep: every cell of (curve × x)."""

    figure_id: str
    title: str
    x_label: str
    x_values: tuple[float, ...]
    curve_labels: tuple[str, ...]
    summary: str
    jobs: int
    seeds: int
    cells: dict[tuple[str, float], CellResult] = field(default_factory=dict)
    notes: str = ""
    # Probe summaries from traced runs, keyed by (curve, x, seed); empty
    # unless the sweep ran with trace=True.  Persisted via run manifests
    # (repro.obs.manifest), not the figure-result JSON format.
    observations: dict[tuple[str, float, int], dict] = field(
        default_factory=dict, repr=False
    )
    # Cache provenance from cache-aware sweeps (repro.ablation.cache):
    # hit/fresh counts and per-cell run IDs.  None when the sweep ran
    # without a cache; persisted via run manifests, not the figure-result
    # JSON format.
    cache_info: dict | None = field(default=None, repr=False)

    def cell(self, curve: str, x: float) -> CellResult:
        """Look up one cell."""
        try:
            return self.cells[(curve, x)]
        except KeyError:
            raise KeyError(
                f"{self.figure_id} has no cell (curve={curve!r}, x={x!r})"
            ) from None

    def value(self, curve: str, x: float) -> float:
        """Headline value of a cell (mean for CI figures, median for box)."""
        result = self.cell(curve, x)
        return result.median if self.summary == "box" else result.mean

    def series(self, curve: str) -> list[float]:
        """Headline values of one curve across the x sweep."""
        return [self.value(curve, x) for x in self.x_values]

    def best_curve_at(self, x: float, exclude: tuple[str, ...] = ()) -> str:
        """Label of the lowest-response-time curve at ``x``."""
        candidates = [c for c in self.curve_labels if c not in exclude]
        return min(candidates, key=lambda c: self.value(c, x))

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------

    def format_table(self, confidence: float = 0.90) -> str:
        """Aligned plain-text table, one row per x-value.

        CI figures show ``mean±half-width``; box figures show
        ``median [p25..p75]``.
        """
        header = [self.x_label.ljust(8)]
        width = max(18, max(len(label) for label in self.curve_labels) + 2)
        header += [label.rjust(width) for label in self.curve_labels]
        lines = [
            f"{self.figure_id}: {self.title}",
            f"(jobs={self.jobs}, seeds={self.seeds}"
            + (f"; {self.notes}" if self.notes else "")
            + ")",
            "".join(header),
        ]
        for x in self.x_values:
            row = [f"{x:<8g}"]
            for label in self.curve_labels:
                cell = self.cell(label, x)
                if self.summary == "box":
                    box = cell.percentile_box()
                    text = f"{box.median:.2f} [{box.p25:.2f}..{box.p75:.2f}]"
                else:
                    interval = cell.confidence_interval(confidence)
                    text = f"{interval.mean:.3f}±{interval.half_width:.3f}"
                row.append(text.rjust(width))
            lines.append("".join(row))
        return "\n".join(lines)

    def format_csv(self) -> str:
        """Raw per-seed samples as CSV (curve, x, seed_index, value).

        The lossless export for downstream analysis in other tools.
        """
        lines = ["curve,x,seed_index,mean_response_time"]
        for label in self.curve_labels:
            for x in self.x_values:
                for index, value in enumerate(self.cell(label, x).samples):
                    lines.append(f"{label},{x:g},{index},{value!r}")
        return "\n".join(lines) + "\n"

    def format_markdown(self, confidence: float = 0.90) -> str:
        """The same table as GitHub-flavoured Markdown."""
        head = f"| {self.x_label} | " + " | ".join(self.curve_labels) + " |"
        rule = "|" + "---|" * (len(self.curve_labels) + 1)
        lines = [head, rule]
        for x in self.x_values:
            row = [f"| {x:g} "]
            for label in self.curve_labels:
                cell = self.cell(label, x)
                if self.summary == "box":
                    box = cell.percentile_box()
                    row.append(f"| {box.median:.2f} [{box.p25:.2f}..{box.p75:.2f}] ")
                else:
                    interval = cell.confidence_interval(confidence)
                    row.append(f"| {interval.mean:.3f}±{interval.half_width:.3f} ")
            lines.append("".join(row) + "|")
        return "\n".join(lines)
