"""Experiment harness: the paper's figures as reproducible parameter sweeps.

* :mod:`repro.experiments.spec` — declarative figure/curve specifications.
* :mod:`repro.experiments.registry` — every figure of the paper's
  evaluation section (Figs. 1–14) plus our extension ablations, keyed by
  figure id.
* :mod:`repro.experiments.runner` — executes a figure's sweep over
  (curve × x-value × seed), optionally across processes.
* :mod:`repro.experiments.report` — confidence-interval / percentile-box
  tables in plain text and Markdown.
"""

from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.grid import GridResult, run_advantage_grid
from repro.experiments.persistence import load_result, save_result
from repro.experiments.plot import ascii_chart
from repro.experiments.registry import FIGURES, figure_ids, get_figure
from repro.experiments.report import CellResult, FigureResult
from repro.experiments.runner import run_cell, run_figure
from repro.experiments.spec import CurveSpec, FigureSpec

__all__ = [
    "CurveSpec",
    "FigureSpec",
    "CellResult",
    "FigureResult",
    "Fig1Result",
    "FIGURES",
    "figure_ids",
    "get_figure",
    "run_cell",
    "run_figure",
    "run_fig1",
    "GridResult",
    "run_advantage_grid",
    "save_result",
    "load_result",
    "ascii_chart",
]
