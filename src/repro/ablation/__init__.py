"""Ablation harness: content-hashed run IDs, result cache, knockout studies.

See DESIGN.md §13.  Three layers:

- :mod:`repro.ablation.runid` — canonical digests of fully-resolved sweep
  cells; two cells share an ID exactly when they are guaranteed to
  produce the same metric value.
- :mod:`repro.ablation.cache` — an on-disk store keyed by those IDs with
  schema-versioned invalidation and crash/corruption-safe reads.
- :mod:`repro.ablation.study` — baseline-vs-knockout studies over the
  experiment registry, emitting ranked component-importance reports.
"""

from repro.ablation.cache import CACHE_SCHEMA_VERSION, CacheWarning, ResultCache
from repro.ablation.runid import (
    RUN_ID_SCHEMA_VERSION,
    canonical_json,
    describe_value,
    live_run_id,
    resolve_live_spec,
    resolve_simulation_spec,
    run_id,
)
from repro.ablation.study import (
    AblationEntry,
    AblationReport,
    AblationStudy,
    Knockout,
    default_knockouts,
    engine_knockouts,
    save_report,
)

__all__ = [
    "RUN_ID_SCHEMA_VERSION",
    "CACHE_SCHEMA_VERSION",
    "CacheWarning",
    "ResultCache",
    "canonical_json",
    "describe_value",
    "live_run_id",
    "resolve_live_spec",
    "resolve_simulation_spec",
    "run_id",
    "Knockout",
    "AblationEntry",
    "AblationReport",
    "AblationStudy",
    "default_knockouts",
    "engine_knockouts",
    "save_report",
]
