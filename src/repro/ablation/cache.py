"""On-disk result cache keyed by content-hashed run IDs.

Layout (DESIGN.md §13)::

    <root>/v<CACHE_SCHEMA_VERSION>/<id[:2]>/<run_id>.json

Each entry is one JSON document holding the metric value, the run ID it
claims to answer, and the cache schema version.  Correctness guarantees:

- **Schema-versioned invalidation.**  Entries live under a version
  directory *and* repeat the version inside the document; bumping
  :data:`CACHE_SCHEMA_VERSION` (or :data:`~repro.ablation.runid.
  RUN_ID_SCHEMA_VERSION`, which is hashed into every ID) orphans every
  old entry rather than reinterpreting it.
- **No stale or corrupt reads.**  A get validates the document parses,
  carries the expected schema, and names the requested run ID.  Any
  mismatch — truncated file, hand-edited payload, file renamed onto the
  wrong ID — produces a warning and a miss, never a wrong value.
- **Concurrent writers are safe.**  Writes go to a unique temporary file
  in the same directory and are published with ``os.replace`` (atomic on
  POSIX).  Two shards racing on one cell both compute the same value
  (run IDs are deterministic), so last-writer-wins is harmless, and a
  reader can never observe a half-written entry.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import warnings
from pathlib import Path

__all__ = ["CACHE_SCHEMA_VERSION", "CacheWarning", "ResultCache"]

#: On-disk entry format version.  Bump on any change to the entry layout
#: or to the meaning of ``value``.
CACHE_SCHEMA_VERSION = 1


class CacheWarning(UserWarning):
    """A cache entry was unusable and the runner fell back to a fresh run."""


#: Process-wide counter making temporary file names unique even when one
#: process hosts several caches writing the same entry.
_tmp_counter = itertools.count()


class ResultCache:
    """Content-addressed store of per-cell metric values.

    Parameters
    ----------
    root:
        Cache directory; created lazily on first write.  Entries land
        under ``root/v<schema>/``.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r})"

    @property
    def version_dir(self) -> Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}"

    def _path(self, run_id: str) -> Path:
        if not run_id or any(c not in "0123456789abcdef" for c in run_id):
            raise ValueError(f"malformed run id {run_id!r}")
        return self.version_dir / run_id[:2] / f"{run_id}.json"

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------

    def get(self, run_id: str) -> float | None:
        """The cached metric value for ``run_id``, or ``None`` on a miss.

        Every failure mode — missing file, unreadable JSON, schema
        mismatch, an entry claiming a different run ID, a non-numeric
        value — is a *miss with a warning*, so callers always fall back
        to a fresh run and can never crash on (or trust) a bad entry.
        """
        path = self._path(run_id)
        try:
            raw = path.read_text()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as error:
            self._reject(path, f"unreadable ({error})")
            return None
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError as error:
            self._reject(path, f"corrupt JSON ({error})")
            return None
        if not isinstance(entry, dict):
            self._reject(path, f"not an object ({type(entry).__name__})")
            return None
        if entry.get("cache_schema") != CACHE_SCHEMA_VERSION:
            self._reject(
                path,
                f"schema {entry.get('cache_schema')!r} != "
                f"{CACHE_SCHEMA_VERSION}",
            )
            return None
        if entry.get("run_id") != run_id:
            self._reject(
                path, f"entry names run id {entry.get('run_id')!r}"
            )
            return None
        value = entry.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            self._reject(path, f"non-numeric value {value!r}")
            return None
        self.hits += 1
        return float(value)

    def _reject(self, path: Path, reason: str) -> None:
        self.invalid += 1
        self.misses += 1
        warnings.warn(
            f"ignoring cache entry {path.name}: {reason}; re-running cell",
            CacheWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------

    def put(self, run_id: str, value: float, spec: dict | None = None) -> Path:
        """Store ``value`` under ``run_id`` atomically; returns the path.

        ``spec`` (the resolved cell spec) is embedded for debuggability —
        ``jq .spec`` on an entry shows exactly what produced it.  Floats
        round-trip bit-exactly through JSON (shortest-repr encoding), so
        a warm read returns the identical double a cold run produced.
        """
        value = float(value)
        if not math.isfinite(value):
            # NaN does not survive a JSON round trip portably and
            # infinities usually mean a degenerate cell; neither is worth
            # caching, and skipping them is always correct.
            return self._path(run_id)
        path = self._path(run_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "cache_schema": CACHE_SCHEMA_VERSION,
            "run_id": run_id,
            "value": value,
        }
        if spec is not None:
            entry["spec"] = spec
        tmp = path.parent / (
            f".{run_id}.{os.getpid()}.{next(_tmp_counter)}.tmp"
        )
        tmp.write_text(json.dumps(entry, sort_keys=True, indent=1) + "\n")
        os.replace(tmp, path)
        self.writes += 1
        return path

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Hit/miss/write counters plus the cache location (for manifests)."""
        return {
            "cache_dir": str(self.root),
            "cache_schema": CACHE_SCHEMA_VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalid_entries": self.invalid,
        }

    def __len__(self) -> int:
        """Number of entries currently on disk (current schema only)."""
        if not self.version_dir.is_dir():
            return 0
        return sum(1 for _ in self.version_dir.glob("*/*.json"))
