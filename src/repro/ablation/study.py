"""Baseline-vs-knockout ablation studies over the experiment registry.

An :class:`AblationStudy` fixes one *baseline cell* — a (figure, curve, x)
coordinate — and re-runs it with one component changed at a time: another
curve of the same figure (a policy/estimator/staleness swap, inferred by
comparing the curves' described factories), a forced engine, or a swapped-
in override (faults, overload, arrival program, autoscaler, dispatcher
count).  Every variant runs with the same seeds as the baseline (common
random numbers), so per-seed deltas are paired and the ranked importance
report shows each component's effect with its spread rather than noise
from independent sampling.

All runs go through :func:`repro.experiments.runner.run_figure`, so a
shared :class:`~repro.ablation.cache.ResultCache` deduplicates work across
studies and repeated invocations — a knockout grid over a figure whose
sweep is already cached costs nothing.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.experiments.registry import get_figure
from repro.experiments.runner import run_figure

__all__ = [
    "Knockout",
    "AblationEntry",
    "AblationReport",
    "AblationStudy",
    "default_knockouts",
    "engine_knockouts",
]


@dataclass(frozen=True)
class Knockout:
    """One ablation variant: the baseline cell with one component changed.

    Unset fields inherit the baseline's configuration, so a knockout
    names exactly the delta it introduces.  ``component`` labels what
    changed (``"policy"``, ``"estimator"``, ``"staleness"``,
    ``"engine"``, ``"faults"``, ...) for the report's ranking.
    """

    name: str
    component: str
    curve: str | None = None
    engine: str | None = None
    faults: str | None = None
    dispatchers: int | None = None
    overload: tuple | None = None
    arrivals: str | None = None
    autoscale: str | None = None
    detail: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("knockout name must be non-empty")
        if not self.component:
            raise ValueError(f"knockout {self.name!r} needs a component label")


@dataclass(frozen=True)
class AblationEntry:
    """One ranked row of an ablation report."""

    name: str
    component: str
    detail: str
    baseline_mean: float
    variant_mean: float
    #: Mean over seeds of the paired per-seed delta (variant − baseline).
    delta_mean: float
    #: ``delta_mean`` relative to the baseline mean's magnitude.
    delta_relative: float
    per_seed_deltas: tuple[float, ...]
    delta_min: float
    delta_max: float
    delta_std: float

    @property
    def importance(self) -> float:
        """Ranking key: magnitude of the mean paired delta."""
        return abs(self.delta_mean)


def _paired_stats(
    baseline: tuple[float, ...], variant: tuple[float, ...]
) -> tuple[tuple[float, ...], float, float, float, float]:
    deltas = tuple(v - b for b, v in zip(baseline, variant))
    mean = sum(deltas) / len(deltas)
    if len(deltas) > 1:
        variance = sum((d - mean) ** 2 for d in deltas) / (len(deltas) - 1)
    else:
        variance = 0.0
    return deltas, mean, min(deltas), max(deltas), math.sqrt(variance)


@dataclass
class AblationReport:
    """Ranked component-importance results of one study."""

    figure_id: str
    baseline: str
    x: float
    metric: str
    jobs: int
    seeds: int
    base_seed: int
    engine: str
    baseline_mean: float
    baseline_samples: tuple[float, ...]
    #: Ranked most-important first (largest ``|delta_mean|``).
    entries: list[AblationEntry] = field(default_factory=list)
    cache_stats: dict | None = None

    def to_json(self) -> dict:
        """JSON-serializable form (the ``repro ablate --json`` payload)."""
        payload = {
            "figure_id": self.figure_id,
            "baseline": self.baseline,
            "x": self.x,
            "metric": self.metric,
            "jobs": self.jobs,
            "seeds": self.seeds,
            "base_seed": self.base_seed,
            "engine": self.engine,
            "baseline_mean": self.baseline_mean,
            "baseline_samples": list(self.baseline_samples),
            "ranking": [
                {
                    "rank": rank,
                    "knockout": entry.name,
                    "component": entry.component,
                    "detail": entry.detail,
                    "baseline_mean": entry.baseline_mean,
                    "variant_mean": entry.variant_mean,
                    "delta_mean": entry.delta_mean,
                    "delta_relative": entry.delta_relative,
                    "per_seed_deltas": list(entry.per_seed_deltas),
                    "delta_min": entry.delta_min,
                    "delta_max": entry.delta_max,
                    "delta_std": entry.delta_std,
                }
                for rank, entry in enumerate(self.entries, start=1)
            ],
        }
        if self.cache_stats is not None:
            payload["cache"] = self.cache_stats
        return payload

    def format_table(self) -> str:
        """Aligned plain-text ranking, most important component first."""
        lines = [
            f"ablation of {self.figure_id} @ x={self.x:g} "
            f"(baseline {self.baseline!r}, metric {self.metric}, "
            f"jobs={self.jobs}, seeds={self.seeds})",
            f"baseline mean {self.metric} = {self.baseline_mean:.4f}",
        ]
        name_width = max(
            [len("knockout") + 2]
            + [len(entry.name) + 2 for entry in self.entries]
        )
        comp_width = max(
            [len("component") + 2]
            + [len(entry.component) + 2 for entry in self.entries]
        )
        lines.append(
            "rank  "
            + "knockout".ljust(name_width)
            + "component".ljust(comp_width)
            + f"{'Δmean':>10}{'Δ%':>9}  spread(min..max)  per-seed σ"
        )
        for rank, entry in enumerate(self.entries, start=1):
            relative = (
                f"{100.0 * entry.delta_relative:+8.1f}%"
                if math.isfinite(entry.delta_relative)
                else "     n/a "
            )
            lines.append(
                f"{rank:<6}"
                + entry.name.ljust(name_width)
                + entry.component.ljust(comp_width)
                + f"{entry.delta_mean:>+10.4f}"
                + relative
                + f"  ({entry.delta_min:+.4f}..{entry.delta_max:+.4f})"
                + f"  {entry.delta_std:.4f}"
            )
        return "\n".join(lines)


def default_knockouts(figure_id: str, baseline: str) -> list[Knockout]:
    """One knockout per non-baseline curve of the figure.

    The changed component is inferred by comparing the canonical
    descriptions of the two curves' factories — a curve differing only in
    ``make_estimator`` is an estimator knockout, one differing in
    ``make_policy`` a policy knockout, and so on.  Curves differing in
    several factories get a compound label like ``"policy+estimator"``.
    """
    from repro.ablation.runid import canonical_json, describe_value

    spec = get_figure(figure_id)
    base = spec.curve(baseline)
    knockouts = []
    factories = (
        ("make_policy", "policy"),
        ("make_estimator", "estimator"),
        ("make_staleness", "staleness"),
    )
    for curve in spec.curves:
        if curve.label == baseline:
            continue
        changed = [
            component
            for attr, component in factories
            if canonical_json(describe_value(getattr(base, attr)))
            != canonical_json(describe_value(getattr(curve, attr)))
        ]
        knockouts.append(
            Knockout(
                name=f"curve:{curve.label}",
                component="+".join(changed) or "curve",
                curve=curve.label,
                detail=f"swap baseline curve for {curve.label!r}",
            )
        )
    return knockouts


def engine_knockouts(
    engines: tuple[str, ...] = ("event", "fast", "vector")
) -> list[Knockout]:
    """Engine as an ablation axis.

    event/fast/vector are bit-identical by contract, so on eligible cells
    every one of these must report a delta of exactly zero — a built-in
    differential check that doubles as the cross-engine oracle in the
    test suite.
    """
    return [
        Knockout(
            name=f"engine:{engine}",
            component="engine",
            engine=engine,
            detail=f"force the {engine} engine",
        )
        for engine in engines
    ]


@dataclass
class AblationStudy:
    """Knock out or swap one component at a time and rank the damage.

    Parameters
    ----------
    figure_id / baseline:
        The registry figure and the curve serving as the baseline.
    x:
        The cell's x value; defaults to the middle of the figure's sweep
        (where the curves are typically well separated).
    jobs / seeds / base_seed:
        Replication scale; every variant runs seeds ``base_seed + r`` for
        ``r < seeds``, pairing deltas via common random numbers.
    engine:
        Engine for the baseline and for knockouts that do not force one.
    knockouts:
        The variant grid; defaults to :func:`default_knockouts` (every
        other curve of the figure).
    """

    figure_id: str
    baseline: str
    x: float | None = None
    jobs: int | None = None
    seeds: int = 3
    base_seed: int = 1
    engine: str = "auto"
    knockouts: list[Knockout] | None = None

    def __post_init__(self) -> None:
        spec = get_figure(self.figure_id)
        spec.curve(self.baseline)  # validate early
        if self.x is not None and self.x not in spec.x_values:
            raise ValueError(
                f"{self.figure_id} has no x={self.x:g}; "
                f"available: {[f'{x:g}' for x in spec.x_values]}"
            )
        if self.seeds < 1:
            raise ValueError(f"seeds must be >= 1, got {self.seeds}")
        names = [k.name for k in self.knockouts or ()]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate knockout names in {names}")

    def resolved_x(self) -> float:
        if self.x is not None:
            return self.x
        x_values = get_figure(self.figure_id).x_values
        return x_values[len(x_values) // 2]

    def _run_variant(
        self, curve: str, cache, processes, **overrides
    ) -> tuple[float, ...]:
        result = run_figure(
            self.figure_id,
            jobs=self.jobs,
            seeds=self.seeds,
            x_values=(self.resolved_x(),),
            curves=(curve,),
            base_seed=self.base_seed,
            processes=processes,
            cache=cache,
            **overrides,
        )
        return result.cell(curve, self.resolved_x()).samples

    def run(self, cache=None, processes: int | None = None) -> AblationReport:
        """Run baseline plus every knockout; returns the ranked report.

        ``cache`` (a :class:`~repro.ablation.cache.ResultCache` or cache
        directory) is shared by every variant, so overlapping studies and
        re-runs only pay for cells not seen before.
        """
        from repro.experiments.runner import _coerce_cache

        spec = get_figure(self.figure_id)
        x = self.resolved_x()
        jobs = self.jobs if self.jobs is not None else spec.default_jobs
        knockouts = (
            self.knockouts
            if self.knockouts is not None
            else default_knockouts(self.figure_id, self.baseline)
        )
        cache = _coerce_cache(cache)
        baseline_samples = self._run_variant(
            self.baseline, cache, processes, engine=self.engine
        )
        baseline_mean = sum(baseline_samples) / len(baseline_samples)
        scale = abs(baseline_mean)
        entries = []
        for knockout in knockouts:
            variant_samples = self._run_variant(
                knockout.curve or self.baseline,
                cache,
                processes,
                engine=knockout.engine or self.engine,
                faults=knockout.faults,
                dispatchers=knockout.dispatchers,
                overload=knockout.overload,
                arrivals=knockout.arrivals,
                autoscale=knockout.autoscale,
            )
            deltas, mean, low, high, std = _paired_stats(
                baseline_samples, variant_samples
            )
            entries.append(
                AblationEntry(
                    name=knockout.name,
                    component=knockout.component,
                    detail=knockout.detail,
                    baseline_mean=baseline_mean,
                    variant_mean=sum(variant_samples) / len(variant_samples),
                    delta_mean=mean,
                    delta_relative=(
                        mean / scale
                        if scale > 0
                        else (0.0 if mean == 0 else math.inf)
                    ),
                    per_seed_deltas=deltas,
                    delta_min=low,
                    delta_max=high,
                    delta_std=std,
                )
            )
        entries.sort(key=lambda entry: entry.importance, reverse=True)
        return AblationReport(
            figure_id=self.figure_id,
            baseline=self.baseline,
            x=x,
            metric=spec.metric,
            jobs=jobs,
            seeds=self.seeds,
            base_seed=self.base_seed,
            engine=self.engine,
            baseline_mean=baseline_mean,
            baseline_samples=baseline_samples,
            entries=entries,
            cache_stats=cache.stats() if cache is not None else None,
        )


def save_report(report: AblationReport, path) -> None:
    """Write a report's JSON payload to ``path``."""
    from pathlib import Path

    Path(path).write_text(json.dumps(report.to_json(), indent=2) + "\n")
