"""Stable content-hashed run identities for sweep cells.

A *run ID* is the sha256 digest of the canonical JSON form of a cell's
fully-resolved specification: the registry coordinates (figure, curve, x,
seed, jobs, metric) plus a recursive description of every component the
materialized simulation will actually run with — policy, λ estimator,
staleness model, arrival source, service distribution, faults, overload
protection, autoscaler, dispatcher count, engine.  Two cells get the same
ID exactly when they are guaranteed to produce the same metric value, and
any change to any spec field — a different seed, a swapped estimator, a
re-tuned registry constant — changes the ID.

Canonicalization rules (DESIGN.md §13):

- Scalars (int/float/str/bool/None) pass through; numpy scalars are
  converted to their Python equivalents so dtype never leaks into the ID.
- Sequences become lists; numpy arrays become nested lists; sets are
  ordered by their canonical JSON form.
- Callables (classes, functions, ``functools.partial``) are described by
  qualified name — and, for partials, their described args/keywords —
  matching how registry factories ship to worker processes by name.
- Objects exposing ``describe()`` (fault injectors, overload configs,
  rate programs, autoscalers) contribute ``{"type": ..., **describe()}``,
  reusing the digests the obs layer already records in manifests.
- Other objects contribute their class plus every public, non-volatile
  attribute, recursively.  Volatile run-state (probes, ``engine_used``,
  ``last_*`` summaries) is excluded: it does not determine results.
- Dictionaries are serialized with sorted keys and no whitespace, so key
  order never matters.
"""

from __future__ import annotations

import functools
import hashlib
import json
from typing import Any

__all__ = [
    "RUN_ID_SCHEMA_VERSION",
    "describe_value",
    "canonical_json",
    "run_id",
    "resolve_simulation_spec",
    "resolve_live_spec",
    "live_run_id",
]

#: Bump when the canonicalization rules change: every run ID embeds this
#: version, so a rule change invalidates all previously cached results
#: instead of silently colliding with them.
RUN_ID_SCHEMA_VERSION = 1

#: Simulation attributes that never influence the metric value: observers
#: and post-run state.  ``trace_jobs``/``trace_response_times`` stay *in*
#: the spec — they do not change the metric either, but they change what
#: the result object carries, and a conservative ID is a correct ID.
_VOLATILE_ATTRS = frozenset(
    {
        "probes",
        "engine_used",
        "last_breaker_summary",
        "last_fluid_summary",
        "last_scaling_summary",
        # The requested engine is folded to its equivalence class by
        # resolve_simulation_spec (event/fast/vector are bit-identical),
        # so the raw attribute must not leak into the description.
        "engine",
    }
)

#: Recursion budget for component description.  Registry components
#: bottom out well within this depth; exceeding it raises (rather than
#: silently truncating, which could alias two different specs).
_MAX_DEPTH = 10


def _qualname(obj: Any) -> str:
    module = getattr(obj, "__module__", None) or ""
    name = getattr(obj, "__qualname__", None) or type(obj).__name__
    return f"{module}.{name}" if module else name


def describe_value(value: Any, depth: int = _MAX_DEPTH, _seen: frozenset = frozenset()) -> Any:
    """Reduce ``value`` to canonical JSON-serializable form.

    Raises ``ValueError`` when the recursion budget is exhausted and
    ``TypeError`` via :func:`canonical_json` for anything that still is
    not serializable — a run ID must never be built from a partial
    description.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    # numpy scalars and arrays (imported lazily: hashing plain specs must
    # not require numpy at import time).
    item = getattr(value, "item", None)
    shape = getattr(value, "shape", None)
    if shape is not None and hasattr(value, "tolist"):
        return value.tolist()
    if item is not None and callable(item) and type(value).__module__ == "numpy":
        return value.item()
    if depth <= 0:
        raise ValueError(
            f"component description exceeded depth budget at {value!r}"
        )
    if id(value) in _seen:
        raise ValueError(f"cyclic component reference at {value!r}")
    seen = _seen | {id(value)}
    if isinstance(value, (list, tuple)):
        return [describe_value(v, depth - 1, seen) for v in value]
    if isinstance(value, (set, frozenset)):
        described = [describe_value(v, depth - 1, seen) for v in value]
        return sorted(described, key=lambda v: canonical_json(v))
    if isinstance(value, dict):
        return {
            str(k): describe_value(v, depth - 1, seen)
            for k, v in value.items()
        }
    if isinstance(value, functools.partial):
        return {
            "partial": describe_value(value.func, depth - 1, seen),
            "args": [describe_value(v, depth - 1, seen) for v in value.args],
            "keywords": {
                str(k): describe_value(v, depth - 1, seen)
                for k, v in value.keywords.items()
            },
        }
    if isinstance(value, type) or callable(value):
        return {"callable": _qualname(value)}
    describe = getattr(value, "describe", None)
    if callable(describe):
        return {
            "type": _qualname(type(value)),
            "describe": describe_value(describe(), depth - 1, seen),
        }
    attrs = _public_attrs(value)
    return {
        "type": _qualname(type(value)),
        **{
            name: describe_value(attr, depth - 1, seen)
            for name, attr in attrs
        },
    }


def _public_attrs(obj: Any) -> list[tuple[str, Any]]:
    """Public, non-volatile instance attributes, sorted by name."""
    names: set[str] = set()
    if hasattr(obj, "__dict__"):
        names.update(vars(obj))
    for klass in type(obj).__mro__:
        names.update(getattr(klass, "__slots__", ()))
    out = []
    for name in sorted(names):
        if name.startswith("_") or name in _VOLATILE_ATTRS:
            continue
        try:
            attr = getattr(obj, name)
        except AttributeError:  # declared slot never assigned
            continue
        out.append((name, attr))
    return out


def canonical_json(spec: Any) -> str:
    """The unique JSON serialization hashed into the run ID.

    Sorted keys, no whitespace, ASCII-only: byte-identical for equal
    specs regardless of dict ordering, platform or locale.
    """
    return json.dumps(
        spec, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def run_id(spec: dict) -> str:
    """The content hash (64 hex chars) identifying a resolved cell spec."""
    return hashlib.sha256(canonical_json(spec).encode("ascii")).hexdigest()


def resolve_simulation_spec(
    simulation: Any,
    *,
    figure_id: str,
    curve: str,
    x: float,
    seed: int,
    jobs: int,
    metric: str,
    engine: str = "auto",
) -> dict:
    """The fully-resolved canonical spec of one materialized sweep cell.

    ``simulation`` is the (not yet run) object the registry built for the
    cell, with every override already applied — so the description
    captures what will actually execute, not just the request.  The
    event, fast and vector engines are bit-identical by contract, so the
    effective engine (the simulation's own ``engine`` attribute when it
    has one, else the requested string) is folded to a single equivalence
    class in the hash input unless it is ``"fluid"`` (which genuinely
    changes the result).
    """
    effective_engine = getattr(simulation, "engine", engine)
    engine_class = "fluid" if effective_engine == "fluid" else "simulation"
    return {
        "runid_schema": RUN_ID_SCHEMA_VERSION,
        "figure": figure_id,
        "curve": curve,
        "x": float(x),
        "seed": int(seed),
        "jobs": int(jobs),
        "metric": metric,
        "engine_class": engine_class,
        "driver": _qualname(type(simulation)),
        "simulation": describe_value(simulation),
    }


def resolve_live_spec(spec: Any) -> dict:
    """The canonical spec of one live (on-the-wire) cell.

    ``spec`` is a :class:`repro.live.harness.LiveSpec`.  Wall-clock-
    volatile execution parameters (the spec's own ``VOLATILE_FIELDS``:
    time scale, bind host, duration cap) are folded out — they decide
    how fast and where a cell runs, never which cell it is — so the
    same experiment replayed slower, elsewhere or uncapped resolves to
    the same ID.  Everything else (policy, n, λ, T, seed, estimator,
    overload and arrivals specs, loop mode, chaos configuration) is
    identity.

    Chaos spec *strings* (``faults``, ``impair``, ``health``) are folded
    to their parsed canonical digests, so two orderings of the same
    ``key=value`` pairs — or a default written out explicitly — resolve
    to the same ID.  A spec without chaos fields omits them from its
    description entirely, keeping pre-chaos IDs bit-for-bit stable.
    """
    described = dict(spec.describe())
    for name in getattr(spec, "VOLATILE_FIELDS", ()):
        described.pop(name, None)
    if described.get("faults") is not None:
        from repro.faults.parse import parse_fault_spec

        described["faults"] = parse_fault_spec(described["faults"]).describe()
    if described.get("impair") is not None:
        from repro.live.chaos import parse_impairment_spec

        described["impair"] = parse_impairment_spec(
            described["impair"]
        ).describe()
    if described.get("health") is not None:
        from repro.live.dispatcher import parse_health_spec

        described["health"] = parse_health_spec(described["health"]).describe()
    return {
        "runid_schema": RUN_ID_SCHEMA_VERSION,
        "driver": "live",
        "spec": describe_value(described),
    }


def live_run_id(spec: Any) -> str:
    """The content hash identifying one live cell (see :func:`run_id`)."""
    return run_id(resolve_live_spec(spec))
