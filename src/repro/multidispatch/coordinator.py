"""Server-side coordination channels for multi-dispatcher policies.

The paper's policies are strictly *pull*-based: dispatchers read a stale
bulletin board and never hear from servers directly.  The two
multi-dispatcher baselines from the related work invert that:

* **Join-Idle-Queue** (Lu et al.) — a server that *becomes idle* pushes
  its id onto the I-queue of one dispatcher; dispatch is then O(1) and
  message cost is at most one report per job.
* **LSQ** (Vargaftik et al.) — dispatchers keep a *local* queue-length
  estimate vector and spend a bounded per-arrival budget of fresh load
  polls to pull it back toward the truth.

:class:`ClusterCoordinator` is the shared substrate for both: it owns the
per-dispatcher I-queues, answers fresh load polls, and counts every
message so experiments can report communication cost next to response
time.  It is created by
:class:`~repro.multidispatch.simulation.MultiDispatchSimulation` only
when some bound policy asks for it, so board-only runs carry no trace of
it (and stay bit-identical to single-dispatcher runs).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.server import Server
    from repro.engine.simulator import Simulator

__all__ = ["ClusterCoordinator"]


class ClusterCoordinator:
    """Idle-report queues and bounded load polling for ``m`` dispatchers.

    Parameters
    ----------
    sim:
        The event engine (idle checks read its clock).
    servers:
        The cluster; polls read true queue lengths from it.
    num_dispatchers:
        Number of I-queues to maintain.
    rng:
        The dedicated ``"coordination"`` stream.  Only the *server-side*
        choice of which dispatcher receives an idle report draws from it;
        dispatcher-side randomness stays on each dispatcher's own policy
        stream.
    """

    def __init__(
        self,
        sim: "Simulator",
        servers: Sequence["Server"],
        num_dispatchers: int,
        rng: np.random.Generator,
    ) -> None:
        if num_dispatchers < 1:
            raise ValueError(
                f"num_dispatchers must be >= 1, got {num_dispatchers}"
            )
        self._sim = sim
        self._servers = servers
        self.num_dispatchers = num_dispatchers
        self._integers = rng.integers
        self._idle_queues: list[deque[int]] = [
            deque() for _ in range(num_dispatchers)
        ]
        self._advertised = [False] * len(servers)
        #: Idle reports actually sent (server -> dispatcher messages).
        self.idle_reports = 0
        #: Fresh queue-length polls answered (dispatcher -> server probes).
        self.load_polls = 0

    # -- Join-Idle-Queue ------------------------------------------------

    def idle_check(self, server_id: int) -> None:
        """Fired at a job's completion instant on ``server_id``.

        If the server's queue just drained and it is not already sitting
        in some I-queue, it reports to one uniformly chosen dispatcher —
        the randomized-assignment variant of JIQ.
        """
        if self._advertised[server_id]:
            return
        now = self._sim.now
        if self._servers[server_id].queue_length(now) > 0:
            return
        target = int(self._integers(self.num_dispatchers))
        self._idle_queues[target].append(server_id)
        self._advertised[server_id] = True
        self.idle_reports += 1

    def pop_idle(self, dispatcher_id: int) -> int | None:
        """Pop the oldest advertised-idle server from one I-queue.

        Entries can be stale — another dispatcher's random fallback may
        have landed work on the server since it reported — and JIQ
        dispatches to it anyway; that authentic imperfection is part of
        what the experiments measure.  Returns ``None`` when the queue is
        empty.
        """
        queue = self._idle_queues[dispatcher_id]
        if not queue:
            return None
        server_id = queue.popleft()
        self._advertised[server_id] = False
        return server_id

    # -- LSQ load polling ------------------------------------------------

    def poll_load(self, server_id: int, now: float) -> int:
        """Answer one fresh queue-length poll (counted as a message)."""
        self.load_polls += 1
        return self._servers[server_id].queue_length(now)

    # -- observability ---------------------------------------------------

    def message_summary(self) -> dict:
        """Communication cost digest for results and manifests."""
        return {
            "idle_reports": self.idle_reports,
            "load_polls": self.load_polls,
        }
