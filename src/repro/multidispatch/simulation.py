"""m concurrent stale-view dispatchers against one server cluster.

Dahlin's analysis has a single front-end interpreting stale load, but the
herd effect is worst when *many* dispatchers act on the same stale
bulletin board.  :class:`MultiDispatchSimulation` runs ``m`` concurrent
dispatchers inside the existing event engine:

* each dispatcher owns named RNG substreams — ``"arrivals[d]"`` and
  ``"policy[d]"`` (plus ``"staleness[d]"`` for independent boards) — so
  the common-random-numbers discipline extends across ``m``: changing
  one dispatcher's policy never perturbs another's draws;
* each dispatcher owns a *policy instance* and a *rate estimator
  instance*, bound to the dispatcher-local arrival rate λ_d
  (``lambda_view="local"``, the honest split λ/m) or to the global λ
  (``lambda_view="global"``, the coordinated upper bound) — so
  per-dispatcher Basic/Aggressive LI interprets staleness with the λ the
  dispatcher can actually know;
* the staleness view is either one **shared** board (all dispatchers
  read the same stale vector — the worst herd regime) or **independent**
  per-dispatcher boards (periodic boards are phase-staggered by
  ``period·d/m`` unless ``stagger_phases=False``; lossy boards lose
  refreshes independently per dispatcher);
* dispatchers may receive **heterogeneous** shares of the aggregate
  Poisson stream via ``dispatcher_weights``;
* dispatchers may **crash and recover** on lifecycle timelines reused
  from :mod:`repro.faults` (``dispatcher_faults``): arrivals at a down
  front-end are redirected to the next live one (wrap-around scan), and
  when every front-end is down the job is lost.

When ``m == 1`` the substream labels collapse to the plain
``"arrivals"``/``"policy"``/``"staleness"``/``"service"`` labels of
:class:`~repro.cluster.simulation.ClusterSimulation` and the event loop
replays its draw order exactly, so a one-dispatcher run is bit-identical
to the single-dispatcher driver (enforced by tests).
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.cluster.job import Job
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.server import Server
from repro.cluster.simulation import SimulationResult, validate_dispatcher_count
from repro.core.policy import Policy
from repro.core.rate_estimators import ExactRate, RateEstimator
from repro.engine.rng import RandomStreams
from repro.engine.simulator import Simulator
from repro.faults.schedule import FaultSchedule, ServerTimeline
from repro.multidispatch.coordinator import ClusterCoordinator
from repro.multidispatch.policies import MultiDispatcherPolicy
from repro.overload.config import OverloadConfig
from repro.staleness.base import StalenessModel
from repro.staleness.periodic import PeriodicUpdate
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.distributions import Distribution

__all__ = ["MultiDispatchSimulation", "MultiDispatchResult"]


@dataclass(frozen=True, slots=True)
class MultiDispatchResult(SimulationResult):
    """A :class:`SimulationResult` with per-dispatcher accounting.

    Attributes
    ----------
    dispatcher_jobs:
        Jobs *handled* by each dispatcher (after any fault redirects),
        including warm-up.
    dispatch_matrix:
        ``(m, n)`` dispatcher-by-server job counts, including warm-up;
        its row sums are ``dispatcher_jobs`` and its column sums are
        ``dispatch_counts`` minus nothing (lost jobs touch no server).
    jobs_redirected:
        Arrivals whose home dispatcher was down and that a live one
        picked up.
    messages:
        Coordinator communication cost (``idle_reports``,
        ``load_polls``); all zeros for board-only policies.
    """

    dispatcher_jobs: np.ndarray | None = None
    dispatch_matrix: np.ndarray | None = field(default=None, repr=False)
    jobs_redirected: int = 0
    messages: dict | None = None


def _instantiate(component, kind: str):
    """Build one per-dispatcher component from a factory or a template.

    Factories (zero-argument callables) are simply called; template
    *instances* are deep-copied so dispatchers never share mutable policy
    or estimator state.
    """
    if isinstance(component, (Policy, RateEstimator, StalenessModel)):
        return copy.deepcopy(component)
    if callable(component):
        return component()
    raise TypeError(
        f"{kind} must be an instance or a zero-argument factory, got "
        f"{type(component).__name__}"
    )


class MultiDispatchSimulation:
    """One multi-dispatcher load-balancing simulation.

    Parameters
    ----------
    num_servers:
        Cluster size ``n``.
    total_rate:
        Aggregate Poisson arrival rate λ, split across dispatchers
        (evenly, or by ``dispatcher_weights``).
    service:
        Service-time distribution, shared by all jobs in global event
        order (one ``"service"`` stream, exactly like the
        single-dispatcher driver).
    policy:
        Per-dispatcher selection policy: a zero-argument factory (called
        once per dispatcher) or a template instance (deep-copied).
    staleness:
        The information model.  With ``board="shared"`` a factory or
        instance yielding the one board every dispatcher reads; with
        ``board="independent"`` a factory called once per dispatcher.
    num_dispatchers:
        ``m``, the number of concurrent front-ends.
    board:
        ``"shared"`` (one bulletin board, the paper's worst herd regime)
        or ``"independent"`` (per-dispatcher boards with staggered
        refresh phases).
    dispatcher_weights:
        Optional ``m`` positive weights; dispatcher ``d`` receives the
        fraction ``w_d / Σw`` of the aggregate stream (the heterogeneous
        dispatcher-rate mode).  Defaults to an even split.
    rate_estimator:
        Per-dispatcher λ estimator factory or template (default
        :class:`ExactRate`).
    lambda_view:
        ``"local"`` binds each estimator to the dispatcher-local rate
        λ_d/n — the honest value a front-end can know, which makes LI
        under-estimate window arrivals by a factor of ``m`` (the §5.6
        dangerous direction); ``"global"`` binds the aggregate λ/n,
        modeling dispatchers that are told the total rate.
    dispatcher_faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule` realized
        per *dispatcher* from the ``"dispatcher-faults"`` stream
        (scripted events address dispatchers by their id via
        ``server_id``).  Only UP/DOWN matters for a front-end; degraded
        spans are treated as UP.
    stagger_phases:
        With independent periodic boards, offset board ``d`` by
        ``period·d/m`` so refreshes interleave instead of firing in
        lockstep.  Set ``False`` to keep all boards phase-aligned.
    probes:
        Observability probes; ``client_id`` in probe hooks carries the
        *handling* dispatcher's id.
    overload:
        Optional :class:`~repro.overload.config.OverloadConfig`.  Bounded
        queues live on the *shared* servers, so every dispatcher sees
        rejections consistently; circuit breakers and admission policies
        are per dispatcher (each front-end learns only from its own
        failed dispatches, off ``"breaker[d]"``/``"admission[d]"``
        streams).  Refused jobs are dropped — retry storms are not
        supported here (re-submission needs a home dispatcher the
        split-arrival model does not define) and raise ``ValueError``.

    The remaining parameters (``total_jobs``, ``warmup_fraction``,
    ``seed``, ``trace_jobs``, ``trace_response_times``, ``server_rates``,
    ``client_latency``) match
    :class:`~repro.cluster.simulation.ClusterSimulation`.
    """

    def __init__(
        self,
        num_servers: int,
        total_rate: float,
        service: Distribution,
        policy,
        staleness,
        num_dispatchers: int = 1,
        board: str = "shared",
        dispatcher_weights: list[float] | None = None,
        rate_estimator=None,
        lambda_view: str = "local",
        dispatcher_faults: FaultSchedule | None = None,
        stagger_phases: bool = True,
        total_jobs: int = 100_000,
        warmup_fraction: float = 0.1,
        seed: int = 0,
        trace_jobs: bool = False,
        trace_response_times: bool = False,
        server_rates: list[float] | None = None,
        client_latency: np.ndarray | None = None,
        probes: list | None = None,
        overload: OverloadConfig | None = None,
    ) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        if not math.isfinite(total_rate) or total_rate <= 0:
            raise ValueError(
                f"total_rate must be positive and finite, got {total_rate}"
            )
        if total_jobs < 1:
            raise ValueError(f"total_jobs must be >= 1, got {total_jobs}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        self.num_dispatchers = validate_dispatcher_count(num_dispatchers)
        if board not in ("shared", "independent"):
            raise ValueError(
                f"board must be 'shared' or 'independent', got {board!r}"
            )
        if board == "independent" and isinstance(staleness, StalenessModel):
            raise ValueError(
                "board='independent' needs a staleness *factory* (one "
                "board per dispatcher); got a single instance"
            )
        if lambda_view not in ("local", "global"):
            raise ValueError(
                f"lambda_view must be 'local' or 'global', got {lambda_view!r}"
            )
        if dispatcher_weights is not None:
            weights = [float(w) for w in dispatcher_weights]
            if len(weights) != self.num_dispatchers:
                raise ValueError(
                    f"dispatcher_weights has {len(weights)} entries for "
                    f"{self.num_dispatchers} dispatchers"
                )
            if any(not math.isfinite(w) or w <= 0 for w in weights):
                raise ValueError(
                    "dispatcher_weights must be positive and finite, got "
                    f"{dispatcher_weights!r}"
                )
            self.dispatcher_weights = weights
        else:
            self.dispatcher_weights = None
        if dispatcher_faults is not None and not isinstance(
            dispatcher_faults, FaultSchedule
        ):
            raise TypeError(
                "dispatcher_faults must be a FaultSchedule (or None), got "
                f"{type(dispatcher_faults).__name__}"
            )
        if server_rates is not None and len(server_rates) != num_servers:
            raise ValueError(
                f"server_rates has {len(server_rates)} entries for "
                f"{num_servers} servers"
            )
        if client_latency is not None:
            client_latency = np.asarray(client_latency, dtype=np.float64)
            if client_latency.ndim != 2 or client_latency.shape[1] != num_servers:
                raise ValueError(
                    "client_latency must be a (num_clients, num_servers) "
                    f"matrix; got shape {client_latency.shape} for "
                    f"{num_servers} servers"
                )
            if np.any(client_latency < 0):
                raise ValueError("client_latency entries must be non-negative")
        if overload is not None:
            if not isinstance(overload, OverloadConfig):
                raise TypeError(
                    "overload must be an OverloadConfig (or None), got "
                    f"{type(overload).__name__}"
                )
            if overload.retry_storm is not None:
                raise ValueError(
                    "retry storms are not supported with multiple "
                    "dispatchers: re-submissions would need a per-client "
                    "home dispatcher the split-arrival model does not define"
                )

        self.num_servers = num_servers
        self.total_rate = float(total_rate)
        self.service = service
        self.policy = policy
        self.staleness = staleness
        self.board = board
        self.rate_estimator = rate_estimator
        self.lambda_view = lambda_view
        self.dispatcher_faults = dispatcher_faults
        self.stagger_phases = stagger_phases
        self.total_jobs = total_jobs
        self.warmup_fraction = warmup_fraction
        self.seed = seed
        self.trace_jobs = trace_jobs
        self.trace_response_times = trace_response_times
        self.server_rates = server_rates
        self.client_latency = client_latency
        self.probes = list(probes) if probes else None
        self.overload = overload

    # -- configuration helpers -------------------------------------------

    def dispatcher_rates(self) -> list[float]:
        """Per-dispatcher arrival rates λ_d (sums to ``total_rate``)."""
        m = self.num_dispatchers
        if self.dispatcher_weights is None:
            return [self.total_rate / m] * m
        total = sum(self.dispatcher_weights)
        return [self.total_rate * w / total for w in self.dispatcher_weights]

    def _stream_label(self, base: str, dispatcher_id: int) -> str:
        # One dispatcher collapses to the single-dispatcher labels so the
        # m=1 run is bit-identical to ClusterSimulation's event engine.
        if self.num_dispatchers == 1:
            return base
        return f"{base}[{dispatcher_id}]"

    def _make_boards(
        self, sim: Simulator, servers, streams: RandomStreams, probe_set
    ) -> list[StalenessModel]:
        m = self.num_dispatchers
        if self.board == "shared":
            # Attach the caller's instance directly (attach() resets model
            # state), so post-run info_summary() reflects this run exactly
            # like the single-dispatcher driver's does.
            board = (
                self.staleness
                if isinstance(self.staleness, StalenessModel)
                else _instantiate(self.staleness, "staleness")
            )
            board.attach(
                sim, servers, streams.stream("staleness"), probes=probe_set
            )
            return [board] * m
        boards: list[StalenessModel] = []
        for d in range(m):
            model = _instantiate(self.staleness, "staleness")
            if (
                self.stagger_phases
                and isinstance(model, PeriodicUpdate)
                and model.phase_offset == 0.0
                and d > 0
            ):
                model.phase_offset = model.period * d / m
            model.attach(
                sim,
                servers,
                streams.stream(self._stream_label("staleness", d)),
                probes=probe_set,
            )
            boards.append(model)
        return boards

    def _realize_dispatcher_timelines(
        self, rng: np.random.Generator
    ) -> list[ServerTimeline] | None:
        """One lifecycle timeline per dispatcher (mirrors FaultInjector)."""
        schedule = self.dispatcher_faults
        if schedule is None:
            return None
        m = self.num_dispatchers
        scripted = schedule.scripted
        child_seeds = rng.integers(0, 2**63 - 1, size=m)
        timelines: list[ServerTimeline] = []
        for d in range(m):
            events = tuple(e for e in scripted if e.server_id == d)
            if events:
                timelines.append(ServerTimeline(schedule, scripted=events))
            elif schedule.is_null or scripted:
                timelines.append(ServerTimeline(schedule))
            else:
                child = np.random.Generator(
                    np.random.PCG64(int(child_seeds[d]))
                )
                timelines.append(ServerTimeline(schedule, rng=child))
        return timelines

    # -- the event loop ---------------------------------------------------

    def run(self) -> MultiDispatchResult:
        """Execute the simulation and return per-dispatcher measurements."""
        streams = RandomStreams(self.seed)
        sim = Simulator()
        rates = self.server_rates or [1.0] * self.num_servers
        m = self.num_dispatchers
        n = self.num_servers

        overload = self.overload
        overload_active = overload is not None and overload.active
        queue_capacity = overload.queue_capacity if overload_active else None
        # Bounded queues are a property of the shared servers: one
        # capacity, one rejection count, regardless of which dispatcher's
        # job overflowed it.
        servers = [
            Server(i, rate, queue_capacity=queue_capacity)
            for i, rate in enumerate(rates)
        ]

        probe_set = None
        if self.probes:
            from repro.obs.probes import ProbeSet

            probe_set = ProbeSet(self.probes)
            probe_set.on_attach(sim, servers)

        boards = self._make_boards(sim, servers, streams, probe_set)

        # Breakers and admission are dispatcher-local: each front-end
        # learns only from the dispatches it issued itself.
        breaker_boards = None
        if overload_active and overload.breaker is not None:
            from repro.overload.breaker import BreakerBoard

            on_transition = (
                probe_set.on_breaker_transition if probe_set is not None else None
            )
            breaker_boards = [
                BreakerBoard(
                    n,
                    overload.breaker,
                    rng=(
                        streams.stream(self._stream_label("breaker", d))
                        if overload.breaker.cooldown_jitter > 0
                        else None
                    ),
                    on_transition=on_transition,
                )
                for d in range(m)
            ]
        admissions = None
        if overload_active and overload.sheds:
            from repro.overload.admission import ProbabilisticShed

            admissions = []
            for d in range(m):
                policy_d = copy.deepcopy(overload.admission)
                policy_d.bind(
                    n,
                    (
                        streams.stream(self._stream_label("admission", d))
                        if isinstance(policy_d, ProbabilisticShed)
                        else None
                    ),
                )
                admissions.append(policy_d)

        server_rates_arr = np.asarray(rates, dtype=np.float64)
        rates_d = self.dispatcher_rates()
        estimators: list[RateEstimator] = []
        policies: list[Policy] = []
        coordinator: ClusterCoordinator | None = None
        for d in range(m):
            estimator = (
                ExactRate()
                if self.rate_estimator is None
                else _instantiate(self.rate_estimator, "rate_estimator")
            )
            bound_rate = (
                self.total_rate if self.lambda_view == "global" else rates_d[d]
            )
            estimator.bind(n, bound_rate / n)
            policy = _instantiate(self.policy, "policy")
            policy.bind(
                n,
                streams.stream(self._stream_label("policy", d)),
                estimator,
                server_rates=server_rates_arr,
            )
            if isinstance(policy, MultiDispatcherPolicy):
                if coordinator is None:
                    coordinator = ClusterCoordinator(
                        sim, servers, m, streams.stream("coordination")
                    )
                policy.attach_coordinator(coordinator, d)
            estimators.append(estimator)
            policies.append(policy)
        track_idle = any(
            policy.needs_idle_reports
            for policy in policies
            if isinstance(policy, MultiDispatcherPolicy)
        )

        timelines = None
        if self.dispatcher_faults is not None:
            timelines = self._realize_dispatcher_timelines(
                streams.stream("dispatcher-faults")
            )

        metrics = ClusterMetrics(
            num_servers=n,
            warmup_jobs=int(self.total_jobs * self.warmup_fraction),
            trace_response_times=self.trace_response_times,
        )
        service_rng = streams.stream("service")
        trace: list[Job] | None = [] if self.trace_jobs else None
        dispatch_matrix = np.zeros((m, n), dtype=np.int64)
        dispatcher_jobs = np.zeros(m, dtype=np.int64)
        arrivals_seen = 0
        jobs_redirected = 0
        latency = self.client_latency
        latency_rows = latency.shape[0] if latency is not None else 0

        def on_arrival(origin: int) -> None:
            nonlocal arrivals_seen, jobs_redirected
            if arrivals_seen >= self.total_jobs:
                return
            now = sim.now
            handler = origin
            if timelines is not None and timelines[origin].is_down(now):
                handler = -1
                for step in range(1, m):
                    candidate = (origin + step) % m
                    if not timelines[candidate].is_down(now):
                        handler = candidate
                        break
                if handler < 0:
                    # Every front-end is down at once: the job is lost.
                    arrivals_seen += 1
                    metrics.record_lost()
                    if probe_set is not None:
                        probe_set.on_job_failed(now, -1, "dispatchers-down")
                    if arrivals_seen >= self.total_jobs:
                        sim.stop()
                    return
                jobs_redirected += 1
            estimators[handler].observe_arrival(now)
            view = boards[handler].view(handler, now)
            if admissions is not None and not admissions[handler].admit(view):
                arrivals_seen += 1
                metrics.record_shed()
                metrics.record_drop()
                if probe_set is not None:
                    probe_set.on_job_shed(now, handler)
                    probe_set.on_job_failed(now, -1, "shed")
                if arrivals_seen >= self.total_jobs:
                    sim.stop()
                return
            server_id = policies[handler].select(view)
            if not 0 <= server_id < n:
                raise RuntimeError(
                    f"{type(policies[handler]).__name__} selected invalid "
                    f"server {server_id} (cluster size {n})"
                )
            breakers_d = (
                breaker_boards[handler] if breaker_boards is not None else None
            )
            if breakers_d is not None and not breakers_d.allow(server_id, now):
                # Route around the tripped server: least *reported* load
                # among the servers this dispatcher's breakers permit,
                # lowest id on ties; drop if every server is blocked.
                blocked = frozenset(
                    candidate
                    for candidate in range(n)
                    if breakers_d.blocks(candidate, now)
                )
                if len(blocked) >= n:
                    arrivals_seen += 1
                    metrics.record_drop()
                    if probe_set is not None:
                        probe_set.on_job_failed(now, -1, "breaker-blocked")
                    if arrivals_seen >= self.total_jobs:
                        sim.stop()
                    return
                loads = view.loads
                best = -1
                best_load = math.inf
                for candidate in range(n):
                    if candidate in blocked:
                        continue
                    if loads[candidate] < best_load:
                        best_load = loads[candidate]
                        best = candidate
                server_id = best
                breakers_d.allow(server_id, now)  # may claim a probe slot
            service_time = self.service.sample(service_rng)
            index = arrivals_seen
            arrivals_seen += 1
            server = servers[server_id]
            if queue_capacity is None:
                completion = server.assign(now, service_time)
            else:
                accepted = server.try_assign(now, service_time)
                if accepted is None:
                    metrics.record_reject(server_id)
                    metrics.record_drop()
                    if breakers_d is not None:
                        breakers_d.record_failure(server_id, now)
                    if probe_set is not None:
                        probe_set.on_job_rejected(now, server_id)
                        probe_set.on_job_failed(now, -1, "queue-full")
                    if arrivals_seen >= self.total_jobs:
                        sim.stop()
                    return
                completion = accepted
            if breakers_d is not None:
                breakers_d.record_success(server_id, now)
            boards[handler].on_dispatch(handler, server_id, now)
            response = completion - now
            if latency is not None:
                response += latency[handler % latency_rows, server_id]
            metrics.record(server_id, response)
            dispatch_matrix[handler, server_id] += 1
            dispatcher_jobs[handler] += 1
            if probe_set is not None:
                start = completion - service_time / server.service_rate
                probe_set.on_dispatch(
                    now, handler, server_id, server.queue_length(now)
                )
                probe_set.on_job_start(server_id, start, service_time)
                probe_set.on_job_complete(server_id, completion, response)
            if track_idle:
                assert coordinator is not None
                sim.schedule(
                    completion, partial(coordinator.idle_check, server_id)
                )
            if trace is not None:
                trace.append(
                    Job(
                        index=index,
                        client_id=handler,
                        server_id=server_id,
                        arrival_time=now,
                        service_time=service_time,
                        completion_time=completion,
                        retries=0,
                        penalty=0.0,
                    )
                )
            if arrivals_seen >= self.total_jobs:
                sim.stop()

        for d, rate_d in enumerate(rates_d):
            PoissonArrivals(rate_d).start(
                sim,
                streams.stream(self._stream_label("arrivals", d)),
                partial(self._fire, on_arrival, d),
            )
        sim.run()
        if breaker_boards is not None:
            for board in breaker_boards:
                board.finalize(sim.now)
        if probe_set is not None:
            probe_set.on_finish(sim.now)

        messages = (
            coordinator.message_summary()
            if coordinator is not None
            else {"idle_reports": 0, "load_polls": 0}
        )
        return MultiDispatchResult(
            mean_response_time=metrics.mean_response_time,
            jobs_measured=metrics.jobs_measured,
            jobs_total=metrics.jobs_seen,
            duration=sim.now,
            dispatch_counts=metrics.dispatch_counts.copy(),
            jobs_failed=metrics.jobs_failed,
            jobs_rejected=metrics.jobs_rejected,
            jobs_shed=metrics.jobs_shed,
            jobs_dropped=metrics.jobs_dropped,
            breaker_trips=(
                sum(board.trips_total for board in breaker_boards)
                if breaker_boards is not None
                else 0
            ),
            rejected_counts=(
                metrics.rejected_counts.copy() if overload_active else None
            ),
            response_times=(
                metrics.response_times if self.trace_response_times else None
            ),
            trace=trace,
            dispatcher_jobs=dispatcher_jobs,
            dispatch_matrix=dispatch_matrix,
            jobs_redirected=jobs_redirected,
            messages=messages,
        )

    @staticmethod
    def _fire(on_arrival, dispatcher_id: int, _client_id: int) -> None:
        # PoissonArrivals reports client id 0; the dispatcher id is the
        # identity that matters here.
        on_arrival(dispatcher_id)

    def __repr__(self) -> str:
        return (
            f"MultiDispatchSimulation(num_servers={self.num_servers!r}, "
            f"total_rate={self.total_rate!r}, "
            f"num_dispatchers={self.num_dispatchers!r}, "
            f"board={self.board!r}, lambda_view={self.lambda_view!r})"
        )
