"""Multi-dispatcher-native selection policies: JIQ and LSQ.

The paper's policies (random, k-subset, LI) read a stale board and work
unchanged with any number of dispatchers — the interesting question is
*how well*.  These two baselines from the multi-dispatcher literature
instead rely on server-to-dispatcher messages, so they only make sense
inside :class:`~repro.multidispatch.simulation.MultiDispatchSimulation`,
which wires them to a
:class:`~repro.multidispatch.coordinator.ClusterCoordinator`.

Using one in a plain single-board :class:`ClusterSimulation` raises a
clear error at the first dispatch rather than silently degrading to
random choice.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.multidispatch.coordinator import ClusterCoordinator
from repro.core.views import LoadView

__all__ = [
    "MultiDispatcherPolicy",
    "JoinIdleQueuePolicy",
    "LocalShortestQueuePolicy",
]


class MultiDispatcherPolicy(Policy):
    """Base for policies that need the cluster coordinator.

    Subclasses receive the coordinator and their dispatcher id via
    :meth:`attach_coordinator` (called by the multidispatch driver after
    :meth:`~repro.core.policy.Policy.bind`).
    """

    #: Whether the driver must schedule idle checks at job completions.
    needs_idle_reports = False

    def __init__(self) -> None:
        super().__init__()
        self._coordinator: ClusterCoordinator | None = None
        self._dispatcher_id: int | None = None

    def attach_coordinator(
        self, coordinator: ClusterCoordinator, dispatcher_id: int
    ) -> None:
        self._coordinator = coordinator
        self._dispatcher_id = dispatcher_id

    @property
    def coordinator(self) -> ClusterCoordinator:
        if self._coordinator is None:
            raise RuntimeError(
                f"{type(self).__name__} needs server-to-dispatcher "
                "messages and only runs inside MultiDispatchSimulation "
                "(ClusterSimulation's bulletin boards cannot carry them)"
            )
        return self._coordinator

    @property
    def dispatcher_id(self) -> int:
        if self._dispatcher_id is None:
            raise RuntimeError(
                f"{type(self).__name__} is not attached to a dispatcher; "
                "MultiDispatchSimulation does this for you"
            )
        return self._dispatcher_id


class JoinIdleQueuePolicy(MultiDispatcherPolicy):
    """Join-Idle-Queue: dispatch to an advertised-idle server if any.

    Each dispatcher keeps an I-queue fed by servers that report when they
    become idle (to one uniformly chosen dispatcher).  Selection pops the
    own I-queue; when it is empty the dispatcher falls back to a uniform
    random server — the standard JIQ fallback.  The stale board is never
    consulted, so JIQ's response time is independent of ``T``; its cost
    is the idle-report message stream.
    """

    name = "jiq"
    needs_idle_reports = True

    def select(self, view: LoadView) -> int:
        server_id = self.coordinator.pop_idle(self.dispatcher_id)
        if server_id is not None:
            return server_id
        return int(self._integers(self.num_servers))


class LocalShortestQueuePolicy(MultiDispatcherPolicy):
    """LSQ-style local shortest queue with a bounded poll budget.

    Each dispatcher maintains a *local* queue-length estimate vector: it
    increments its own entry for every job it dispatches, and per arrival
    refreshes ``poll_budget`` uniformly drawn servers' entries with their
    true queue length (each refresh counted as one message by the
    coordinator).  Selection is the local-view argmin with uniform random
    tie-breaking.  ``poll_budget=0`` degenerates to dispatching on the
    dispatcher's own (ever-growing) counts; larger budgets interpolate
    toward global shortest-queue at a measured communication cost.
    """

    name = "lsq"

    def __init__(self, poll_budget: int = 2) -> None:
        super().__init__()
        if poll_budget < 0:
            raise ValueError(
                f"poll_budget must be >= 0, got {poll_budget}"
            )
        self.poll_budget = int(poll_budget)
        self._estimates: np.ndarray | None = None
        self._everyone: np.ndarray | None = None

    def _on_bind(self) -> None:
        self._estimates = np.zeros(self.num_servers, dtype=np.float64)
        self._everyone = np.arange(self.num_servers)

    def select(self, view: LoadView) -> int:
        coordinator = self.coordinator  # fail fast when unattached
        estimates = self._estimates
        assert estimates is not None and self._everyone is not None
        if self.poll_budget:
            polled = self._integers(self.num_servers, size=self.poll_budget)
            for server_id in polled:
                estimates[server_id] = coordinator.poll_load(
                    int(server_id), view.now
                )
        choice = self._random_minimum(estimates, self._everyone)
        estimates[choice] += 1.0
        return choice

    def __repr__(self) -> str:
        return f"LocalShortestQueuePolicy(poll_budget={self.poll_budget!r})"
