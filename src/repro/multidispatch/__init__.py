"""Multi-dispatcher extension: m concurrent stale-view front-ends.

See :mod:`repro.multidispatch.simulation` for the driver and DESIGN.md §9
for the model.
"""

from repro.multidispatch.coordinator import ClusterCoordinator
from repro.multidispatch.policies import (
    JoinIdleQueuePolicy,
    LocalShortestQueuePolicy,
    MultiDispatcherPolicy,
)
from repro.multidispatch.simulation import (
    MultiDispatchResult,
    MultiDispatchSimulation,
)

__all__ = [
    "ClusterCoordinator",
    "JoinIdleQueuePolicy",
    "LocalShortestQueuePolicy",
    "MultiDispatcherPolicy",
    "MultiDispatchResult",
    "MultiDispatchSimulation",
]
