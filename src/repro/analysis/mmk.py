"""Classic queueing formulas used as simulator ground truth.

All formulas assume Poisson arrivals and exponential service with mean
``1 / mu``; time units follow the paper (mean service time = 1 unless
stated otherwise).
"""

from __future__ import annotations

import math

__all__ = [
    "mm1_mean_response_time",
    "mm1_mean_queue_length",
    "mmc_erlang_c",
    "mmc_mean_response_time",
    "random_split_response_time",
]


def _check_utilization(rho: float) -> None:
    if rho < 0:
        raise ValueError(f"utilization must be non-negative, got {rho}")
    if rho >= 1:
        raise ValueError(f"system is unstable at utilization {rho} >= 1")


def mm1_mean_response_time(rho: float, mu: float = 1.0) -> float:
    """Mean response time of an M/M/1 queue at utilization ``rho``.

    ``W = 1 / (mu - lambda) = 1 / (mu (1 - rho))``.
    """
    _check_utilization(rho)
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    return 1.0 / (mu * (1.0 - rho))


def mm1_mean_queue_length(rho: float) -> float:
    """Mean number in system of an M/M/1 queue: ``rho / (1 - rho)``."""
    _check_utilization(rho)
    return rho / (1.0 - rho)


def random_split_response_time(per_server_load: float, mu: float = 1.0) -> float:
    """Mean response time under oblivious random dispatch.

    Splitting a Poisson stream uniformly over ``n`` servers yields ``n``
    independent M/M/1 queues each at the per-server load, so the answer is
    independent of ``n``.  This is the paper's oblivious baseline: e.g.
    10.0 time units at λ = 0.9, 2.0 at λ = 0.5.
    """
    return mm1_mean_response_time(per_server_load, mu)


def mmc_erlang_c(servers: int, offered_load: float) -> float:
    """Erlang-C probability that an arrival must queue in M/M/c.

    Parameters
    ----------
    servers:
        Number of servers ``c``.
    offered_load:
        ``a = lambda / mu`` in Erlangs (must satisfy ``a < c``).
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be non-negative, got {offered_load}")
    if offered_load >= servers:
        raise ValueError(
            f"system is unstable: offered load {offered_load} >= servers {servers}"
        )
    a, c = offered_load, servers
    # Sum the Erlang-B style series in a numerically stable way.
    term = 1.0
    total = 1.0  # j = 0 term
    for j in range(1, c):
        term *= a / j
        total += term
    term *= a / c
    tail = term * c / (c - a)
    return tail / (total + tail)


def mmc_mean_response_time(servers: int, offered_load: float, mu: float = 1.0) -> float:
    """Mean response time of an M/M/c queue (single shared queue).

    This is the *lower bound* reference for any dispatch policy operating
    on ``c`` separate FIFO queues with the same total capacity: a central
    queue never idles a server while work waits, which is the limit
    perfect fresh-information load balancing approaches.
    """
    if mu <= 0:
        raise ValueError(f"mu must be positive, got {mu}")
    wait_probability = mmc_erlang_c(servers, offered_load)
    queue_wait = wait_probability / (servers * mu - offered_load * mu)
    return queue_wait + 1.0 / mu


def mm1_response_time_quantile(rho: float, quantile: float, mu: float = 1.0) -> float:
    """Quantile of the (exponential) M/M/1 response-time distribution."""
    _check_utilization(rho)
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    rate = mu * (1.0 - rho)
    return -math.log(1.0 - quantile) / rate
