"""Crossover analysis: where one policy's curve overtakes another's.

The paper's qualitative claims are about *crossovers*: the update period
beyond which greedy placement becomes worse than random, the point where
a given k-subset falls behind LI, and so on.  This module locates such
crossings from sweep data by monotone (log-x) linear interpolation, so
reproduction reports can state "k=10 crosses random at T ≈ 1.4" instead
of eyeballing tables.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["find_crossover", "crossovers_in_result"]


def find_crossover(
    x_values: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
    log_x: bool = True,
) -> float | None:
    """First x at which ``series_a`` rises above ``series_b``.

    Scans consecutive sweep points; when the sign of ``a - b`` flips from
    non-positive to positive, the crossing is located by linear
    interpolation (in log-x by default, since staleness sweeps are
    geometric).  Returns ``None`` when ``a`` never overtakes ``b``, and
    the first x when ``a`` starts above ``b``.
    """
    if not (len(x_values) == len(series_a) == len(series_b)):
        raise ValueError(
            f"length mismatch: {len(x_values)} x values, "
            f"{len(series_a)} and {len(series_b)} series points"
        )
    if len(x_values) == 0:
        raise ValueError("need at least one sweep point")
    if any(x <= 0 for x in x_values) and log_x:
        raise ValueError("log_x requires strictly positive x values")

    differences = [a - b for a, b in zip(series_a, series_b)]
    if differences[0] > 0:
        return float(x_values[0])
    for index in range(1, len(differences)):
        before, after = differences[index - 1], differences[index]
        if before <= 0 < after:
            x0, x1 = x_values[index - 1], x_values[index]
            if log_x:
                x0, x1 = math.log(x0), math.log(x1)
            # Linear interpolation of the zero crossing.
            fraction = -before / (after - before)
            crossing = x0 + fraction * (x1 - x0)
            return float(math.exp(crossing) if log_x else crossing)
    return None


def crossovers_in_result(result, reference: str = "random") -> dict[str, float | None]:
    """For each curve, the x where it overtakes ``reference``.

    ``result`` is a :class:`~repro.experiments.report.FigureResult`.  A
    value of ``None`` means the curve never becomes worse than the
    reference over the sweep — the paper's safety property for LI.
    """
    reference_series = result.series(reference)
    crossings: dict[str, float | None] = {}
    for label in result.curve_labels:
        if label == reference:
            continue
        crossings[label] = find_crossover(
            result.x_values, result.series(label), reference_series
        )
    return crossings
