"""Paired-sample comparison of policies under common random numbers.

The experiment harness runs every curve of a figure against the *same*
arrival and service draws per seed (common random numbers), so per-seed
results for two policies are paired: the difference ``A_i - B_i`` cancels
the workload noise both share.  A Student-t interval on those differences
is therefore far tighter than comparing two independent confidence
intervals — often turning an "overlapping error bars" non-result into a
clear verdict with the same number of seeds.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.stats import ConfidenceInterval, mean_confidence_interval

__all__ = ["paired_difference_interval", "compare_curves"]


def paired_difference_interval(
    samples_a: Sequence[float],
    samples_b: Sequence[float],
    confidence: float = 0.90,
) -> ConfidenceInterval:
    """Confidence interval for ``mean(A - B)`` over paired replications.

    Negative means ``A`` is faster (lower response time).  Requires the
    two sample lists to come from the same seeds in the same order —
    which :func:`repro.experiments.runner.run_figure` guarantees within
    one figure.
    """
    if len(samples_a) != len(samples_b):
        raise ValueError(
            f"paired comparison needs equal sample counts, got "
            f"{len(samples_a)} and {len(samples_b)}"
        )
    if len(samples_a) < 2:
        raise ValueError("paired comparison needs at least two replications")
    differences = [a - b for a, b in zip(samples_a, samples_b)]
    return mean_confidence_interval(differences, confidence)


def compare_curves(
    result,
    curve_a: str,
    curve_b: str,
    x: float,
    confidence: float = 0.90,
) -> dict:
    """Paired verdict for two curves of a figure at one sweep point.

    Returns a dictionary with the paired difference interval, the mean
    speedup factor ``mean_b / mean_a``, and a ``verdict`` string:
    ``"a_better"`` / ``"b_better"`` when the interval excludes zero,
    ``"indistinguishable"`` otherwise.
    """
    cell_a = result.cell(curve_a, x)
    cell_b = result.cell(curve_b, x)
    interval = paired_difference_interval(
        cell_a.samples, cell_b.samples, confidence
    )
    if interval.high < 0:
        verdict = "a_better"
    elif interval.low > 0:
        verdict = "b_better"
    else:
        verdict = "indistinguishable"
    return {
        "difference": interval,
        "speedup": cell_b.mean / cell_a.mean if cell_a.mean else float("inf"),
        "verdict": verdict,
    }
