"""Batch-means confidence intervals for single long simulation runs.

The paper (and our default harness) estimates variability from
independent replications.  The standard alternative for one long run is
the method of batch means: split the post-warm-up observations into
``num_batches`` contiguous batches, treat the batch averages as
approximately independent samples, and form a Student-t interval over
them.  Provided here as simulation-methodology substrate (and used by
tests to cross-check the replication-based intervals).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.stats import ConfidenceInterval, mean_confidence_interval

__all__ = ["batch_means_interval", "batch_means"]


def batch_means(
    observations: Sequence[float], num_batches: int
) -> np.ndarray:
    """Split observations into contiguous batches and return batch averages.

    A trailing remainder shorter than a full batch is dropped (standard
    practice: partial batches bias the variance estimate).
    """
    if num_batches < 2:
        raise ValueError(f"num_batches must be >= 2, got {num_batches}")
    values = np.asarray(observations, dtype=float)
    batch_size = len(values) // num_batches
    if batch_size < 1:
        raise ValueError(
            f"{len(values)} observations cannot fill {num_batches} batches"
        )
    usable = values[: batch_size * num_batches]
    return usable.reshape(num_batches, batch_size).mean(axis=1)


def batch_means_interval(
    observations: Sequence[float],
    num_batches: int = 20,
    confidence: float = 0.90,
) -> ConfidenceInterval:
    """Student-t confidence interval for the mean via batch means.

    With autocorrelated per-job response times (queues are sticky), the
    naive per-observation interval is far too narrow; batch means
    recovers an asymptotically valid interval from a single run.
    """
    averages = batch_means(observations, num_batches)
    return mean_confidence_interval(list(averages), confidence)
