"""Analytic references used to validate the simulator and reproduce Fig. 1.

* :mod:`repro.analysis.mmk` — M/M/1 and M/M/c formulas; the oblivious
  random policy splits Poisson traffic into independent M/M/1 queues, so
  its simulated mean response time must match ``1 / (1 - λ)``.
* :mod:`repro.analysis.ksubset_analytic` — the closed-form per-rank
  request distribution of the k-subset policy (Eq. 1 of the paper).
"""

from repro.analysis.batch_means import batch_means, batch_means_interval
from repro.analysis.crossover import crossovers_in_result, find_crossover
from repro.analysis.ksubset_analytic import ksubset_rank_distribution
from repro.analysis.mg1 import (
    mg1_mean_response_time,
    mg1_mean_waiting_time,
    random_split_mg1_response_time,
)
from repro.analysis.paired import compare_curves, paired_difference_interval
from repro.analysis.overhead import (
    periodic_messages_per_job,
    polling_messages_per_job,
    update_on_access_messages_per_job,
)
from repro.analysis.mmk import (
    mm1_mean_response_time,
    mm1_mean_queue_length,
    mmc_erlang_c,
    mmc_mean_response_time,
    random_split_response_time,
)

__all__ = [
    "batch_means",
    "batch_means_interval",
    "find_crossover",
    "crossovers_in_result",
    "ksubset_rank_distribution",
    "mm1_mean_response_time",
    "mm1_mean_queue_length",
    "mmc_erlang_c",
    "mmc_mean_response_time",
    "random_split_response_time",
    "mg1_mean_response_time",
    "mg1_mean_waiting_time",
    "random_split_mg1_response_time",
    "paired_difference_interval",
    "compare_curves",
    "periodic_messages_per_job",
    "polling_messages_per_job",
    "update_on_access_messages_per_job",
]
