"""Closed-form request distribution of the k-subset policy (Eq. 1, Fig. 1).

Within a phase, order the servers by reported load: rank 1 is least loaded,
rank ``n`` most loaded (no ties).  A request dispatched by the k-subset
policy lands on rank ``i`` iff (1) no rank below ``i`` appears in the random
subset and (2) rank ``i`` does.  Counting subsets:

.. math::

    P(i) = \\frac{\\binom{n-i}{k-1}}{\\binom{n}{k}}, \\qquad i \\le n - k + 1

and 0 otherwise — the ``k - 1`` most loaded servers receive nothing for the
whole phase.  The key observation the paper draws from this: the
distribution depends only on *rank*, never on the *magnitude* of load
differences or on the *age* of the information.
"""

from __future__ import annotations

from math import comb

import numpy as np

__all__ = ["ksubset_rank_distribution"]


def ksubset_rank_distribution(num_servers: int, k: int) -> np.ndarray:
    """Probability that a k-subset request goes to each load rank.

    Parameters
    ----------
    num_servers:
        Cluster size ``n``.
    k:
        Subset size, ``1 <= k <= n``.

    Returns
    -------
    numpy.ndarray
        ``probabilities[i]`` for rank ``i + 1`` (0-indexed array over ranks
        least-loaded first); sums to 1.

    Examples
    --------
    >>> ksubset_rank_distribution(10, 1)[0]  # uniform random
    0.1
    >>> float(ksubset_rank_distribution(10, 10)[0])  # greedy
    1.0
    """
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")
    if not 1 <= k <= num_servers:
        raise ValueError(f"k must be in [1, {num_servers}], got {k}")
    total_subsets = comb(num_servers, k)
    probabilities = np.array(
        [
            comb(num_servers - rank, k - 1) / total_subsets
            for rank in range(1, num_servers + 1)
        ]
    )
    return probabilities
