"""Message-cost accounting for load-information dissemination schemes.

§5.7 of the paper motivates restricted-information algorithms partly by
network cost: "by restricting the amount of load information that clients
may consider, they may reduce the amount of load information that must be
sent across the network."  This module makes that cost explicit with a
simple message-count model, so performance results can be paired with the
overhead that bought them (see ``examples/overhead_tradeoff.py``).

Model assumptions (documented, deliberately simple):

* **Periodic bulletin board**: every ``T`` time units each of the ``n``
  servers reports once to a collector, which multicasts one summary to
  each of the ``C`` client sites — ``(n + C) / T`` messages per unit
  time, amortized over ``Λ`` arrivals per unit time.
* **Per-request polling** (how a k-subset or full-information scheme
  gathers fresh data without a board): each request probes ``k`` servers
  and receives ``k`` replies — ``2k`` messages per job.
* **Update-on-access**: load data rides on the reply the client was
  receiving anyway — zero additional messages.
"""

from __future__ import annotations

__all__ = [
    "periodic_messages_per_job",
    "polling_messages_per_job",
    "update_on_access_messages_per_job",
]


def periodic_messages_per_job(
    num_servers: int,
    num_clients: int,
    period: float,
    arrival_rate: float,
) -> float:
    """Messages per job for a collector + multicast bulletin board."""
    if num_servers < 1:
        raise ValueError(f"num_servers must be >= 1, got {num_servers}")
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    messages_per_time = (num_servers + num_clients) / period
    return messages_per_time / arrival_rate


def polling_messages_per_job(k: int) -> float:
    """Messages per job when each request probes ``k`` servers directly."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    return 2.0 * k


def update_on_access_messages_per_job() -> float:
    """Piggybacked updates cost nothing beyond the existing reply."""
    return 0.0
