"""M/G/1 analysis (Pollaczek–Khinchine) for general service distributions.

Under oblivious random dispatch, each server is an independent M/G/1
queue, so the Bounded Pareto experiments (Figs. 10–11) have an analytic
random-policy baseline too:

.. math::

    E[W] = E[S] + \\frac{\\rho\\,E[S]\\,(1 + C_s^2)}{2\\,(1 - \\rho)}

where :math:`C_s^2` is the squared coefficient of variation of the
service distribution.  For exponential service (:math:`C_s^2 = 1`) this
collapses to the M/M/1 result; for the paper's Bounded Pareto workloads
(:math:`C_s^2 \\gg 1`) it quantifies *why* server selection matters so
much more when job sizes are highly variable.
"""

from __future__ import annotations

from repro.workloads.distributions import Distribution

__all__ = [
    "mg1_mean_waiting_time",
    "mg1_mean_response_time",
    "random_split_mg1_response_time",
]


def mg1_mean_waiting_time(
    rho: float, mean_service: float, scv: float
) -> float:
    """Mean time in queue (excluding service) for an M/G/1 queue.

    Parameters
    ----------
    rho:
        Utilization, in [0, 1).
    mean_service:
        Mean service time E[S].
    scv:
        Squared coefficient of variation of service, Var[S] / E[S]^2.
    """
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"utilization must be in [0, 1), got {rho}")
    if mean_service <= 0:
        raise ValueError(f"mean_service must be positive, got {mean_service}")
    if scv < 0:
        raise ValueError(f"scv must be non-negative, got {scv}")
    return rho * mean_service * (1.0 + scv) / (2.0 * (1.0 - rho))


def mg1_mean_response_time(rho: float, mean_service: float, scv: float) -> float:
    """Mean response time (queueing + service) for an M/G/1 queue."""
    return mean_service + mg1_mean_waiting_time(rho, mean_service, scv)


def random_split_mg1_response_time(
    per_server_load: float, service: Distribution
) -> float:
    """Analytic mean response time of oblivious random dispatch.

    Splitting Poisson traffic uniformly across identical servers yields
    independent M/G/1 queues at the per-server load; the service process's
    analytic moments supply the P-K correction term.
    """
    return mg1_mean_response_time(
        per_server_load,
        service.mean,
        service.squared_coefficient_of_variation,
    )
