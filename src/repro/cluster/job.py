"""The job record."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Job"]


@dataclass(frozen=True, slots=True)
class Job:
    """One dispatched request.

    The simulation driver only materializes :class:`Job` objects when
    tracing is enabled; the hot path records response times directly into
    streaming accumulators.

    Attributes
    ----------
    index:
        Global arrival sequence number (0-based).
    client_id:
        Identity of the originating client (always 0 for aggregate
        arrival sources).
    server_id:
        Index of the server the job was dispatched to.
    arrival_time:
        Simulation time of arrival at the dispatcher (and, with zero
        network latency, at the server).
    service_time:
        The job's service demand in units of mean service time.
    completion_time:
        Time the job finishes service (FIFO discipline).
    retries:
        Number of re-dispatch attempts the job needed (0 on the fault-free
        path).
    penalty:
        Total timeout + backoff latency accumulated across retries; already
        included in the measured response time.
    """

    index: int
    client_id: int
    server_id: int
    arrival_time: float
    service_time: float
    completion_time: float
    retries: int = 0
    penalty: float = 0.0

    @property
    def response_time(self) -> float:
        """Queueing delay plus service time.

        Queue-level only: when the simulation models wide-area round
        trips (``client_latency``), the RTT is added to the *measured*
        response in the metrics but not to this trace record.
        """
        return self.completion_time - self.arrival_time

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting before service begins."""
        return self.response_time - self.service_time
