"""The server-cluster substrate.

* :mod:`repro.cluster.server` — FIFO single-server queues with exact
  event dynamics and O(log m) historical queue-length queries (needed by
  the continuous-update staleness model).
* :mod:`repro.cluster.job` — the job record and per-job trace support.
* :mod:`repro.cluster.metrics` — response-time measurement with warm-up
  truncation and per-server dispatch accounting.
* :mod:`repro.cluster.simulation` — the top-level driver wiring arrivals,
  service times, a staleness model and a selection policy into one
  discrete-event simulation.
"""

from repro.cluster.job import Job
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.server import Server
from repro.cluster.simulation import ClusterSimulation, SimulationResult

__all__ = [
    "Job",
    "Server",
    "ClusterMetrics",
    "ClusterSimulation",
    "SimulationResult",
]
