"""Receiver-driven rebalancing: the paper's third coping strategy.

§2 of the paper lists three techniques systems use against stale
information: k-subsets, thresholds, and *receiver-driven* rebalancing, in
which lightly-loaded or idle servers remove jobs from heavily loaded
ones.  The paper studies the first two and names "examining the
performance of LI-based algorithms in comparison with and combination
with receiver-driven algorithms" as important future work.  This module
implements that combination.

Because jobs can migrate after dispatch, completion times are no longer
known at arrival, so this driver uses a fully event-driven server
(:class:`MigratingServer`) with explicit start-of-service and completion
events, rather than the closed-form FIFO recurrence of
:class:`~repro.cluster.server.Server`.

The stealing protocol is the classic receiver-initiated design (Eager,
Lazowska & Zahorjan): whenever a server goes idle, it polls a few random
peers *directly* (receiver polls are fresh by construction — that is
their advantage over stale sender-side information) and transfers one
waiting job from the most loaded polled victim if that victim has at
least ``steal_threshold`` jobs waiting.  An optional migration delay
models the job-transfer cost.

Historical load queries are impossible once jobs migrate, so the
continuous-update staleness model (which reads the past) is rejected;
the periodic, update-on-access and individual-update models all query
only current state and work unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.cluster.metrics import ClusterMetrics
from repro.cluster.simulation import SimulationResult
from repro.core.policy import Policy
from repro.core.rate_estimators import ExactRate, RateEstimator
from repro.engine.rng import RandomStreams
from repro.engine.simulator import Simulator
from repro.staleness.base import StalenessModel
from repro.staleness.continuous import ContinuousUpdate
from repro.workloads.arrivals import ArrivalSource
from repro.workloads.distributions import Distribution

__all__ = ["StealingConfig", "MigratingServer", "StealingClusterSimulation"]


@dataclass(frozen=True, slots=True)
class StealingConfig:
    """Receiver-initiated rebalancing parameters.

    Attributes
    ----------
    poll_count:
        Peers an idle server polls (the literature finds 1–3 suffice).
    steal_threshold:
        Minimum number of *waiting* (not in-service) jobs a victim must
        hold for a transfer to happen.
    migration_delay:
        Time a stolen job spends in transit before it can start at the
        thief, in units of mean service time.
    """

    poll_count: int = 2
    steal_threshold: int = 1
    migration_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.poll_count < 1:
            raise ValueError(f"poll_count must be >= 1, got {self.poll_count}")
        if self.steal_threshold < 1:
            raise ValueError(
                f"steal_threshold must be >= 1, got {self.steal_threshold}"
            )
        if self.migration_delay < 0:
            raise ValueError(
                f"migration_delay must be >= 0, got {self.migration_delay}"
            )


@dataclass(slots=True)
class _PendingJob:
    """A job that has been dispatched but not yet completed."""

    arrival_time: float
    service_time: float


class MigratingServer:
    """An event-driven FIFO server whose waiting jobs can be stolen.

    Unlike :class:`~repro.cluster.server.Server`, queue state here is
    live (current-time only): once jobs migrate between queues there is
    no closed form for past states.
    """

    __slots__ = (
        "server_id",
        "service_rate",
        "_sim",
        "waiting",
        "in_service",
        "_in_service_completion",
        "jobs_started",
    )

    def __init__(
        self, server_id: int, sim: Simulator, service_rate: float = 1.0
    ) -> None:
        if service_rate <= 0:
            raise ValueError(f"service_rate must be positive, got {service_rate}")
        self.server_id = server_id
        self.service_rate = float(service_rate)
        self._sim = sim
        self.waiting: deque[_PendingJob] = deque()
        self.in_service: _PendingJob | None = None
        self._in_service_completion = 0.0
        self.jobs_started = 0

    @property
    def idle(self) -> bool:
        """Whether the server currently has nothing to do."""
        return self.in_service is None and not self.waiting

    def queue_length(self, at_time: float) -> int:
        """Jobs present now (queued + in service).

        ``at_time`` is accepted for interface compatibility with
        :class:`~repro.cluster.server.Server` but must be the current
        simulation time — historical queries are impossible once jobs
        migrate.
        """
        if at_time < self._sim.now - 1e-9:
            raise ValueError(
                "MigratingServer cannot answer historical load queries "
                f"(asked for t={at_time}, now={self._sim.now}); "
                "use the non-stealing Server for continuous-update models"
            )
        return len(self.waiting) + (1 if self.in_service is not None else 0)

    def work_remaining(self, at_time: float) -> float:
        """Unfinished work present now, in time units."""
        if at_time < self._sim.now - 1e-9:
            raise ValueError(
                "MigratingServer cannot answer historical load queries"
            )
        total = sum(job.service_time for job in self.waiting) / self.service_rate
        if self.in_service is not None:
            total += max(self._in_service_completion - self._sim.now, 0.0)
        return total

    def steal_candidate_count(self) -> int:
        """Number of *waiting* jobs (the in-service job cannot migrate)."""
        return len(self.waiting)

    def pop_newest_waiting(self) -> _PendingJob:
        """Remove and return the most recently queued waiting job.

        Stealing the newest job (rather than the oldest) preserves FIFO
        fairness at the victim as closely as possible.
        """
        if not self.waiting:
            raise IndexError(f"server {self.server_id} has no waiting jobs")
        return self.waiting.pop()


class StealingClusterSimulation:
    """A cluster simulation with optional receiver-driven rebalancing.

    Accepts the same workload/policy/staleness components as
    :class:`~repro.cluster.simulation.ClusterSimulation` plus a
    :class:`StealingConfig`; with ``stealing=None`` it reproduces the
    sender-driven-only behavior (useful for apples-to-apples comparison
    on the same event-driven substrate).

    Measurement notes: response times are recorded at *completion* (they
    are unknown at dispatch once jobs can migrate), so warm-up truncation
    applies in completion order, and per-server dispatch counts attribute
    each job to the server that actually ran it.
    """

    #: Work stealing rewires completion events dynamically, which the
    #: phase-batched fast path cannot replay; this simulation always runs
    #: on the event engine.  Mirrors ClusterSimulation.engine_used so
    #: callers can assert on either class uniformly.
    engine_used = "event"

    def __init__(
        self,
        num_servers: int,
        arrivals: ArrivalSource,
        service: Distribution,
        policy: Policy,
        staleness: StalenessModel,
        stealing: StealingConfig | None = None,
        rate_estimator: RateEstimator | None = None,
        total_jobs: int = 100_000,
        warmup_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        if total_jobs < 1:
            raise ValueError(f"total_jobs must be >= 1, got {total_jobs}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        if isinstance(staleness, ContinuousUpdate):
            raise ValueError(
                "the continuous-update model reads historical server state, "
                "which is undefined once jobs migrate; use PeriodicUpdate, "
                "UpdateOnAccess or IndividualUpdate with stealing"
            )
        self.num_servers = num_servers
        self.arrivals = arrivals
        self.service = service
        self.policy = policy
        self.staleness = staleness
        self.stealing = stealing
        self.rate_estimator = rate_estimator or ExactRate()
        self.total_jobs = total_jobs
        self.warmup_fraction = warmup_fraction
        self.seed = seed
        self.steals_performed = 0

    def run(self) -> SimulationResult:
        """Execute the simulation and return its measurements."""
        streams = RandomStreams(self.seed)
        sim = Simulator()
        servers = [MigratingServer(i, sim) for i in range(self.num_servers)]

        self.staleness.attach(sim, servers, streams.stream("staleness"))
        self.rate_estimator.bind(
            self.num_servers, self.arrivals.total_rate / self.num_servers
        )
        self.policy.bind(
            self.num_servers, streams.stream("policy"), self.rate_estimator
        )
        steal_rng = streams.stream("stealing")
        service_rng = streams.stream("service")
        metrics = ClusterMetrics(
            num_servers=self.num_servers,
            warmup_jobs=int(self.total_jobs * self.warmup_fraction),
        )
        self.steals_performed = 0
        jobs_dispatched = 0
        jobs_completed = 0

        def begin_service(server: MigratingServer) -> None:
            job = server.waiting.popleft()
            server.in_service = job
            duration = job.service_time / server.service_rate
            completion_time = sim.now + duration
            server._in_service_completion = completion_time
            sim.schedule(completion_time, lambda: complete(server, job))
            server.jobs_started += 1

        def complete(server: MigratingServer, job: _PendingJob) -> None:
            nonlocal jobs_completed
            server.in_service = None
            metrics.record(server.server_id, sim.now - job.arrival_time)
            jobs_completed += 1
            if jobs_dispatched >= self.total_jobs and jobs_completed >= self.total_jobs:
                sim.stop()
                return
            if server.waiting:
                begin_service(server)
            elif self.stealing is not None:
                attempt_steal(server)

        def attempt_steal(thief: MigratingServer) -> None:
            config = self.stealing
            assert config is not None
            peers = [s for s in servers if s is not thief]
            polled_count = min(config.poll_count, len(peers))
            if polled_count == 0:
                return
            indices = steal_rng.choice(len(peers), size=polled_count, replace=False)
            polled = [peers[int(i)] for i in indices]
            victim = max(polled, key=MigratingServer.steal_candidate_count)
            if victim.steal_candidate_count() < config.steal_threshold:
                return
            job = victim.pop_newest_waiting()
            self.steals_performed += 1
            if config.migration_delay > 0.0:
                sim.schedule_after(
                    config.migration_delay, lambda: deliver(thief, job)
                )
            else:
                deliver(thief, job)

        def deliver(thief: MigratingServer, job: _PendingJob) -> None:
            thief.waiting.append(job)
            if thief.in_service is None:
                begin_service(thief)

        def on_arrival(client_id: int) -> None:
            nonlocal jobs_dispatched
            if jobs_dispatched >= self.total_jobs:
                return  # drain phase: ignore further arrivals
            now = sim.now
            self.rate_estimator.observe_arrival(now)
            view = self.staleness.view(client_id, now)
            server_id = self.policy.select(view)
            if not 0 <= server_id < self.num_servers:
                raise RuntimeError(
                    f"{type(self.policy).__name__} selected invalid server "
                    f"{server_id} (cluster size {self.num_servers})"
                )
            server = servers[server_id]
            job = _PendingJob(
                arrival_time=now,
                service_time=self.service.sample(service_rng),
            )
            server.waiting.append(job)
            if server.in_service is None:
                begin_service(server)
            self.staleness.on_dispatch(client_id, server_id, now)
            jobs_dispatched += 1

        self.arrivals.start(sim, streams.stream("arrivals"), on_arrival)
        sim.run()

        return SimulationResult(
            mean_response_time=metrics.mean_response_time,
            jobs_measured=metrics.jobs_measured,
            jobs_total=metrics.jobs_seen,
            duration=sim.now,
            dispatch_counts=metrics.dispatch_counts.copy(),
        )
