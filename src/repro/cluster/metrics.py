"""Measurement: response-time statistics with warm-up truncation."""

from __future__ import annotations

import numpy as np

from repro.engine.stats import RunningStats

__all__ = ["ClusterMetrics"]


class ClusterMetrics:
    """Accumulates per-job measurements for one simulation run.

    Follows the paper's methodology: the first ``warmup_jobs`` arrivals are
    dispatched normally (they shape the queues) but excluded from the
    reported statistics; response times of the remaining jobs are averaged.

    Parameters
    ----------
    num_servers:
        Cluster size, for the per-server dispatch histogram.
    warmup_jobs:
        Number of initial arrivals to exclude from statistics.
    trace_response_times:
        When true, keep every measured response time (needed for
        percentile summaries in the Bounded Pareto experiments); otherwise
        only streaming aggregates are retained.
    """

    __slots__ = (
        "_warmup_jobs",
        "_jobs_seen",
        "response_stats",
        "dispatch_counts",
        "_trace",
        "_jobs_failed",
        "_jobs_retried",
        "_retries_total",
        "_retry_penalty_total",
        "_jobs_shed",
        "_jobs_dropped",
        "_storm_resubmits",
        "rejected_counts",
    )

    def __init__(
        self,
        num_servers: int,
        warmup_jobs: int,
        trace_response_times: bool = False,
    ) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        if warmup_jobs < 0:
            raise ValueError(f"warmup_jobs must be >= 0, got {warmup_jobs}")
        self._warmup_jobs = warmup_jobs
        self._jobs_seen = 0
        self.response_stats = RunningStats()
        self.dispatch_counts = np.zeros(num_servers, dtype=np.int64)
        self._trace: list[float] | None = [] if trace_response_times else None
        self._jobs_failed = 0
        self._jobs_retried = 0
        self._retries_total = 0
        self._retry_penalty_total = 0.0
        self._jobs_shed = 0
        self._jobs_dropped = 0
        self._storm_resubmits = 0
        self.rejected_counts = np.zeros(num_servers, dtype=np.int64)

    @property
    def warmup_jobs(self) -> int:
        """Number of arrivals excluded from statistics."""
        return self._warmup_jobs

    @property
    def jobs_seen(self) -> int:
        """Total arrivals recorded, including warm-up."""
        return self._jobs_seen

    @property
    def jobs_measured(self) -> int:
        """Arrivals contributing to the reported statistics."""
        return self.response_stats.count

    def record(
        self,
        server_id: int,
        response_time: float,
        retries: int = 0,
        penalty: float = 0.0,
    ) -> None:
        """Record one completed job.

        ``response_time`` must already include any retry ``penalty``
        (timeouts plus backoff); the penalty is passed separately only so
        the fault overhead can be reported on its own.
        """
        self._jobs_seen += 1
        self.dispatch_counts[server_id] += 1
        if retries > 0:
            self._jobs_retried += 1
            self._retries_total += retries
            self._retry_penalty_total += penalty
        if self._jobs_seen <= self._warmup_jobs:
            return
        self.response_stats.add(response_time)
        if self._trace is not None:
            self._trace.append(response_time)

    def record_lost(self) -> None:
        """Record an arrival that no front-end could accept (every
        dispatcher down at once).  The job was never dispatched, so no
        server is charged in the histogram; it still consumes one slot of
        the arrival quota and counts as failed."""
        self._jobs_seen += 1
        self._jobs_failed += 1

    def record_shed(self) -> None:
        """Record an admission-control shed: the dispatcher refused the
        arrival before selecting a server.  Non-terminal — the job's fate
        is settled by a later :meth:`record` (storm re-submission that
        eventually lands) or :meth:`record_drop`."""
        self._jobs_shed += 1

    def record_reject(self, server_id: int) -> None:
        """Record a server-side queue-full rejection.  Non-terminal: the
        dispatch failed but the job may still be retried or re-submitted;
        no arrival-quota slot is consumed here."""
        self.rejected_counts[server_id] += 1

    def record_resubmit(self) -> None:
        """Record a retry-storm re-submission (a refused job re-entering
        the arrival pipeline after client backoff).  Non-terminal."""
        self._storm_resubmits += 1

    def record_drop(self) -> None:
        """Record a job refused for good: shed or rejected with no retry
        storm, or a storm that exhausted ``max_resubmits``.  Terminal —
        consumes the job's arrival-quota slot; no server is charged in
        the dispatch histogram."""
        self._jobs_seen += 1
        self._jobs_dropped += 1

    def record_failure(self, server_id: int, retries: int = 0) -> None:
        """Record a job that never completed (stalled forever or aborted
        past its retry budget).  Failed jobs count toward the dispatch
        histogram but contribute no response time."""
        self._jobs_seen += 1
        self.dispatch_counts[server_id] += 1
        self._jobs_failed += 1
        if retries > 0:
            self._jobs_retried += 1
            self._retries_total += retries

    @property
    def mean_response_time(self) -> float:
        """Mean response time over measured jobs."""
        return self.response_stats.mean

    @property
    def jobs_failed(self) -> int:
        """Jobs that never completed (includes warm-up arrivals)."""
        return self._jobs_failed

    @property
    def jobs_retried(self) -> int:
        """Jobs that needed at least one re-dispatch."""
        return self._jobs_retried

    @property
    def retries_total(self) -> int:
        """Re-dispatch attempts summed over all jobs."""
        return self._retries_total

    @property
    def retry_penalty_total(self) -> float:
        """Timeout + backoff latency summed over all completed jobs."""
        return self._retry_penalty_total

    @property
    def jobs_shed(self) -> int:
        """Arrivals refused by admission control (shed events, not jobs:
        a stormy job shed twice counts twice)."""
        return self._jobs_shed

    @property
    def jobs_rejected(self) -> int:
        """Dispatches refused by a full server queue, summed over servers."""
        return int(self.rejected_counts.sum())

    @property
    def jobs_dropped(self) -> int:
        """Jobs refused for good (never served, never dispatched)."""
        return self._jobs_dropped

    @property
    def storm_resubmits(self) -> int:
        """Retry-storm re-submissions summed over all jobs."""
        return self._storm_resubmits

    @property
    def response_times(self) -> np.ndarray:
        """Measured response times (requires ``trace_response_times=True``)."""
        if self._trace is None:
            raise RuntimeError(
                "response-time tracing was not enabled for this run; "
                "construct ClusterMetrics with trace_response_times=True"
            )
        return np.asarray(self._trace)

    def dispatch_fractions(self) -> np.ndarray:
        """Fraction of all recorded jobs sent to each server."""
        total = self.dispatch_counts.sum()
        if total == 0:
            return np.zeros_like(self.dispatch_counts, dtype=float)
        return self.dispatch_counts / float(total)
