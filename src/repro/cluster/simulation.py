"""The top-level simulation driver.

:class:`ClusterSimulation` wires an arrival source, a service-time process,
a staleness model and a selection policy into one discrete-event run and
reports response-time statistics, matching the methodology of §5 of the
paper: a stream of arrivals is dispatched on arrival to FIFO server queues;
the first fraction of jobs warms the system up; the mean response time of
the remainder is the headline metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.job import Job
from repro.cluster.metrics import ClusterMetrics
from repro.cluster.server import Server
from repro.core.policy import Policy
from repro.core.rate_estimators import ExactRate, RateEstimator
from repro.engine.rng import RandomStreams
from repro.engine.simulator import Simulator
from repro.faults.injector import FaultInjector
from repro.overload.config import OverloadConfig
from repro.staleness.base import StalenessModel
from repro.workloads.arrivals import ArrivalSource
from repro.workloads.distributions import Distribution

__all__ = [
    "ClusterSimulation",
    "SimulationResult",
    "validate_dispatcher_count",
]


def validate_dispatcher_count(value) -> int:
    """Validate a dispatcher count at the configuration boundary.

    Accepts integers (and integer-valued floats, for CLI/JSON round
    trips) that are >= 1; rejects booleans, NaN/inf and fractional
    values with a message naming the offending input — mirroring the
    non-finite-period validation in :mod:`repro.staleness`.
    """
    if isinstance(value, bool) or not isinstance(
        value, (int, float, np.integer, np.floating)
    ):
        raise ValueError(
            f"dispatchers must be an integer >= 1, got {value!r}"
        )
    as_float = float(value)
    if not math.isfinite(as_float) or as_float != int(as_float):
        raise ValueError(
            f"dispatchers must be an integer >= 1, got {value!r}"
        )
    count = int(as_float)
    if count < 1:
        raise ValueError(f"dispatchers must be >= 1, got {count}")
    return count


@dataclass(frozen=True, slots=True)
class SimulationResult:
    """Outcome of one simulation run.

    Attributes
    ----------
    mean_response_time:
        Mean response time (queueing + service) of measured jobs.
    jobs_measured:
        Number of jobs contributing to the statistics (post warm-up).
    jobs_total:
        Total arrivals dispatched, including warm-up.
    duration:
        Simulation time at which the run stopped.
    dispatch_counts:
        Jobs sent to each server (including warm-up).
    jobs_failed:
        Jobs that never completed: stalled in a permanent outage, aborted
        by a crash, or dropped after exhausting their retry budget.
        Always 0 on fault-free runs.
    jobs_retried:
        Jobs that needed at least one re-dispatch after a timeout.
    retries_total:
        Re-dispatch attempts summed over all jobs.
    retry_penalty:
        Total timeout + backoff latency paid by completed jobs (already
        included in their measured response times).
    jobs_rejected:
        Dispatches refused by a full server queue (bounded-queue runs);
        a job can be rejected several times before landing or dropping.
    jobs_shed:
        Arrivals refused by admission control before server selection.
    jobs_dropped:
        Jobs refused for good — shed/rejected with no retry storm, or a
        storm that exhausted its re-submission budget.  Disjoint from
        ``jobs_failed`` (fault losses); both subtract from goodput.
    storm_resubmits:
        Retry-storm re-submissions (refused jobs re-entering the arrival
        pipeline after client backoff).
    breaker_trips:
        Circuit-breaker CLOSED/HALF_OPEN → OPEN transitions summed over
        servers.
    rejected_counts:
        Per-server queue-full rejections, or ``None`` when no overload
        protection was active.
    response_times:
        Per-job response times when tracing was enabled, else ``None``.
    trace:
        Full per-job records when job tracing was enabled, else ``None``.
    """

    mean_response_time: float
    jobs_measured: int
    jobs_total: int
    duration: float
    dispatch_counts: np.ndarray
    jobs_failed: int = 0
    jobs_retried: int = 0
    retries_total: int = 0
    retry_penalty: float = 0.0
    jobs_rejected: int = 0
    jobs_shed: int = 0
    jobs_dropped: int = 0
    storm_resubmits: int = 0
    breaker_trips: int = 0
    rejected_counts: np.ndarray | None = None
    response_times: np.ndarray | None = None
    trace: list[Job] | None = field(default=None, repr=False)

    @property
    def goodput(self) -> float:
        """Fraction of all arrivals that completed service.

        Counts both overload drops and fault failures against the run;
        1.0 on a healthy unbounded-queue run.
        """
        if self.jobs_total == 0:
            return 0.0
        lost = self.jobs_failed + self.jobs_dropped
        return (self.jobs_total - lost) / self.jobs_total

    @property
    def drop_rate(self) -> float:
        """Fraction of all arrivals lost (``1 - goodput``)."""
        if self.jobs_total == 0:
            return 0.0
        return (self.jobs_failed + self.jobs_dropped) / self.jobs_total

    @property
    def dispatch_fractions(self) -> np.ndarray:
        """Fraction of all dispatched jobs sent to each server."""
        total = self.dispatch_counts.sum()
        if total == 0:
            return np.zeros_like(self.dispatch_counts, dtype=float)
        return self.dispatch_counts / float(total)

    def response_time_percentile(self, quantile: float) -> float:
        """Tail-latency percentile of measured jobs (e.g. 0.99 for p99).

        Requires the run to have been traced
        (``trace_response_times=True``); the paper reports means only, but
        tail behavior is where the herd effect bites hardest.
        """
        if self.response_times is None:
            raise RuntimeError(
                "per-job response times were not traced; construct the "
                "simulation with trace_response_times=True"
            )
        if not 0.0 < quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {quantile}")
        return float(np.percentile(self.response_times, quantile * 100.0))


class ClusterSimulation:
    """One complete load-balancing simulation.

    Parameters
    ----------
    num_servers:
        Cluster size ``n`` (the paper's default is 10).
    arrivals:
        The arrival source; its aggregate rate defines the offered load
        ``λ = total_rate / (n · service_rate)``.
    service:
        Service-time distribution (mean 1.0 reproduces the paper's units).
    policy:
        The server-selection policy under study.
    staleness:
        The information model connecting servers to the policy.
    rate_estimator:
        λ estimator handed to the policy; defaults to the exact oracle the
        paper's main experiments assume.
    total_jobs:
        Arrivals to dispatch before stopping (paper: 500,000).
    warmup_fraction:
        Leading fraction of arrivals excluded from statistics.
    seed:
        Master seed; arrivals, service times, the staleness model and the
        policy each draw from independent substreams, so swapping one
        component does not perturb the others' randomness.
    trace_jobs:
        Keep a full :class:`~repro.cluster.job.Job` record per measured
        job (memory-heavy; off by default).
    trace_response_times:
        Keep per-job response times for percentile summaries.
    server_rates:
        Optional per-server service rates for the heterogeneous-cluster
        extension; defaults to 1.0 everywhere (the paper's setting).
    client_latency:
        Optional ``(num_clients, num_servers)`` round-trip-time matrix in
        units of mean service time, for the wide-area extension: each
        job's measured response time gains the round trip between its
        client and its chosen server.  Queue dynamics are unaffected (a
        first-order model in which propagation delays requests and
        replies without reordering queue entries).  Client ids index rows
        modulo the matrix height.
    probes:
        Optional observability probes (:class:`repro.obs.Probe`); they
        observe dispatches, job lifecycles and board refreshes passively
        and cannot perturb the simulation.  When empty or ``None`` the
        probe code paths reduce to a single ``None`` check per arrival.
    faults:
        Optional :class:`~repro.faults.injector.FaultInjector` driving
        per-server crash/recovery and degraded-service lifecycles off the
        dedicated ``"faults"`` random stream, plus the dispatcher's
        timeout/retry behavior.  ``None`` (and an injector with the null
        schedule) leaves the run bit-identical to a fault-free one.
    overload:
        Optional :class:`~repro.overload.config.OverloadConfig` enabling
        bounded server queues, admission control, circuit breakers
        and/or retry storms.  ``None`` (and a config with every knob at
        its default) leaves the run bit-identical to an unprotected one;
        any active knob forces the event engine (see
        :meth:`fast_path_blocker`).
    autoscaler:
        Optional :class:`~repro.nonstationary.autoscale.Autoscaler`
        enabling elastic capacity: a controller ticks periodically,
        reads the *stale* bulletin board and λ estimate, and starts or
        stops servers.  At run time the configured ``faults`` injector
        (or a null one) is wrapped in an
        :class:`~repro.nonstationary.autoscale.ElasticCapacityInjector`,
        so inactive servers look exactly like crashed ones: dispatches
        time out and retry, and the board keeps their last stale entry.
        ``None`` leaves every code path untouched; any autoscaler forces
        the event engine and is incompatible with ``dispatchers > 1``.
    engine:
        ``"auto"`` (default) runs the phase-batched fast path
        (:mod:`repro.engine.fastpath`) whenever the configuration permits
        it and the event-driven loop otherwise; ``"event"`` forces the
        event loop; ``"fast"`` forces the fast path and raises
        :class:`ValueError` with the blocking reason if it is unavailable.
        ``"vector"`` forces the numpy-vectorized batch kernel
        (:mod:`repro.engine.vector`) — same eligibility matrix and same
        bit-identical results as the fast path, but scaling to clusters
        of thousands of servers.  ``"event"``/``"fast"``/``"vector"``
        all produce bit-identical :class:`SimulationResult` objects, so
        among those the choice is purely a performance knob.
        ``"fluid"`` solves the mean-field (n → ∞) fixed point instead of
        simulating jobs (:mod:`repro.engine.fluid`); it is an explicit
        opt-in, asymptotic rather than bit-identical, and raises
        :class:`ValueError` (see :meth:`fluid_blocker`) when the
        configuration has no fluid translation.  After :meth:`run`,
        :attr:`engine_used` records which engine executed.
    dispatchers:
        Number of concurrent front-ends ``m``.  The default 1 is the
        paper's single-dispatcher model and leaves every code path (and
        every random draw) untouched.  With ``m > 1`` the run is handed
        to :class:`~repro.multidispatch.simulation.MultiDispatchSimulation`
        with a shared board and the honest dispatcher-local λ_d = λ/m
        view; this requires :class:`PoissonArrivals` (the aggregate
        stream is split ``m`` ways) and is incompatible with server
        ``faults`` (use ``MultiDispatchSimulation`` directly for
        front-end faults).
    """

    #: Engine selected by the most recent :meth:`run`
    #: ("event", "fast", "vector" or "fluid").
    engine_used: str | None = None

    #: Breaker digest of the most recent :meth:`run` (``None`` unless the
    #: run had circuit breakers enabled).
    last_breaker_summary: dict | None = None

    #: Fluid-solution digest of the most recent :meth:`run` (``None``
    #: unless the run executed on the fluid engine).
    last_fluid_summary: dict | None = None

    #: Scaling-history digest of the most recent :meth:`run` (``None``
    #: unless the run had an autoscaler).
    last_scaling_summary: dict | None = None

    def __init__(
        self,
        num_servers: int,
        arrivals: ArrivalSource,
        service: Distribution,
        policy: Policy,
        staleness: StalenessModel,
        rate_estimator: RateEstimator | None = None,
        total_jobs: int = 100_000,
        warmup_fraction: float = 0.1,
        seed: int = 0,
        trace_jobs: bool = False,
        trace_response_times: bool = False,
        server_rates: list[float] | None = None,
        client_latency: np.ndarray | None = None,
        probes: list | None = None,
        faults: FaultInjector | None = None,
        overload: OverloadConfig | None = None,
        autoscaler=None,
        engine: str = "auto",
        dispatchers: int = 1,
    ) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        if total_jobs < 1:
            raise ValueError(f"total_jobs must be >= 1, got {total_jobs}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        if server_rates is not None and len(server_rates) != num_servers:
            raise ValueError(
                f"server_rates has {len(server_rates)} entries for "
                f"{num_servers} servers"
            )
        if client_latency is not None:
            client_latency = np.asarray(client_latency, dtype=np.float64)
            if client_latency.ndim != 2 or client_latency.shape[1] != num_servers:
                raise ValueError(
                    "client_latency must be a (num_clients, num_servers) "
                    f"matrix; got shape {client_latency.shape} for "
                    f"{num_servers} servers"
                )
            if np.any(client_latency < 0):
                raise ValueError("client_latency entries must be non-negative")

        self.num_servers = num_servers
        self.arrivals = arrivals
        self.service = service
        self.policy = policy
        self.staleness = staleness
        self.rate_estimator = rate_estimator or ExactRate()
        self.total_jobs = total_jobs
        self.warmup_fraction = warmup_fraction
        self.seed = seed
        self.trace_jobs = trace_jobs
        self.trace_response_times = trace_response_times
        if faults is not None and not isinstance(faults, FaultInjector):
            raise TypeError(
                "faults must be a FaultInjector (or None), got "
                f"{type(faults).__name__}"
            )
        if overload is not None and not isinstance(overload, OverloadConfig):
            raise TypeError(
                "overload must be an OverloadConfig (or None), got "
                f"{type(overload).__name__}"
            )
        if autoscaler is not None:
            from repro.nonstationary.autoscale import Autoscaler

            if not isinstance(autoscaler, Autoscaler):
                raise TypeError(
                    "autoscaler must be an Autoscaler (or None), got "
                    f"{type(autoscaler).__name__}"
                )
        self.server_rates = server_rates
        self.client_latency = client_latency
        self.probes = list(probes) if probes else None
        self.faults = faults
        self.overload = overload
        self.autoscaler = autoscaler
        if engine not in ("auto", "event", "fast", "vector", "fluid"):
            raise ValueError(
                "engine must be 'auto', 'event', 'fast', 'vector' or "
                f"'fluid', got {engine!r}"
            )
        self.engine = engine
        self.dispatchers = validate_dispatcher_count(dispatchers)

    @property
    def offered_load(self) -> float:
        """Per-server offered load λ (arrival rate / aggregate capacity).

        A cluster whose every server is rate-profiled to zero has no
        capacity at all: any positive arrival rate overloads it
        infinitely, so the ratio is reported as ``inf`` rather than
        raising ``ZeroDivisionError``.
        """
        total_capacity = (
            float(sum(self.server_rates))
            if self.server_rates is not None
            else float(self.num_servers)
        )
        offered = self.arrivals.total_rate * self.service.mean
        if total_capacity == 0.0:
            return math.inf if offered > 0 else 0.0
        return offered / total_capacity

    def fast_path_blocker(self) -> str | None:
        """Why the phase-batched fast path cannot run, or ``None`` if it can.

        This is the fallback matrix documented in DESIGN.md §8: every
        feature that would make batched draws diverge from the event
        loop's scalar draw sequence (or change event interleaving at all)
        names itself here and forces the event engine.
        """
        from repro.staleness.lossy import LossyPeriodicUpdate
        from repro.staleness.periodic import PeriodicUpdate
        from repro.workloads.arrivals import (
            PoissonArrivals,
            TimeVaryingPoissonArrivals,
        )

        if type(self) is not ClusterSimulation:
            return (
                f"{type(self).__name__} subclasses the driver and may add "
                "event-loop behavior the batched kernel cannot replay"
            )
        if self.dispatchers > 1:
            return (
                f"multi_dispatcher: m={self.dispatchers} front-ends "
                "interleave per-dispatcher draws by event order"
            )
        if self.faults is not None:
            return "fault injection (timeouts and retries are event-driven)"
        if self.autoscaler is not None:
            return (
                "autoscaler: elastic capacity schedules controller ticks "
                "and per-dispatch availability checks in the event loop"
            )
        if self.overload is not None and self.overload.active:
            return (
                f"{self.overload.blocker_reason()}: per-arrival refusal "
                "decisions are sequential, not phase-batchable"
            )
        if self.probes and any(
            getattr(p, "requires_event_loop", True) for p in self.probes
        ):
            return "observability probes need the event loop's per-event hooks"
        if type(self.staleness) not in (PeriodicUpdate, LossyPeriodicUpdate):
            return (
                f"staleness model {type(self.staleness).__name__} is not a "
                "phase-based bulletin board"
            )
        if self.staleness.phase_offset != 0.0:
            return (
                "periodic board has a non-zero phase_offset; the batched "
                "refresh clock replays the unstaggered schedule only"
            )
        if type(self.arrivals) is TimeVaryingPoissonArrivals:
            if not self.arrivals.program.is_constant:
                return (
                    "nonstationary_arrivals: a time-varying rate program "
                    "thins candidate arrivals per event; only a constant "
                    "program replays the stationary draw sequence"
                )
            # A constant program replays PoissonArrivals' exact draws and
            # only its total_rate is consumed by the batch kernels.
        elif type(self.arrivals) is not PoissonArrivals:
            return (
                f"arrival source {type(self.arrivals).__name__} interleaves "
                "per-client draws by event order"
            )
        if not self.service.batch_matches_scalar:
            return (
                f"service distribution {type(self.service).__name__} does "
                "not draw bitwise-identically in batches"
            )
        if (
            type(self.rate_estimator).observe_arrival
            is not RateEstimator.observe_arrival
        ):
            return (
                f"rate estimator {type(self.rate_estimator).__name__} "
                "updates its estimate at every arrival"
            )
        if not self.policy.phase_batchable(self.num_servers):
            return (
                f"policy {type(self.policy).__name__} cannot replay a phase "
                "with batched draws"
            )
        if not self._policy_batch_consistent():
            return (
                f"policy {type(self.policy).__name__} overrides select() "
                "without a matching select_batch(), so the batched replay "
                "could diverge from the scalar path"
            )
        return None

    def _policy_batch_consistent(self) -> bool:
        """Whether the policy's ``select_batch`` can stand in for ``select``.

        A subclass that overrides ``select`` while inheriting its parent's
        ``select_batch`` would batch-replay the *parent's* behavior; the
        batch method is only trusted when it is defined at (or below) the
        class that defines ``select``.
        """

        def defining_class(name: str) -> type:
            for klass in type(self.policy).__mro__:
                if name in vars(klass):
                    return klass
            raise AttributeError(name)  # unreachable: Policy defines both

        return issubclass(
            defining_class("select_batch"), defining_class("select")
        )

    def fluid_blocker(self) -> str | None:
        """Why the mean-field fluid engine cannot run, or ``None`` if it can.

        The fluid engine replaces the finite cluster with its n → ∞
        mean-field limit, so it needs every component to have an exact
        fluid translation: Poisson arrivals, exponential service, a
        deterministic periodic board, homogeneous rates and a policy
        whose per-phase routing reduces to a probability vector over
        reported load levels (see DESIGN.md §11).
        """
        from repro.core.ksubset import KSubsetPolicy
        from repro.core.li_basic import BasicLIPolicy
        from repro.core.random_policy import RandomPolicy
        from repro.core.threshold import ThresholdPolicy
        from repro.staleness.periodic import PeriodicUpdate
        from repro.workloads.arrivals import (
            PoissonArrivals,
            TimeVaryingPoissonArrivals,
        )
        from repro.workloads.distributions import Exponential

        if type(self) is not ClusterSimulation:
            return (
                f"{type(self).__name__} subclasses the driver and may add "
                "behavior with no mean-field translation"
            )
        if self.dispatchers > 1:
            return "multi_dispatcher runs have no single-board fluid model"
        if self.faults is not None:
            return "fault injection has no fluid translation"
        if self.autoscaler is not None:
            return (
                "autoscaler: the fluid fixed point assumes a constant "
                "server population"
            )
        if self.overload is not None and self.overload.active:
            return f"{self.overload.blocker_reason()}: no fluid translation"
        if self.probes and any(
            getattr(p, "requires_event_loop", True) for p in self.probes
        ):
            return "observability probes need per-event hooks; the fluid "\
                "engine simulates no events"
        if type(self.staleness) is not PeriodicUpdate:
            return (
                f"staleness model {type(self.staleness).__name__} is not "
                "the deterministic periodic board the fluid phase map models"
            )
        if self.staleness.phase_offset != 0.0:
            return "periodic board phase_offset must be 0 for the fluid map"
        if self.staleness.metric != "queue-length":
            return (
                f"board metric {self.staleness.metric!r} has no fluid "
                "translation (levels must be integer queue lengths)"
            )
        if type(self.arrivals) is TimeVaryingPoissonArrivals:
            if not self.arrivals.program.is_constant:
                return (
                    "nonstationary_arrivals: the fluid fixed point assumes "
                    "a stationary arrival rate"
                )
        elif type(self.arrivals) is not PoissonArrivals:
            return (
                f"arrival source {type(self.arrivals).__name__} is not the "
                "Poisson stream the fluid arrival terms assume"
            )
        if type(self.service) is not Exponential:
            return (
                f"service distribution {type(self.service).__name__} is not "
                "exponential; the fluid occupancy chains are Markovian"
            )
        if self.server_rates is not None and len(set(self.server_rates)) > 1:
            return "heterogeneous server_rates have no single-class fluid model"
        if self.client_latency is not None:
            return "client_latency matrices have no fluid translation"
        if (
            type(self.rate_estimator).observe_arrival
            is not RateEstimator.observe_arrival
        ):
            return (
                f"rate estimator {type(self.rate_estimator).__name__} "
                "updates per arrival; the fluid engine has no arrivals"
            )
        policy = self.policy
        if type(policy) is RandomPolicy:
            return None
        if type(policy) is KSubsetPolicy:
            return None
        if type(policy) is BasicLIPolicy:
            if policy.timestamp_aware:
                return (
                    "timestamp-aware LI changes interpretation within a "
                    "phase; the fluid map is phase-constant"
                )
            return None
        if type(policy) is ThresholdPolicy:
            if (
                policy.k is not None
                and policy.k != self.num_servers
                and policy.fallback != "random"
            ):
                return (
                    "threshold with a k-subset probe and least-loaded "
                    "fallback has no closed fluid routing law"
                )
            return None
        return (
            f"policy {type(policy).__name__} has no fluid routing "
            "translation (supported: random, k-subset, threshold, basic LI)"
        )

    def engine_decision(self) -> tuple[str, str]:
        """Resolve the ``engine`` setting to ``(engine, reason)``.

        Raises :class:`ValueError` when ``engine="fast"``, ``"vector"``
        or ``"fluid"`` was requested but the configuration is ineligible
        (the reason names the blocking feature).
        """
        if self.engine == "event":
            return "event", "engine='event' requested"
        if self.engine == "fluid":
            blocker = self.fluid_blocker()
            if blocker is not None:
                raise ValueError(
                    "engine='fluid' requested but the fluid engine is "
                    f"unavailable: {blocker}"
                )
            return "fluid", "mean-field fixed point requested"
        blocker = self.fast_path_blocker()
        if self.engine == "vector":
            if blocker is not None:
                raise ValueError(
                    "engine='vector' requested but the vector kernel is "
                    f"unavailable: {blocker}"
                )
            return "vector", "vectorized batch kernel requested"
        if blocker is None:
            return "fast", "periodic board with batchable components"
        if self.engine == "fast":
            raise ValueError(
                f"engine='fast' requested but the fast path is unavailable: "
                f"{blocker}"
            )
        return "event", blocker

    def run(self) -> SimulationResult:
        """Execute the simulation and return its measurements.

        Selects the engine per :meth:`engine_decision`; the event, fast
        and vector engines produce bit-identical results, the fluid
        engine a mean-field asymptote.
        """
        validate_warmup = getattr(self.arrivals, "validate_warmup", None)
        if validate_warmup is not None:
            validate_warmup(self.warmup_fraction, self.total_jobs)
        engine, reason = self.engine_decision()
        self.engine_used = engine
        if self.probes:
            for probe in self.probes:
                hook = getattr(probe, "on_engine", None)
                if hook is not None:
                    hook(engine, reason, self)
        if self.dispatchers > 1:
            return self._run_multidispatch()
        if engine == "fast":
            from repro.engine.fastpath import run_fast_path

            return run_fast_path(self)
        if engine == "vector":
            from repro.engine.vector import run_vector_path

            return run_vector_path(self)
        if engine == "fluid":
            from repro.engine.fluid import run_fluid

            return run_fluid(self)
        return self._run_event()

    def _run_multidispatch(self) -> SimulationResult:
        """Delegate an m > 1 run to the multi-dispatcher driver.

        The configuration maps to a shared bulletin board read by
        ``dispatchers`` front-ends, each owning a deep copy of the policy
        and rate estimator bound to the honest local rate λ_d = λ/m.
        """
        from repro.multidispatch.simulation import MultiDispatchSimulation
        from repro.workloads.arrivals import PoissonArrivals

        if type(self.arrivals) is not PoissonArrivals:
            raise ValueError(
                "dispatchers > 1 splits one aggregate Poisson stream "
                f"across front-ends; {type(self.arrivals).__name__} cannot "
                "be split (construct MultiDispatchSimulation directly for "
                "custom setups)"
            )
        if self.faults is not None:
            raise ValueError(
                "server fault injection is not supported with "
                "dispatchers > 1; use MultiDispatchSimulation("
                "dispatcher_faults=...) for front-end faults"
            )
        if self.autoscaler is not None:
            raise ValueError(
                "autoscaling is not supported with dispatchers > 1: the "
                "controller assumes a single dispatcher's board and λ "
                "estimate as its observation channel"
            )
        if self.overload is not None and self.overload.retry_storm is not None:
            raise ValueError(
                "retry storms are not supported with dispatchers > 1: "
                "re-submissions would need a per-client home dispatcher "
                "the split-arrival model does not define"
            )
        delegate = MultiDispatchSimulation(
            num_servers=self.num_servers,
            total_rate=self.arrivals.total_rate,
            service=self.service,
            policy=self.policy,
            staleness=self.staleness,
            num_dispatchers=self.dispatchers,
            board="shared",
            rate_estimator=self.rate_estimator,
            lambda_view="local",
            total_jobs=self.total_jobs,
            warmup_fraction=self.warmup_fraction,
            seed=self.seed,
            trace_jobs=self.trace_jobs,
            trace_response_times=self.trace_response_times,
            server_rates=self.server_rates,
            client_latency=self.client_latency,
            probes=self.probes,
            overload=self.overload,
        )
        return delegate.run()

    def _run_event(self) -> SimulationResult:
        """The reference event-driven engine (one heap event per arrival)."""
        streams = RandomStreams(self.seed)
        sim = Simulator()
        rates = self.server_rates or [1.0] * self.num_servers

        overload = self.overload if self.overload is not None else None
        overload_active = overload is not None and overload.active
        queue_capacity = overload.queue_capacity if overload_active else None
        admission = overload.admission if overload_active and overload.sheds else None
        storm = overload.retry_storm if overload_active else None

        servers = [
            Server(i, rate, queue_capacity=queue_capacity)
            for i, rate in enumerate(rates)
        ]

        probe_set = None
        if self.probes:
            from repro.obs.probes import ProbeSet

            probe_set = ProbeSet(self.probes)
            probe_set.on_attach(sim, servers)

        faults = self.faults
        if self.autoscaler is not None:
            from repro.nonstationary.autoscale import ElasticCapacityInjector

            # Elastic capacity rides the fault interface: the wrapper makes
            # inactive servers indistinguishable from crashed ones to the
            # dispatcher and the board, composing with any inner injector.
            faults = ElasticCapacityInjector(self.autoscaler, inner=self.faults)
        retry = faults.retry if faults is not None else None
        faults_rng = None
        if faults is not None:
            faults_rng = streams.stream("faults")
            faults.attach(sim, servers, faults_rng, probes=probe_set)

        breakers = None
        if overload_active and overload.breaker is not None:
            from repro.overload.breaker import BreakerBoard

            on_transition = None
            if probe_set is not None:
                on_transition = probe_set.on_breaker_transition
            breakers = BreakerBoard(
                self.num_servers,
                overload.breaker,
                rng=(
                    streams.stream("breaker")
                    if overload.breaker.cooldown_jitter > 0
                    else None
                ),
                on_transition=on_transition,
            )
        if admission is not None:
            from repro.overload.admission import ProbabilisticShed

            admission.bind(
                self.num_servers,
                (
                    streams.stream("admission")
                    if isinstance(admission, ProbabilisticShed)
                    else None
                ),
            )
        storm_rng = (
            streams.stream("retry-storm")
            if storm is not None and storm.jitter > 0
            else None
        )

        self.staleness.attach(
            sim,
            servers,
            streams.stream("staleness"),
            probes=probe_set,
            faults=faults,
        )
        self.rate_estimator.bind(self.num_servers, self._per_server_rate())
        if self.autoscaler is not None:
            # The controller observes through the same stale channels the
            # dispatcher uses: the bulletin board and the λ estimator.
            faults.connect(self.staleness, self.rate_estimator)
        self.policy.bind(
            self.num_servers,
            streams.stream("policy"),
            self.rate_estimator,
            server_rates=np.asarray(rates, dtype=np.float64),
        )

        metrics = ClusterMetrics(
            num_servers=self.num_servers,
            warmup_jobs=int(self.total_jobs * self.warmup_fraction),
            trace_response_times=self.trace_response_times,
        )
        service_rng = streams.stream("service")
        trace: list[Job] | None = [] if self.trace_jobs else None
        arrivals_seen = 0
        pending_retries = 0
        pending_storm = 0

        def maybe_stop() -> None:
            if (
                arrivals_seen >= self.total_jobs
                and pending_retries == 0
                and pending_storm == 0
            ):
                sim.stop()

        def select_retry_target(client_id: int, excluded: frozenset[int]) -> int:
            # Re-dispatch targets are picked by the dispatcher itself —
            # least reported load among non-excluded servers, lowest id on
            # ties — rather than by re-running the policy: policies cache
            # per-version state and RandomPolicy ignores exclusions, so
            # re-selection would either poison caches or spin.
            loads = self.staleness.view(client_id, sim.now).loads
            best = -1
            best_load = math.inf
            for candidate in range(self.num_servers):
                if candidate in excluded:
                    continue
                load = loads[candidate]
                if load < best_load:
                    best_load = load
                    best = candidate
            return best

        def attempt_dispatch(
            index: int,
            client_id: int,
            arrival_time: float,
            service_time: float,
            server_id: int,
            excluded: frozenset[int],
            retries_done: int,
            resubmits_done: int = 0,
        ) -> None:
            nonlocal pending_retries
            now = sim.now
            if breakers is not None and not breakers.allow(server_id, now):
                # The breaker knows what the stale board does not: this
                # server has been refusing work.  Route around it — to the
                # least-loaded server no breaker currently blocks — or
                # refuse the job outright if every server is blocked.
                blocked = excluded | frozenset(
                    candidate
                    for candidate in range(self.num_servers)
                    if breakers.blocks(candidate, now)
                )
                if len(blocked) >= self.num_servers:
                    refuse(
                        index,
                        client_id,
                        arrival_time,
                        service_time,
                        resubmits_done,
                        "breaker-blocked",
                    )
                    return
                server_id = select_retry_target(client_id, blocked)
                breakers.allow(server_id, now)  # may claim a half-open probe
            server = servers[server_id]
            if faults is not None and faults.is_down(server_id, now):
                # The board said otherwise; the dispatcher discovers the
                # crash the hard way, by waiting out the timeout — which
                # is exactly the signal that trips a breaker.
                if breakers is not None:
                    breakers.record_failure(server_id, now)
                if retry.max_attempts and retries_done >= retry.max_attempts:
                    metrics.record_failure(server_id, retries=retries_done)
                    if probe_set is not None:
                        probe_set.on_job_failed(
                            now + retry.timeout, server_id, "retries-exhausted"
                        )
                    return
                next_attempt = retries_done + 1
                excluded = excluded | {server_id}
                if len(excluded) >= self.num_servers:
                    excluded = frozenset()
                if probe_set is not None:
                    probe_set.on_retry(now, client_id, server_id, next_attempt)
                pending_retries += 1

                def redispatch() -> None:
                    nonlocal pending_retries
                    pending_retries -= 1
                    target = select_retry_target(client_id, excluded)
                    attempt_dispatch(
                        index,
                        client_id,
                        arrival_time,
                        service_time,
                        target,
                        excluded,
                        next_attempt,
                        resubmits_done,
                    )
                    maybe_stop()

                sim.schedule_after(
                    retry.timeout + retry.backoff_delay(next_attempt, faults_rng),
                    redispatch,
                )
                return

            if queue_capacity is None:
                completion = server.assign(now, service_time)
            else:
                accepted = server.try_assign(now, service_time)
                if accepted is None:
                    # Queue full: the dispatch bounced off the capacity
                    # limit.  Charged to the server's rejection count and
                    # to its breaker, then the job is refused (and may
                    # come back as a storm re-submission).
                    metrics.record_reject(server_id)
                    if breakers is not None:
                        breakers.record_failure(server_id, now)
                    if probe_set is not None:
                        probe_set.on_job_rejected(now, server_id)
                    refuse(
                        index,
                        client_id,
                        arrival_time,
                        service_time,
                        resubmits_done,
                        "queue-full",
                    )
                    return
                completion = accepted
            if breakers is not None:
                breakers.record_success(server_id, now)
            aborted = server.last_assign_aborted
            if aborted or not math.isfinite(completion):
                metrics.record_failure(server_id, retries=retries_done)
                if probe_set is not None:
                    probe_set.on_dispatch(
                        now, client_id, server_id, server.queue_length(now)
                    )
                    probe_set.on_job_failed(
                        completion if aborted else now,
                        server_id,
                        "aborted" if aborted else "stalled",
                    )
                return
            self.staleness.on_dispatch(client_id, server_id, now)
            penalty = now - arrival_time
            response = completion - arrival_time
            if self.client_latency is not None:
                response += self.client_latency[
                    client_id % self.client_latency.shape[0], server_id
                ]
            metrics.record(
                server_id, response, retries=retries_done, penalty=penalty
            )
            if probe_set is not None:
                if server.timeline is None:
                    start = completion - service_time / server.service_rate
                else:
                    start = max(now, completion - service_time / server.service_rate)
                probe_set.on_dispatch(
                    now, client_id, server_id, server.queue_length(now)
                )
                probe_set.on_job_start(server_id, start, service_time)
                probe_set.on_job_complete(server_id, completion, response)
            if trace is not None:
                trace.append(
                    Job(
                        index=index,
                        client_id=client_id,
                        server_id=server_id,
                        arrival_time=arrival_time,
                        service_time=service_time,
                        completion_time=completion,
                        retries=retries_done,
                        penalty=penalty,
                    )
                )

        def refuse(
            index: int,
            client_id: int,
            arrival_time: float,
            service_time: float | None,
            resubmits_done: int,
            reason: str,
        ) -> None:
            # A job the system would not take: shed by admission, bounced
            # by a full queue, or blocked by breakers on every server.
            # Without a retry storm the client gives up immediately; with
            # one, the job comes back as a fresh arrival after a jittered
            # backoff — the feedback loop that makes overload metastable.
            nonlocal pending_storm
            if storm is None or resubmits_done >= storm.max_resubmits:
                metrics.record_drop()
                if probe_set is not None:
                    probe_set.on_job_failed(
                        sim.now,
                        -1,
                        "storm-exhausted" if storm is not None else reason,
                    )
                return
            next_resubmit = resubmits_done + 1
            metrics.record_resubmit()
            pending_storm += 1

            def resubmit() -> None:
                nonlocal pending_storm
                pending_storm -= 1
                self.rate_estimator.observe_arrival(sim.now)
                submit(index, client_id, arrival_time, next_resubmit, service_time)
                maybe_stop()

            sim.schedule_after(storm.delay(next_resubmit, storm_rng), resubmit)

        def submit(
            index: int,
            client_id: int,
            arrival_time: float,
            resubmits_done: int,
            service_time: float | None,
        ) -> None:
            # The dispatcher's full pipeline for one (re-)submission:
            # stale view -> admission -> server selection -> dispatch.
            # The job's service demand is sampled once, at its first
            # dispatch attempt, and carried across re-submissions.
            now = sim.now
            view = self.staleness.view(client_id, now)
            if admission is not None and not admission.admit(view):
                metrics.record_shed()
                if probe_set is not None:
                    probe_set.on_job_shed(now, client_id)
                refuse(
                    index, client_id, arrival_time, service_time,
                    resubmits_done, "shed",
                )
                return
            server_id = self.policy.select(view)
            if not 0 <= server_id < self.num_servers:
                raise RuntimeError(
                    f"{type(self.policy).__name__} selected invalid server "
                    f"{server_id} (cluster size {self.num_servers})"
                )
            if service_time is None:
                service_time = self.service.sample(service_rng)
            attempt_dispatch(
                index,
                client_id,
                arrival_time,
                service_time,
                server_id,
                frozenset(),
                0,
                resubmits_done,
            )

        def on_arrival(client_id: int) -> None:
            nonlocal arrivals_seen
            if arrivals_seen >= self.total_jobs:
                return  # quota reached; the run is only draining retries
            now = sim.now
            self.rate_estimator.observe_arrival(now)
            index = arrivals_seen
            arrivals_seen += 1
            submit(index, client_id, now, 0, None)
            maybe_stop()

        self.arrivals.start(sim, streams.stream("arrivals"), on_arrival)
        sim.run()
        if breakers is not None:
            breakers.finalize(sim.now)
            self.last_breaker_summary = breakers.summary()
        if self.autoscaler is not None:
            self.last_scaling_summary = faults.scaling_summary(sim.now)
        if probe_set is not None:
            probe_set.on_finish(sim.now)

        return SimulationResult(
            mean_response_time=metrics.mean_response_time,
            jobs_measured=metrics.jobs_measured,
            jobs_total=metrics.jobs_seen,
            duration=sim.now,
            dispatch_counts=metrics.dispatch_counts.copy(),
            jobs_failed=metrics.jobs_failed,
            jobs_retried=metrics.jobs_retried,
            retries_total=metrics.retries_total,
            retry_penalty=metrics.retry_penalty_total,
            jobs_rejected=metrics.jobs_rejected,
            jobs_shed=metrics.jobs_shed,
            jobs_dropped=metrics.jobs_dropped,
            storm_resubmits=metrics.storm_resubmits,
            breaker_trips=breakers.trips_total if breakers is not None else 0,
            rejected_counts=(
                metrics.rejected_counts.copy() if overload_active else None
            ),
            response_times=(
                metrics.response_times if self.trace_response_times else None
            ),
            trace=trace,
        )

    def _per_server_rate(self) -> float:
        return self.arrivals.total_rate / self.num_servers
