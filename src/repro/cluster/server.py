"""A FIFO single-server queue with exact dynamics and historical queries.

Because every job is dispatched to its server at arrival time and served
FIFO, a server's state evolves by the recurrence::

    completion_j = max(arrival_j, completion_{j-1}) + service_j / rate

Both the per-server arrival-time sequence and the completion-time sequence
are monotonically non-decreasing, so the queue length at *any* time ``s``
(including times in the past, which the continuous-update staleness model
must read) is::

    #{arrivals <= s} - #{completions <= s}

computed with two binary searches.  This gives the cluster substrate exact
event semantics at O(1) amortized cost per dispatch and O(log m) per load
query, with no event-queue traffic for departures at all.

Fault lifecycle: when a :class:`~repro.faults.injector.FaultInjector` is
active it hands each server a realized
:class:`~repro.faults.schedule.ServerTimeline` (UP / DEGRADED / DOWN
spans drawn before they are consulted).  The same closed-form dispatch
works unchanged — the completion recurrence just integrates the
piecewise-constant capacity profile instead of a constant rate, DOWN
spans deliver zero work (jobs stall), and under an ``"abort"`` schedule
a crash while a job is present discards it at the crash instant.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.schedule import ServerState, ServerTimeline

__all__ = ["Server"]


class Server:
    """A FIFO queue with unit (or configurable) service rate.

    Parameters
    ----------
    server_id:
        Index of this server within the cluster.
    service_rate:
        Capacity relative to the baseline: a job of size ``s`` occupies the
        server for ``s / service_rate`` time units.  The paper studies the
        homogeneous case (rate 1.0 everywhere); heterogeneous rates are an
        extension flagged as future work in the paper's conclusions.
    timeline:
        Optional fault lifecycle profile; ``None`` (the default) keeps the
        original always-UP fast path.  The fault injector sets this when
        it attaches.
    queue_capacity:
        Maximum jobs (queued + in service) the server holds; an arrival
        that would exceed it is refused by :meth:`try_assign`.  ``None``
        (the default) keeps the original unbounded queue, in which
        :meth:`try_assign` never refuses.
    """

    __slots__ = (
        "server_id",
        "service_rate",
        "timeline",
        "queue_capacity",
        "_arrival_times",
        "_completion_times",
        "_last_completion",
        "_jobs_assigned",
        "_busy_time",
        "_jobs_aborted",
        "_last_assign_aborted",
        "_jobs_rejected",
    )

    def __init__(
        self,
        server_id: int,
        service_rate: float = 1.0,
        timeline: "ServerTimeline | None" = None,
        queue_capacity: int | None = None,
    ) -> None:
        if service_rate <= 0:
            raise ValueError(f"service_rate must be positive, got {service_rate}")
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 or None, got {queue_capacity}"
            )
        self.server_id = server_id
        self.service_rate = float(service_rate)
        self.timeline = timeline
        self.queue_capacity = queue_capacity
        self._arrival_times: list[float] = []
        self._completion_times: list[float] = []
        self._last_completion = 0.0
        self._jobs_assigned = 0
        self._busy_time = 0.0
        self._jobs_aborted = 0
        self._last_assign_aborted = False
        self._jobs_rejected = 0

    @property
    def jobs_assigned(self) -> int:
        """Total number of jobs dispatched to this server."""
        return self._jobs_assigned

    @property
    def busy_time(self) -> float:
        """Cumulative service time delivered (for utilization accounting)."""
        return self._busy_time

    @property
    def last_completion(self) -> float:
        """Completion time of the most recently assigned job (0.0 if none)."""
        return self._last_completion

    @property
    def jobs_aborted(self) -> int:
        """Jobs discarded mid-service by a crash (abort-mode schedules)."""
        return self._jobs_aborted

    @property
    def last_assign_aborted(self) -> bool:
        """Whether the most recent :meth:`assign` ended in a crash abort."""
        return self._last_assign_aborted

    @property
    def jobs_rejected(self) -> int:
        """Arrivals refused by :meth:`try_assign` against a full queue."""
        return self._jobs_rejected

    def state_at(self, time: float) -> "ServerState":
        """Lifecycle state (UP/DEGRADED/DOWN) at ``time``."""
        if self.timeline is None:
            from repro.faults.schedule import ServerState

            return ServerState.UP
        return self.timeline.state_at(time)

    def assign(self, now: float, service_time: float) -> float:
        """Enqueue a job arriving at ``now`` and return its completion time.

        With a fault timeline attached the completion integrates the
        server's piecewise-constant capacity; it can be ``inf`` if the
        server stalls in a permanent outage, and under an abort-on-crash
        schedule the job may be cut short at a crash instant (check
        :attr:`last_assign_aborted`).

        Raises
        ------
        ValueError
            If ``now`` precedes the previous assignment (arrivals must be
            fed in time order) or ``service_time`` is negative.
        """
        if service_time < 0:
            raise ValueError(f"service_time must be non-negative, got {service_time}")
        arrivals = self._arrival_times
        if arrivals and now < arrivals[-1]:
            raise ValueError(
                f"arrival at t={now} precedes previous arrival at t={arrivals[-1]}"
            )
        start = now if now > self._last_completion else self._last_completion
        if self.timeline is None:
            occupancy = service_time / self.service_rate
            completion = start + occupancy
            aborted = False
            self._busy_time += occupancy
        else:
            completion, aborted = self.timeline.serve(
                now, start, service_time, self.service_rate
            )
            if aborted:
                self._jobs_aborted += 1
            elif math.isfinite(completion):
                # Busy time is wall-clock occupancy: under degradation the
                # same work holds the server longer.
                self._busy_time += completion - start
        self._last_assign_aborted = aborted
        arrivals.append(now)
        self._completion_times.append(completion)
        self._last_completion = completion
        self._jobs_assigned += 1
        return completion

    def try_assign(self, now: float, service_time: float) -> float | None:
        """Like :meth:`assign`, but honoring :attr:`queue_capacity`.

        Returns the completion time when the job is accepted, or ``None``
        when the server already holds ``queue_capacity`` jobs at ``now``
        (the arrival is rejected and counted in :attr:`jobs_rejected`).
        The occupancy check uses the same instant-of-arrival convention
        as :meth:`queue_length`: a job completing exactly at ``now``
        frees its slot for this arrival.
        """
        if (
            self.queue_capacity is not None
            and self.queue_length(now) >= self.queue_capacity
        ):
            self._jobs_rejected += 1
            return None
        return self.assign(now, service_time)

    def queue_length(self, at_time: float) -> int:
        """Number of jobs present (queued + in service) at ``at_time``.

        Valid for any time, past or future relative to the latest
        assignment; times before the simulation start return 0.  A job
        arriving exactly at ``at_time`` is counted as present; a job
        completing exactly at ``at_time`` is counted as departed — the
        same convention the dispatch path uses, so a load report taken at
        the instant of an arrival includes that arrival.
        """
        present = bisect_right(self._arrival_times, at_time)
        departed = bisect_right(self._completion_times, at_time)
        return present - departed

    def work_remaining(self, at_time: float) -> float:
        """Unfinished work (in time units) present at ``at_time``.

        This is the backlog measure used by "least remaining work"
        policies; the paper's policies use queue *length*, but the metric
        is exposed for the job-size-aware extensions.
        """
        present = bisect_right(self._arrival_times, at_time)
        departed = bisect_right(self._completion_times, at_time)
        if present == departed:
            return 0.0
        # Under FIFO, every job counted here arrived by at_time, so the
        # server works without idling from at_time until the last of them
        # completes; the backlog is exactly that span.
        return self._completion_times[present - 1] - at_time

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the server spent serving jobs."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        return min(self._busy_time, horizon) / horizon

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Server(id={self.server_id}, rate={self.service_rate}, "
            f"assigned={self._jobs_assigned})"
        )
