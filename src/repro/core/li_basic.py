"""Basic Load Interpretation (Eqs. 2–4 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.core.weights import waterfill_probabilities
from repro.core.views import LoadView

__all__ = ["BasicLIPolicy"]


class BasicLIPolicy(Policy):
    """Equalize expected queue lengths by the end of the information epoch.

    Given reported loads ``q_i``, their interpretation window ``T`` and a
    per-server arrival-rate estimate ``λ``, Basic LI computes the dispatch
    probabilities that make every server's (initial + newly assigned) job
    count equal after ``R = λ·n·T`` expected arrivals — the water-filling
    solution of Eqs. 2–4 — and samples each request from that vector.

    The same equation serves all three staleness models (§4.2):

    * periodic (bulletin board) — one probability vector per phase,
      computed from the phase length; cached on the board version.
    * continuous — recomputed per request, with ``T`` the *mean* delay
      when only that is known (Fig. 6) or the request's *actual* delay
      when available (Fig. 7); the vector is then the current estimate of
      the instantaneous dispatch rates.
    * update-on-access — recomputed per request from the client snapshot's
      actual age.

    Fresh information (``T → 0``) collapses the vector onto the least
    loaded server (maximally aggressive); stale information (``T → ∞``)
    spreads it uniformly (maximally conservative) — the core LI behavior.

    Parameters
    ----------
    timestamp_aware:
        Robustness extension for lossy update channels.  The paper's
        algorithm interprets a periodic board over the nominal phase
        length ``T``; if refresh messages can be *lost*, the board may
        actually be older than ``T`` and the nominal window dangerously
        underestimates the staleness (the same failure mode as
        underestimating λ, §5.6).  With ``timestamp_aware=True`` the
        policy widens the window to ``max(T, actual board age)`` using
        the board's timestamp.  In a lossless system the two settings
        behave identically (the age never exceeds ``T``), so the default
        ``False`` stays paper-faithful.
    """

    name = "basic-li"

    def __init__(self, timestamp_aware: bool = False) -> None:
        super().__init__()
        self.timestamp_aware = bool(timestamp_aware)
        if timestamp_aware:
            self.name = "basic-li(ts)"
        self._cached_version: int | None = None
        self._cached_cumulative: np.ndarray | None = None

    def _on_bind(self) -> None:
        # A policy object may be reused across runs; version counters
        # restart per run, so the cache must not leak between them.
        self._cached_version = None
        self._cached_cumulative = None

    def select(self, view: LoadView) -> int:
        window = view.effective_window
        overdue = self.timestamp_aware and view.elapsed > window
        if overdue:
            # The board is older than a phase (lost refreshes): widen the
            # interpretation window to the true age.  The vector now
            # changes with every request, so skip the per-phase cache.
            window = view.elapsed
        elif view.phase_based and view.version == self._cached_version:
            assert self._cached_cumulative is not None
            return self._sample_cumulative(self._cached_cumulative)

        expected_arrivals = (
            self.rate_estimator.per_server_rate() * self.num_servers * window
        )
        probabilities = waterfill_probabilities(view.loads, expected_arrivals)
        cumulative = np.cumsum(probabilities)
        if view.phase_based and not overdue:
            self._cached_version = view.version
            self._cached_cumulative = cumulative
        return self._sample_cumulative(cumulative)

    def _sample_cumulative(self, cumulative: np.ndarray) -> int:
        u = self._random() * cumulative[-1]
        return int(np.searchsorted(cumulative, u, side="right"))

    def phase_batchable(self, num_servers: int) -> bool:
        return True

    def select_batch(
        self, view: LoadView, arrival_times: np.ndarray
    ) -> np.ndarray:
        """Replay one phase of :meth:`select` calls with batched draws.

        The scalar path draws exactly one uniform per arrival, whatever
        the board's age, so all uniforms are pre-drawn in one batch; the
        inverse-transform lookup then uses the phase's cached cumulative
        vector, except for arrivals whose board is *overdue* under
        ``timestamp_aware`` interpretation (lost refreshes can age a lossy
        board past its nominal window), which recompute the water filling
        with their own widened window exactly as the scalar path does.
        """
        window = view.effective_window
        uniforms = self._random(arrival_times.size)
        expected_arrivals = (
            self.rate_estimator.per_server_rate() * self.num_servers * window
        )
        cumulative = np.cumsum(
            waterfill_probabilities(view.loads, expected_arrivals)
        )
        overdue = None
        if self.timestamp_aware:
            elapsed = arrival_times - view.info_time
            overdue = elapsed > window
        if overdue is None or not overdue.any():
            if view.phase_based:
                self._cached_version = view.version
                self._cached_cumulative = cumulative
            return np.searchsorted(
                cumulative, uniforms * cumulative[-1], side="right"
            )
        selections = np.empty(arrival_times.size, dtype=np.int64)
        fresh = ~overdue
        selections[fresh] = np.searchsorted(
            cumulative, uniforms[fresh] * cumulative[-1], side="right"
        )
        per_server = self.rate_estimator.per_server_rate() * self.num_servers
        for i in np.flatnonzero(overdue):
            widened = np.cumsum(
                waterfill_probabilities(view.loads, per_server * elapsed[i])
            )
            selections[i] = np.searchsorted(
                widened, uniforms[i] * widened[-1], side="right"
            )
        if view.phase_based and fresh.any():
            self._cached_version = view.version
            self._cached_cumulative = cumulative
        return selections
