"""The ad-hoc age-decay heuristic the paper positions LI against.

§2 of the paper notes that several systems (e.g. the Smart Clients
prototype, and process-migration facilities using exponentially decaying
load averages) "weigh recent information more heavily than old
information", but calls those algorithms "somewhat ad hoc": it is unclear
when to use them or how to set their constants.  To let that comparison
be made quantitatively, this module implements a faithful representative
of the family:

* each reported load is blended toward the cluster mean with weight
  ``exp(-age / tau)`` — fresh reports count fully, old reports fade to
  the uninformative prior;
* the request is then routed randomly with probability inversely
  proportional to ``1 + blended load`` — load-sensitive but not greedy.

Like LI it interpolates between aggressive and uniform as information
ages; unlike LI, the interpolation rate is a hand-tuned constant ``tau``
with no connection to the arrival rate, which is exactly the weakness the
paper's systematic framework removes (see the ``ext-decay`` ablation).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.policy import Policy
from repro.core.views import LoadView

__all__ = ["DecayedLoadPolicy"]


class DecayedLoadPolicy(Policy):
    """Inverse-load routing on exponentially age-decayed load reports.

    Parameters
    ----------
    tau:
        Decay time constant, in units of mean service time.  Information
        older than a few ``tau`` is effectively ignored.
    """

    def __init__(self, tau: float) -> None:
        super().__init__()
        if tau <= 0:
            raise ValueError(f"tau must be positive, got {tau}")
        self.tau = float(tau)
        self.name = f"decay(tau={tau:g})"

    def select(self, view: LoadView) -> int:
        # Use the true age when it is known, the advertised mean otherwise
        # (the ad-hoc systems use whatever age signal they have).
        age = view.elapsed if view.known_age else view.horizon
        weight = math.exp(-age / self.tau)
        loads = view.loads
        blended = weight * loads + (1.0 - weight) * float(loads.mean())
        scores = 1.0 / (1.0 + blended)
        probabilities = scores / scores.sum()
        return self._sample_from(probabilities)

    def __repr__(self) -> str:
        return f"DecayedLoadPolicy(tau={self.tau!r})"
