"""The threshold policy: choose randomly among lightly-loaded servers."""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.core.views import LoadView

__all__ = ["ThresholdPolicy"]


class ThresholdPolicy(Policy):
    """Classify servers as lightly/heavily loaded and pick among the light.

    The second classic stale-information coping strategy the paper
    examines (Fig. 5): a server whose reported load is at or below
    ``threshold`` is "lightly loaded"; the request goes to a uniformly
    random lightly-loaded server.  Optionally the candidate pool is first
    restricted to a random ``k``-subset (the paper sweeps thresholds for
    k = 2 and k = 10).

    When no candidate is lightly loaded the policy falls back to a
    uniformly random candidate (``fallback="random"``, the default — the
    whole point of a threshold scheme is to avoid herding on apparent
    minima) or to the least-loaded candidate (``fallback="least-loaded"``).

    ``threshold = 0`` herds onto apparently-idle machines (aggressive);
    ``threshold = ∞`` degenerates to uniform random — so the threshold
    knob spans the same aggressiveness spectrum as ``k`` does for
    k-subset, with the same weakness: the best setting depends on the
    information's age, which the policy never consults.
    """

    def __init__(
        self,
        threshold: float,
        k: int | None = None,
        fallback: str = "random",
    ) -> None:
        super().__init__()
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        if k is not None and k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if fallback not in ("random", "least-loaded"):
            raise ValueError(
                f"fallback must be 'random' or 'least-loaded', got {fallback!r}"
            )
        self.threshold = float(threshold)
        self.k = None if k is None else int(k)
        self.fallback = fallback
        subset = "" if k is None else f", k={k}"
        self.name = f"threshold={threshold:g}{subset}"

    def _on_bind(self) -> None:
        if self.k is not None and self.k > self.num_servers:
            raise ValueError(
                f"k={self.k} exceeds the number of servers {self.num_servers}"
            )
        self._everyone = np.arange(self.num_servers)

    def select(self, view: LoadView) -> int:
        if self.k is None or self.k == self.num_servers:
            candidates = self._everyone
        else:
            candidates = self.rng.choice(self.num_servers, size=self.k, replace=False)
        lightly_loaded = candidates[view.loads[candidates] <= self.threshold]
        if lightly_loaded.size > 0:
            return int(lightly_loaded[self._integers(lightly_loaded.size)])
        if self.fallback == "least-loaded":
            return self._random_minimum(view.loads, candidates)
        return int(candidates[self._integers(candidates.size)])

    def phase_batchable(self, num_servers: int) -> bool:
        # A k-subset restriction below n needs a Generator.choice draw per
        # request, which has no bitwise batch equivalent.
        return self.k is None or self.k == num_servers

    def select_batch(
        self, view: LoadView, arrival_times: np.ndarray
    ) -> np.ndarray:
        """Replay one phase of :meth:`select` calls with batched draws.

        With the candidate pool fixed at all ``n`` servers, the light/heavy
        classification is frozen for the whole phase, so every arrival in
        the batch takes the same branch of :meth:`select` and draws one
        integer with the same fixed bound (or none, when the fallback's
        least-loaded set is a singleton).
        """
        size = arrival_times.size
        candidates = self._everyone
        lightly_loaded = candidates[view.loads[candidates] <= self.threshold]
        if lightly_loaded.size > 0:
            return lightly_loaded[self._integers(lightly_loaded.size, size=size)]
        if self.fallback == "least-loaded":
            candidate_loads = view.loads[candidates]
            tied = candidates[candidate_loads == candidate_loads.min()]
            if tied.size == 1:
                return np.full(size, int(tied[0]), dtype=np.int64)
            return tied[self._integers(tied.size, size=size)]
        return candidates[self._integers(candidates.size, size=size)]

    def __repr__(self) -> str:
        return (
            f"ThresholdPolicy(threshold={self.threshold!r}, k={self.k!r}, "
            f"fallback={self.fallback!r})"
        )
