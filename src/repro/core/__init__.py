"""The paper's primary contribution: load-interpretation selection policies.

The *Load Interpretation* (LI) family interprets a stale load report in the
context of its age ``T`` and the job arrival rate ``λ``, computing a
probability vector over servers (a water-filling computation) rather than
greedily chasing the apparent minimum:

* :class:`BasicLIPolicy` — equalize expected queue lengths by the *end* of
  the information epoch (Eqs. 2–4 of the paper).
* :class:`AggressiveLIPolicy` — subdivide the epoch, equalize as early as
  possible, then distribute uniformly (Eq. 5; equivalent to
  Mitzenmacher's "Time-Based" algorithm).
* :class:`HybridLIPolicy` — the two-subinterval hybrid sketched in §4.1.1.
* :class:`SubsetLIPolicy` — Basic LI restricted to a random k-server
  subset per request (§5.7), decoupling *how much* information is used
  from *how it is interpreted*.

Baselines from the literature, reimplemented for comparison:

* :class:`RandomPolicy` — oblivious uniform random (k = 1).
* :class:`KSubsetPolicy` — least-loaded of a random k-subset
  (Mitzenmacher); ``k = n`` is the classic greedy least-loaded policy.
* :class:`ThresholdPolicy` — choose uniformly among servers reporting
  load at or below a threshold.

Rate estimation (the λ the LI algorithms must be told or estimate) lives
in :mod:`repro.core.rate_estimators`.
"""

from repro.core.decay import DecayedLoadPolicy
from repro.core.ksubset import KSubsetPolicy
from repro.core.locality import LocalityAwareLIPolicy, NearestServerPolicy
from repro.core.li_aggressive import AggressiveLIPolicy
from repro.core.li_basic import BasicLIPolicy
from repro.core.li_hybrid import HybridLIPolicy
from repro.core.li_subset import SubsetLIPolicy
from repro.core.li_weighted import WeightedLIPolicy
from repro.core.policy import Policy
from repro.core.random_policy import RandomPolicy
from repro.core.round_robin import RoundRobinPolicy
from repro.core.rate_estimators import (
    EWMARate,
    ExactRate,
    FixedRate,
    RateEstimator,
    ScaledRate,
)
from repro.core.threshold import ThresholdPolicy
from repro.core.views import LoadView, LoadViewSource
from repro.core.weights import (
    equalization_boundaries,
    waterfill_level,
    waterfill_probabilities,
    weighted_waterfill_probabilities,
)

__all__ = [
    "LoadView",
    "LoadViewSource",
    "Policy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "KSubsetPolicy",
    "ThresholdPolicy",
    "BasicLIPolicy",
    "AggressiveLIPolicy",
    "HybridLIPolicy",
    "SubsetLIPolicy",
    "WeightedLIPolicy",
    "DecayedLoadPolicy",
    "NearestServerPolicy",
    "LocalityAwareLIPolicy",
    "RateEstimator",
    "ExactRate",
    "FixedRate",
    "ScaledRate",
    "EWMARate",
    "waterfill_probabilities",
    "waterfill_level",
    "weighted_waterfill_probabilities",
    "equalization_boundaries",
]
