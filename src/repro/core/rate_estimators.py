"""Arrival-rate estimation for load-interpretation policies.

LI algorithms must be told — or estimate — the per-server arrival rate λ
(expressed, like everything here, as a fraction of a server's maximum
throughput).  §5.6 of the paper studies what happens when this estimate is
wrong and recommends a *conservative* strategy: when in doubt, assume the
arrival rate equals the system's maximum achievable throughput (λ = 1.0),
because overestimating λ costs little while underestimating it recreates
the herd effect.

* :class:`ExactRate` — the oracle the paper's main experiments assume.
* :class:`ScaledRate` — the misestimation study (Fig. 12): the true rate
  multiplied by an error factor.
* :class:`FixedRate` — a hard-coded estimate; ``FixedRate(1.0)`` is the
  conservative max-throughput strategy (Fig. 13).
* :class:`EWMARate` — a practical online estimator from observed
  inter-arrival gaps (our extension; the paper assumes servers report λ).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["RateEstimator", "ExactRate", "FixedRate", "ScaledRate", "EWMARate"]


class RateEstimator(ABC):
    """Supplies the per-server arrival-rate estimate λ used by LI policies."""

    def bind(self, num_servers: int, true_rate: float) -> None:
        """Receive the cluster size and the configured true per-server rate.

        Called once by the simulation driver before any arrivals.  The true
        rate is available so that oracle and scaled estimators can use it;
        honest online estimators ignore it.
        """
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        if true_rate <= 0:
            raise ValueError(f"true_rate must be positive, got {true_rate}")
        self._num_servers = num_servers
        self._true_rate = float(true_rate)

    def observe_arrival(self, now: float) -> None:
        """Notification of one system arrival (for online estimators)."""

    @abstractmethod
    def per_server_rate(self) -> float:
        """Current estimate of the per-server arrival rate λ."""


class ExactRate(RateEstimator):
    """The oracle: returns the configured true λ."""

    def per_server_rate(self) -> float:
        return self._true_rate

    def __repr__(self) -> str:
        return "ExactRate()"


class FixedRate(RateEstimator):
    """A hard-coded λ estimate, independent of the truth.

    ``FixedRate(1.0)`` is the paper's recommended conservative strategy:
    assume arrivals at the maximum sustainable throughput.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._fixed_rate = float(rate)

    def per_server_rate(self) -> float:
        return self._fixed_rate

    def __repr__(self) -> str:
        return f"FixedRate({self._fixed_rate!r})"


class ScaledRate(RateEstimator):
    """The true λ multiplied by an error factor (the Fig. 12 study).

    Factors below 1 model underestimation (dangerous: LI becomes too
    aggressive); factors above 1 model overestimation (benign: LI becomes
    conservative).
    """

    def __init__(self, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.factor = float(factor)

    def per_server_rate(self) -> float:
        return self._true_rate * self.factor

    def __repr__(self) -> str:
        return f"ScaledRate(factor={self.factor!r})"


class EWMARate(RateEstimator):
    """Online λ estimation from an EWMA of observed inter-arrival gaps.

    The estimate starts at a configurable conservative prior (default the
    maximum throughput, per the paper's §5.6 recommendation) and converges
    to the true rate as arrivals are observed.

    Parameters
    ----------
    smoothing:
        EWMA weight on each new inter-arrival observation, in (0, 1].
    initial_rate:
        Per-server rate assumed before any arrivals are seen.
    """

    def __init__(self, smoothing: float = 0.01, initial_rate: float = 1.0) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if initial_rate <= 0:
            raise ValueError(f"initial_rate must be positive, got {initial_rate}")
        self.smoothing = float(smoothing)
        self.initial_rate = float(initial_rate)
        self._last_arrival: float | None = None
        self._mean_gap: float | None = None

    def bind(self, num_servers: int, true_rate: float) -> None:
        super().bind(num_servers, true_rate)
        # Observations belong to one run; reset if the estimator is reused.
        self._last_arrival = None
        self._mean_gap = None

    def observe_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            if gap >= 0:
                if self._mean_gap is None:
                    self._mean_gap = gap
                else:
                    self._mean_gap += self.smoothing * (gap - self._mean_gap)
        self._last_arrival = now

    def per_server_rate(self) -> float:
        if self._mean_gap is None or self._mean_gap <= 0.0:
            return self.initial_rate
        # mean_gap estimates the *aggregate* inter-arrival time, so the
        # aggregate rate is 1/mean_gap and the per-server rate divides by n.
        return 1.0 / (self._mean_gap * self._num_servers)

    def __repr__(self) -> str:
        return (
            f"EWMARate(smoothing={self.smoothing!r}, "
            f"initial_rate={self.initial_rate!r})"
        )
