"""Arrival-rate estimation for load-interpretation policies.

LI algorithms must be told — or estimate — the per-server arrival rate λ
(expressed, like everything here, as a fraction of a server's maximum
throughput).  §5.6 of the paper studies what happens when this estimate is
wrong and recommends a *conservative* strategy: when in doubt, assume the
arrival rate equals the system's maximum achievable throughput (λ = 1.0),
because overestimating λ costs little while underestimating it recreates
the herd effect.

* :class:`ExactRate` — the oracle the paper's main experiments assume.
* :class:`ScaledRate` — the misestimation study (Fig. 12): the true rate
  multiplied by an error factor.
* :class:`FixedRate` — a hard-coded estimate; ``FixedRate(1.0)`` is the
  conservative max-throughput strategy (Fig. 13).
* :class:`EWMARate` — a practical online estimator from observed
  inter-arrival gaps (our extension; the paper assumes servers report λ).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

__all__ = ["RateEstimator", "ExactRate", "FixedRate", "ScaledRate", "EWMARate"]


class RateEstimator(ABC):
    """Supplies the per-server arrival-rate estimate λ used by LI policies."""

    def bind(self, num_servers: int, true_rate: float) -> None:
        """Receive the cluster size and the configured true per-server rate.

        Called once by the simulation driver before any arrivals.  The true
        rate is available so that oracle and scaled estimators can use it;
        honest online estimators ignore it.
        """
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        if true_rate <= 0:
            raise ValueError(f"true_rate must be positive, got {true_rate}")
        self._num_servers = num_servers
        self._true_rate = float(true_rate)

    def observe_arrival(self, now: float) -> None:
        """Notification of one system arrival (for online estimators)."""

    @abstractmethod
    def per_server_rate(self) -> float:
        """Current estimate of the per-server arrival rate λ."""


class ExactRate(RateEstimator):
    """The oracle: returns the configured true λ."""

    def per_server_rate(self) -> float:
        return self._true_rate

    def __repr__(self) -> str:
        return "ExactRate()"


class FixedRate(RateEstimator):
    """A hard-coded λ estimate, independent of the truth.

    ``FixedRate(1.0)`` is the paper's recommended conservative strategy:
    assume arrivals at the maximum sustainable throughput.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._fixed_rate = float(rate)

    def per_server_rate(self) -> float:
        return self._fixed_rate

    def __repr__(self) -> str:
        return f"FixedRate({self._fixed_rate!r})"


class ScaledRate(RateEstimator):
    """The true λ multiplied by an error factor (the Fig. 12 study).

    Factors below 1 model underestimation (dangerous: LI becomes too
    aggressive); factors above 1 model overestimation (benign: LI becomes
    conservative).
    """

    def __init__(self, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        self.factor = float(factor)

    def per_server_rate(self) -> float:
        return self._true_rate * self.factor

    def __repr__(self) -> str:
        return f"ScaledRate(factor={self.factor!r})"


class EWMARate(RateEstimator):
    """Online λ estimation from an EWMA of observed inter-arrival gaps.

    The estimate starts at a configurable conservative prior (default the
    maximum throughput, per the paper's §5.6 recommendation) and converges
    to the true rate as arrivals are observed.

    Two failure modes of a naive gap-EWMA are handled explicitly:

    * **Droughts.**  After traffic stops, a per-sample EWMA only moves when
      the *next* arrival lands, and with a small ``smoothing`` a single
      huge gap barely dents the mean — the estimate would stay frozen at
      the pre-drought rate.  A gap larger than ``drought_factor`` times the
      current mean (probability ``e^-drought_factor`` under stationary
      Poisson traffic, i.e. effectively never) is instead absorbed with
      weight ``drought_smoothing``, so the estimate decays promptly toward
      the observed (low) rate instead of staying stale forever.
    * **Zero gaps.**  Simultaneous arrivals can drive the mean gap to 0;
      dividing would blow up, and the old behavior of falling back to the
      prior froze the estimate at ``initial_rate`` permanently.  The gap is
      now floored at a tiny positive value for the division, and the next
      normal gap trips the drought branch and heals the estimate.

    ``per_server_rate`` is additionally floored at ``min_rate`` so LI's
    expected-arrivals product can never collapse to zero.

    Parameters
    ----------
    smoothing:
        EWMA weight on each new inter-arrival observation, in (0, 1].
    initial_rate:
        Per-server rate assumed before any arrivals are seen.
    min_rate:
        Floor on the returned per-server rate estimate.
    drought_factor:
        Gaps beyond this multiple of the current mean are treated as
        droughts (catch-down instead of the standard EWMA step).
    drought_smoothing:
        Weight applied to drought gaps, in (0, 1].
    """

    _GAP_FLOOR = 1e-12

    def __init__(
        self,
        smoothing: float = 0.01,
        initial_rate: float = 1.0,
        min_rate: float = 1e-4,
        drought_factor: float = 20.0,
        drought_smoothing: float = 0.5,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        if initial_rate <= 0:
            raise ValueError(f"initial_rate must be positive, got {initial_rate}")
        if min_rate <= 0:
            raise ValueError(f"min_rate must be positive, got {min_rate}")
        if drought_factor <= 1.0:
            raise ValueError(f"drought_factor must be > 1, got {drought_factor}")
        if not 0.0 < drought_smoothing <= 1.0:
            raise ValueError(
                f"drought_smoothing must be in (0, 1], got {drought_smoothing}"
            )
        self.smoothing = float(smoothing)
        self.initial_rate = float(initial_rate)
        self.min_rate = float(min_rate)
        self.drought_factor = float(drought_factor)
        self.drought_smoothing = float(drought_smoothing)
        self._last_arrival: float | None = None
        self._mean_gap: float | None = None

    def bind(self, num_servers: int, true_rate: float) -> None:
        super().bind(num_servers, true_rate)
        # Observations belong to one run; reset if the estimator is reused.
        self._last_arrival = None
        self._mean_gap = None

    def observe_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            if gap >= 0:
                if self._mean_gap is None:
                    self._mean_gap = gap
                elif gap > self.drought_factor * self._mean_gap:
                    self._mean_gap += self.drought_smoothing * (
                        gap - self._mean_gap
                    )
                else:
                    self._mean_gap += self.smoothing * (gap - self._mean_gap)
        self._last_arrival = now

    def per_server_rate(self) -> float:
        if self._mean_gap is None:
            return self.initial_rate
        # mean_gap estimates the *aggregate* inter-arrival time, so the
        # aggregate rate is 1/mean_gap and the per-server rate divides by n.
        gap = max(self._mean_gap, self._GAP_FLOOR)
        return max(1.0 / (gap * self._num_servers), self.min_rate)

    def __repr__(self) -> str:
        return (
            f"EWMARate(smoothing={self.smoothing!r}, "
            f"initial_rate={self.initial_rate!r})"
        )
