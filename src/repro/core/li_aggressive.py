"""Aggressive Load Interpretation (Eq. 5 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.core.weights import equalization_boundaries
from repro.core.views import LoadView

__all__ = ["AggressiveLIPolicy"]


class AggressiveLIPolicy(Policy):
    """Equalize the cluster as *early* in the epoch as possible.

    Where Basic LI spreads the rebalancing over the whole phase, Aggressive
    LI subdivides it: during subinterval ``j`` all arrivals go uniformly to
    the ``j`` least-loaded servers, raising their level to that of server
    ``j+1``; once every server is level, arrivals are spread uniformly over
    all ``n`` for the rest of the phase.  (This is the algorithm
    Mitzenmacher independently developed as "Time-Based".)

    Under the periodic model the subinterval is found from the elapsed
    phase time.  Under the continuous and update-on-access models every
    request is effectively at the *end* of a window of length ``T``
    (§4.2), so the policy uses the subinterval in force at elapsed time
    ``T`` — which makes it *less* aggressive than Basic LI for large
    ``T``, as the paper observes.

    Note the paper's convention: at elapsed time 0 the first subinterval
    (all mass on the least-loaded server) is in force, so as information
    gets fresher the policy converges to greedy least-loaded, like Basic
    LI but faster.
    """

    name = "aggressive-li"

    def __init__(self) -> None:
        super().__init__()
        self._cached_version: int | None = None
        self._cached_order: np.ndarray | None = None
        self._cached_boundaries: np.ndarray | None = None

    def _on_bind(self) -> None:
        # Reset caches so a reused policy object cannot carry a stale
        # schedule across runs (version counters restart per run).
        self._cached_version = None
        self._cached_order = None
        self._cached_boundaries = None

    def select(self, view: LoadView) -> int:
        if not (view.phase_based and view.version == self._cached_version):
            self._rebuild_schedule(view)
        assert self._cached_order is not None
        assert self._cached_boundaries is not None

        if view.phase_based:
            elapsed = view.elapsed
        else:
            # Sliding-age models: always at the end of a T-length window.
            elapsed = view.effective_window
        eligible = (
            int(
                np.searchsorted(self._cached_boundaries, elapsed, side="right")
            )
            + 1
        )
        if eligible > self.num_servers:
            eligible = self.num_servers
        choice = int(self._integers(eligible))
        return int(self._cached_order[choice])

    def phase_batchable(self, num_servers: int) -> bool:
        return True

    def select_batch(
        self, view: LoadView, arrival_times: np.ndarray
    ) -> np.ndarray:
        """Replay one phase of :meth:`select` calls with batched draws.

        Within a phase the eligible-server count is non-decreasing in the
        elapsed time, so the scalar draw sequence is a run of
        ``integers(b)`` draws per distinct bound ``b``; drawing each run
        as one batched ``integers(b, size=run)`` call is bitwise-identical
        to the scalar sequence.
        """
        if not (view.phase_based and view.version == self._cached_version):
            self._rebuild_schedule(view)
        assert self._cached_order is not None
        assert self._cached_boundaries is not None

        elapsed = arrival_times - view.info_time
        eligible = (
            np.searchsorted(self._cached_boundaries, elapsed, side="right") + 1
        )
        np.minimum(eligible, self.num_servers, out=eligible)
        choices = np.empty(arrival_times.size, dtype=np.int64)
        run_starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(eligible)) + 1, [eligible.size])
        )
        for start, end in zip(run_starts[:-1], run_starts[1:]):
            choices[start:end] = self._integers(
                int(eligible[start]), size=end - start
            )
        return self._cached_order[choices]

    def _rebuild_schedule(self, view: LoadView) -> None:
        order = np.argsort(view.loads, kind="stable")
        sorted_loads = view.loads[order]
        total_rate = self.rate_estimator.per_server_rate() * self.num_servers
        boundaries = equalization_boundaries(sorted_loads, total_rate)
        self._cached_order = order
        self._cached_boundaries = boundaries
        self._cached_version = view.version if view.phase_based else None
