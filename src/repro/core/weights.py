"""The water-filling mathematics at the heart of load interpretation.

Basic LI (Eqs. 2–4 of the paper) asks: given stale queue lengths ``q_i``
and ``R`` expected arrivals over the interpretation window, what dispatch
probabilities equalize the queues by the end of the window?  The answer is
classic water filling — pour ``R`` jobs into the valleys of the load
profile up to a common level ``L``::

    p_i = max(L - q_i, 0) / R,   where  sum_i max(L - q_i, 0) = R

When ``R`` is too small to equalize everything, only the ``c`` least-loaded
servers receive jobs (the paper's Eq. 3 chooses ``c``); when ``R`` is
large, every server receives jobs and the distribution approaches uniform —
exactly the fresh-aggressive / stale-conservative behavior LI is designed
to produce.

Aggressive LI (Eq. 5) instead equalizes as *early* as possible: the window
is split into subintervals, the ``j``-th of which sends jobs uniformly to
the ``j`` least-loaded servers until their level reaches the ``(j+1)``-th;
:func:`equalization_boundaries` computes the subinterval boundaries.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "waterfill_probabilities",
    "waterfill_level",
    "weighted_waterfill_probabilities",
    "equalization_boundaries",
]

# The 1..n ladder used to turn load prefixes into candidate water levels.
# Cached per cluster size: the vector is immutable in every use below and
# rebuilding it dominated the profile of small-n water filling.
_counts_cache: dict[int, np.ndarray] = {}


def _counts(n: int) -> np.ndarray:
    counts = _counts_cache.get(n)
    if counts is None:
        counts = np.arange(1, n + 1, dtype=np.float64)
        _counts_cache[n] = counts
    return counts


def _check_finite_loads(loads: np.ndarray) -> None:
    if not np.isfinite(loads).all():
        raise ValueError(f"loads must be finite, got {loads!r}")


def waterfill_level(loads: np.ndarray, expected_arrivals: float) -> float:
    """The common water level ``L`` reached after ``expected_arrivals``.

    ``max(L, q_i)`` is the expected queue length of server ``i`` at the
    end of the interpretation window under LI dispatch — the quantity a
    locality-aware policy adds network distance to.  For
    ``expected_arrivals = 0`` the level is the current minimum load.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("need at least one server")
    _check_finite_loads(loads)
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    if not math.isfinite(expected_arrivals) or expected_arrivals < 0:
        raise ValueError(
            f"expected_arrivals must be finite and non-negative, "
            f"got {expected_arrivals}"
        )
    if expected_arrivals == 0.0:
        return float(loads.min())
    sorted_loads = np.sort(loads)
    prefix = np.cumsum(sorted_loads)
    levels = (prefix + expected_arrivals) / _counts(loads.size)
    feasible = levels >= sorted_loads
    c = int(np.nonzero(feasible)[0].max()) + 1
    return float(levels[c - 1])


def waterfill_probabilities(
    loads: np.ndarray, expected_arrivals: float
) -> np.ndarray:
    """Dispatch probabilities that equalize ``loads`` after ``expected_arrivals``.

    Implements Eqs. 2–4 of the paper.  ``expected_arrivals`` is
    ``R = λ · n · T`` — the number of jobs expected during the
    interpretation window.

    Parameters
    ----------
    loads:
        Reported queue length per server (non-negative).
    expected_arrivals:
        ``R >= 0``.  As ``R → 0`` the information is effectively fresh and
        all probability mass collapses onto the least-loaded server(s); as
        ``R → ∞`` the distribution tends to uniform.

    Returns
    -------
    numpy.ndarray
        A probability vector (non-negative, sums to 1).
    """
    loads = np.asarray(loads, dtype=np.float64)
    n = loads.size
    if n == 0:
        raise ValueError("need at least one server")
    _check_finite_loads(loads)
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    if not math.isfinite(expected_arrivals) or expected_arrivals < 0:
        raise ValueError(
            f"expected_arrivals must be finite and non-negative, "
            f"got {expected_arrivals}"
        )

    if expected_arrivals == 0.0:
        # Fresh information: send to the (tied) minimum-load servers.
        minimum = loads.min()
        probabilities = (loads == minimum).astype(np.float64)
        return probabilities / probabilities.sum()

    sorted_loads = np.sort(loads)
    prefix = np.cumsum(sorted_loads)
    # levels[c-1] is the water level if exactly the c least-loaded servers
    # absorb all R arrivals.
    levels = (prefix + expected_arrivals) / _counts(n)
    # The correct c is the largest for which the level stays at or above
    # the c-th smallest load (otherwise server c would be "overfilled"
    # past its own starting level, a contradiction).
    feasible = levels >= sorted_loads
    c = int(np.nonzero(feasible)[0].max()) + 1  # c=1 is always feasible
    level = levels[c - 1]

    deficits = np.maximum(level - loads, 0.0)
    total = deficits.sum()
    if total <= 0.0:
        # expected_arrivals was so small relative to the loads that the
        # water level collapsed onto the minimum in floating point; treat
        # the information as fresh and target the least-loaded servers.
        minimum = loads.min()
        probabilities = (loads == minimum).astype(np.float64)
        return probabilities / probabilities.sum()
    # total equals expected_arrivals up to floating-point error.
    return deficits / total


def weighted_waterfill_probabilities(
    loads: np.ndarray, rates: np.ndarray, expected_arrivals: float
) -> np.ndarray:
    """Capacity-aware water filling for heterogeneous servers.

    The paper's LI assumes equal-capacity servers and leaves the
    heterogeneous case as future work.  This extension equalizes expected
    *drain time* ``q_i / r_i`` (queue length over service rate) instead of
    raw queue length: after ``R`` expected arrivals, every recipient ends
    at a common virtual level ``L`` with

    .. math::

        p_i = \\max(L \\cdot r_i - q_i, 0) / R,
        \\qquad \\sum_i \\max(L \\cdot r_i - q_i, 0) = R

    With all rates equal to 1 this reduces exactly to
    :func:`waterfill_probabilities`.  As ``R → 0`` mass collapses onto the
    server with the shortest expected wait; as ``R → ∞`` the distribution
    tends to capacity-proportional (not uniform) — the correct conservative
    limit for a heterogeneous cluster.
    """
    loads = np.asarray(loads, dtype=np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    if loads.shape != rates.shape:
        raise ValueError(
            f"loads and rates must have the same shape, got "
            f"{loads.shape} vs {rates.shape}"
        )
    n = loads.size
    if n == 0:
        raise ValueError("need at least one server")
    _check_finite_loads(loads)
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    if not np.isfinite(rates).all() or np.any(rates <= 0):
        raise ValueError("rates must be positive and finite")
    if not math.isfinite(expected_arrivals) or expected_arrivals < 0:
        raise ValueError(
            f"expected_arrivals must be finite and non-negative, "
            f"got {expected_arrivals}"
        )

    virtual = loads / rates  # expected drain time per server
    if expected_arrivals == 0.0:
        minimum = virtual.min()
        probabilities = (virtual == minimum).astype(np.float64)
        return probabilities / probabilities.sum()

    order = np.argsort(virtual, kind="stable")
    sorted_virtual = virtual[order]
    load_prefix = np.cumsum(loads[order])
    rate_prefix = np.cumsum(rates[order])
    levels = (load_prefix + expected_arrivals) / rate_prefix
    feasible = levels >= sorted_virtual
    c = int(np.nonzero(feasible)[0].max()) + 1
    level = levels[c - 1]

    deficits = np.maximum(level * rates - loads, 0.0)
    total = deficits.sum()
    if total <= 0.0:
        minimum = virtual.min()
        probabilities = (virtual == minimum).astype(np.float64)
        return probabilities / probabilities.sum()
    return deficits / total


def equalization_boundaries(
    sorted_loads: np.ndarray, total_arrival_rate: float
) -> np.ndarray:
    """Subinterval boundaries for Aggressive LI (Eq. 5).

    Given loads sorted ascending and the aggregate arrival rate
    ``Λ = λ · n``, subinterval ``j`` (1-based) sends jobs uniformly to the
    ``j`` least-loaded servers and lasts ``j · (q_{j+1} - q_j) / Λ`` time
    units — the time for ``j`` servers to fill from level ``q_j`` to
    ``q_{j+1}``.

    Returns
    -------
    numpy.ndarray
        ``boundaries`` of length ``n - 1`` where ``boundaries[j-1]`` is the
        cumulative time at which subinterval ``j`` ends (so at elapsed time
        ``e`` the dispatcher spreads uniformly over the ``m`` least-loaded
        servers, ``m = searchsorted(boundaries, e, side='right') + 1``).
        After the final boundary all ``n`` servers are equalized and
        dispatch is uniform over all of them.
    """
    sorted_loads = np.asarray(sorted_loads, dtype=np.float64)
    if not math.isfinite(total_arrival_rate) or total_arrival_rate <= 0:
        raise ValueError(
            f"total_arrival_rate must be finite and positive, "
            f"got {total_arrival_rate}"
        )
    n = sorted_loads.size
    if n == 0:
        raise ValueError("need at least one server")
    _check_finite_loads(sorted_loads)
    if np.any(np.diff(sorted_loads) < 0):
        raise ValueError("sorted_loads must be non-decreasing")
    if n == 1:
        return np.empty(0)
    gaps = np.diff(sorted_loads)  # q_{j+1} - q_j for j = 1..n-1
    durations = np.arange(1, n, dtype=np.float64) * gaps / total_arrival_rate
    return np.cumsum(durations)
