"""Oblivious uniform-random selection (the k = 1 baseline)."""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.core.views import LoadView

__all__ = ["RandomPolicy"]


class RandomPolicy(Policy):
    """Send each request to a uniformly random server, ignoring all load
    information.

    This is the paper's "oblivious" baseline: each server behaves as an
    independent M/M/1 queue with utilization λ, so under exponential
    service the expected response time is ``1 / (1 - λ)`` regardless of
    staleness — the yardstick both for the gains of using information
    (fresh case) and for the pathologies of misusing it (stale case).
    """

    name = "random"

    def select(self, view: LoadView) -> int:
        return int(self._integers(self.num_servers))

    def phase_batchable(self, num_servers: int) -> bool:
        return True

    def select_batch(
        self, view: LoadView, arrival_times: np.ndarray
    ) -> np.ndarray:
        # A batched integers() draw is bitwise-identical to the same
        # number of scalar draws with the same fixed bound.
        return self._integers(self.num_servers, size=arrival_times.size)
