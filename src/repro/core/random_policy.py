"""Oblivious uniform-random selection (the k = 1 baseline)."""

from __future__ import annotations

from repro.core.policy import Policy
from repro.staleness.base import LoadView

__all__ = ["RandomPolicy"]


class RandomPolicy(Policy):
    """Send each request to a uniformly random server, ignoring all load
    information.

    This is the paper's "oblivious" baseline: each server behaves as an
    independent M/M/1 queue with utilization λ, so under exponential
    service the expected response time is ``1 / (1 - λ)`` regardless of
    staleness — the yardstick both for the gains of using information
    (fresh case) and for the pathologies of misusing it (stale case).
    """

    name = "random"

    def select(self, view: LoadView) -> int:
        return int(self.rng.integers(self.num_servers))
