"""The engine-agnostic load-information interface.

:class:`LoadView` is the *only* thing a selection policy sees per arrival:
the (possibly stale) load vector plus the metadata a load-interpretation
algorithm needs to reason about its age.  It deliberately lives in
:mod:`repro.core` — not in the simulator — so policies and λ estimators
can be driven by any execution substrate that produces views:

* the discrete-event / fast-path / vector simulators, through the
  staleness models in :mod:`repro.staleness`;
* the mean-field fluid engine, which evaluates policies on deterministic
  fractional boards;
* the **live** asyncio dispatcher (:mod:`repro.live`), whose bulletin
  board polls real TCP backends over localhost sockets and publishes
  genuinely stale snapshots.

:class:`LoadViewSource` is the minimal board protocol those substrates
share: anything with a ``view(client_id, now) -> LoadView`` method can
front an unmodified :class:`~repro.core.policy.Policy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["LoadView", "LoadViewSource"]


@dataclass(slots=True)
class LoadView:
    """What a dispatching policy sees at one arrival.

    Attributes
    ----------
    loads:
        Reported queue length of each server (stale).
    version:
        Increments whenever the underlying information changes.  Policies
        that precompute per-snapshot state (Basic LI under the periodic
        model computes one probability vector per phase) cache on this.
    info_time:
        Time at which ``loads`` was sampled from the servers (simulation
        time for the simulators; normalized wall time for the live
        dispatcher).
    now:
        Current time (the arrival instant) on the same clock.
    horizon:
        The interpretation window ``T`` in time units: for the periodic
        model the phase length; for the continuous and update-on-access
        models the *average* information age.  LI algorithms compute the
        expected number of arrivals over this window.
    elapsed:
        The information's actual age, ``now - info_time`` (>= 0).
    known_age:
        Whether the policy is allowed to use ``elapsed``.  Under the
        continuous model the paper distinguishes clients that know only
        the mean delay (Fig. 6, ``known_age=False``) from clients that
        know each request's actual delay (Fig. 7, ``known_age=True``).
    phase_based:
        True for bulletin-board semantics: information was published at
        ``info_time`` and will be refreshed at ``info_time + horizon``;
        Basic LI then equalizes over the whole phase and Aggressive LI
        schedules subintervals by ``elapsed``.  False for sliding-age
        semantics (continuous / update-on-access).
    ages:
        Optional per-server ages for models where servers report
        independently (:class:`~repro.staleness.individual.IndividualUpdate`);
        ``None`` when all entries share the same age.
    client_id:
        Identity of the requesting client — used by locality-aware
        policies whose scores depend on who is asking.
    """

    loads: np.ndarray
    version: int
    info_time: float
    now: float
    horizon: float
    elapsed: float
    known_age: bool
    phase_based: bool
    ages: np.ndarray | None = None
    client_id: int = 0

    @property
    def effective_window(self) -> float:
        """The window an LI policy should interpret the loads over.

        Phase-based models equalize over the full phase; sliding-age models
        use the actual age when it is known and the mean age otherwise.
        """
        if self.phase_based:
            return self.horizon
        if self.known_age:
            return self.elapsed
        return self.horizon


@runtime_checkable
class LoadViewSource(Protocol):
    """The board protocol every execution substrate implements.

    Satisfied structurally by the simulator-side
    :class:`~repro.staleness.base.StalenessModel` subclasses and by the
    live dispatcher's :class:`~repro.live.board.BulletinBoard` — the
    contract that lets one :class:`~repro.core.policy.Policy` object run
    unmodified against either.
    """

    def view(self, client_id: int, now: float) -> LoadView:
        """Return the load information visible to ``client_id`` at ``now``."""
        ...
