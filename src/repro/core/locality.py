"""Locality-aware server selection for wide-area systems.

The paper's introduction motivates stale-information load balancing with
WAN scenarios — "server load may also be combined with locality
information ... such as selecting an HTTP server or cache" — but its
evaluation stays distance-free.  This module supplies that combination:

* :class:`NearestServerPolicy` — the classic WAN baseline: always use
  the lowest-latency replica, ignoring load.
* :class:`LocalityAwareLIPolicy` — extend the water-filling
  interpretation to distance by treating each server's round trip as
  pre-existing virtual queue: water-fill over
  ``q_i + rtt_i / E[S]`` with the usual arrival budget ``R = λ·n·T``.
  Fresh reports (small ``R``) collapse onto ``argmin(q_i + rtt_i)`` —
  skip a nearby-but-swamped replica, otherwise stay local; stale reports
  (large ``R``) spread toward uniform, the stable no-information limit
  (a client that routed everything to its nearest replica could overload
  it).  In between, nearby replicas receive exactly as much extra
  traffic as their latency advantage justifies.

Latency is supplied as a ``(num_clients, num_servers)`` matrix in units
of mean service time.  The simulation driver adds the same round trip to
each job's measured response time (see
:class:`~repro.cluster.simulation.ClusterSimulation`'s
``client_latency``); queue dynamics themselves are unaffected — a
first-order model in which propagation delays requests and responses but
does not reorder queue entries.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.core.weights import waterfill_probabilities
from repro.core.views import LoadView

__all__ = ["NearestServerPolicy", "LocalityAwareLIPolicy"]


def _validate_latency(latency: np.ndarray) -> np.ndarray:
    latency = np.asarray(latency, dtype=np.float64)
    if latency.ndim != 2:
        raise ValueError(
            f"latency matrix must be 2-D (clients x servers), got shape "
            f"{latency.shape}"
        )
    if np.any(latency < 0):
        raise ValueError("latencies must be non-negative")
    return latency


class NearestServerPolicy(Policy):
    """Always route to the lowest-latency server (ties broken randomly)."""

    name = "nearest"

    def __init__(self, latency: np.ndarray) -> None:
        super().__init__()
        self.latency = _validate_latency(latency)

    def _on_bind(self) -> None:
        if self.latency.shape[1] != self.num_servers:
            raise ValueError(
                f"latency matrix covers {self.latency.shape[1]} servers, "
                f"cluster has {self.num_servers}"
            )

    def select(self, view: LoadView) -> int:
        row = self.latency[view.client_id % self.latency.shape[0]]
        return self._random_minimum(row, np.arange(self.num_servers))


class LocalityAwareLIPolicy(Policy):
    """Water-filling interpretation over distance-adjusted virtual loads.

    Each request water-fills ``q_i + rtt_i / E[S]`` (queue length plus the
    round trip expressed in job units) with the standard LI arrival budget
    ``R = λ·n·T`` and samples a server from the resulting probability
    vector.  Fresh information (``R → 0``) gives deterministic
    ``argmin(q_i + rtt_i)``; stale information (``R → ∞``) gives uniform
    dispatch — the stable no-information limit.

    Parameters
    ----------
    latency:
        ``(num_clients, num_servers)`` round-trip times in units of mean
        service time.
    mean_service_time:
        Converts round trips into queue-length units for the trade-off.
    """

    name = "locality-li"

    def __init__(self, latency: np.ndarray, mean_service_time: float = 1.0) -> None:
        super().__init__()
        if mean_service_time <= 0:
            raise ValueError(
                f"mean_service_time must be positive, got {mean_service_time}"
            )
        self.latency = _validate_latency(latency)
        self.mean_service_time = float(mean_service_time)

    def _on_bind(self) -> None:
        if self.latency.shape[1] != self.num_servers:
            raise ValueError(
                f"latency matrix covers {self.latency.shape[1]} servers, "
                f"cluster has {self.num_servers}"
            )

    def select(self, view: LoadView) -> int:
        window = view.effective_window
        expected_arrivals = (
            self.rate_estimator.per_server_rate() * self.num_servers * window
        )
        rtt = self.latency[view.client_id % self.latency.shape[0]]
        virtual_loads = view.loads + rtt / self.mean_service_time
        probabilities = waterfill_probabilities(virtual_loads, expected_arrivals)
        return self._sample_from(probabilities)
