"""Basic LI restricted to a random k-server subset per request (§5.7)."""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.core.weights import waterfill_probabilities
from repro.core.views import LoadView

__all__ = ["SubsetLIPolicy"]


class SubsetLIPolicy(Policy):
    """Water-filling interpretation over a random ``k``-subset of servers.

    The k-subset baselines restrict information to reduce network traffic;
    LI-k shows the two concerns are orthogonal: pick a fresh random subset
    of ``k`` servers per request, then apply Basic LI *within* the subset,
    with the expected-arrival budget scaled to the subset's share of
    traffic (``R = λ·k·T``, per the paper's modification of Eq. 4).

    ``k = n`` recovers Basic LI exactly.  Unlike the standard k-subset
    policy — which degrades as ``k`` grows when information is stale —
    LI-k improves monotonically with more information (Fig. 14).
    """

    def __init__(self, k: int) -> None:
        super().__init__()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.name = f"li-{k}"

    def _on_bind(self) -> None:
        if self.k > self.num_servers:
            raise ValueError(
                f"k={self.k} exceeds the number of servers {self.num_servers}"
            )
        self._everyone = np.arange(self.num_servers)

    def select(self, view: LoadView) -> int:
        if self.k == self.num_servers:
            subset = self._everyone
        else:
            subset = self.rng.choice(self.num_servers, size=self.k, replace=False)
        window = view.effective_window
        expected_arrivals = self.rate_estimator.per_server_rate() * self.k * window
        probabilities = waterfill_probabilities(view.loads[subset], expected_arrivals)
        cumulative = np.cumsum(probabilities)
        u = self._random() * cumulative[-1]
        return int(subset[np.searchsorted(cumulative, u, side="right")])

    def phase_batchable(self, num_servers: int) -> bool:
        # Below k = n every request draws a fresh random subset with
        # Generator.choice, which has no bitwise batch equivalent.
        return self.k == num_servers

    def select_batch(
        self, view: LoadView, arrival_times: np.ndarray
    ) -> np.ndarray:
        """Replay one phase of :meth:`select` calls with batched draws.

        At k = n the subset is the whole cluster, so the scalar path
        recomputes the same water-filling vector per request (the board is
        frozen) and draws exactly one uniform; computing the vector once
        and batching the uniforms is bitwise-identical.
        """
        window = view.effective_window
        expected_arrivals = self.rate_estimator.per_server_rate() * self.k * window
        probabilities = waterfill_probabilities(
            view.loads[self._everyone], expected_arrivals
        )
        cumulative = np.cumsum(probabilities)
        uniforms = self._random(arrival_times.size)
        return self._everyone[
            np.searchsorted(cumulative, uniforms * cumulative[-1], side="right")
        ]

    def __repr__(self) -> str:
        return f"SubsetLIPolicy(k={self.k!r})"
