"""Round-robin selection — the other oblivious baseline from the intro.

The paper's introduction notes that systems wary of stale information
often fall back to "round-robin or random selection algorithms that
entirely ignore load information".  Random is the baseline the
evaluation uses; round-robin is included here for completeness.  Under
Poisson arrivals it slightly beats random (each server sees an Erlang
arrival stream with lower variance than Poisson) and, like random, it is
flat in the information age.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.core.views import LoadView

__all__ = ["RoundRobinPolicy"]


class RoundRobinPolicy(Policy):
    """Cycle deterministically through the servers.

    The starting offset is randomized per run (from the policy's private
    stream) so replications are not phase-locked to each other.
    """

    name = "round-robin"

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def _on_bind(self) -> None:
        self._next = int(self.rng.integers(self.num_servers))

    def select(self, view: LoadView) -> int:
        choice = self._next
        self._next = (self._next + 1) % self.num_servers
        return choice

    def phase_batchable(self, num_servers: int) -> bool:
        return True

    def select_batch(
        self, view: LoadView, arrival_times: np.ndarray
    ) -> np.ndarray:
        # Deterministic cycle: no draws to replay, just advance the
        # counter by the batch size.
        selections = (
            self._next + np.arange(arrival_times.size, dtype=np.int64)
        ) % self.num_servers
        self._next = (self._next + arrival_times.size) % self.num_servers
        return selections
