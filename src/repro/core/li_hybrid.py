"""The hybrid LI variant sketched in §4.1.1 of the paper."""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.core.views import LoadView

__all__ = ["HybridLIPolicy"]


class HybridLIPolicy(Policy):
    """A two-subinterval compromise between Basic and Aggressive LI.

    The phase splits in two.  During subinterval one, jobs are distributed
    proportionally to each server's deficit below the *most loaded* server,
    bringing the whole cluster up to that level; during subinterval two,
    jobs are spread uniformly.  The paper reports (without plotting) that
    its performance falls between Basic LI and Aggressive LI under the
    periodic model; we implement it so that claim can be checked as an
    ablation.
    """

    name = "hybrid-li"

    def __init__(self) -> None:
        super().__init__()
        self._cached_version: int | None = None
        self._cached_cumulative: np.ndarray | None = None
        self._cached_equalize_span: float = 0.0

    def _on_bind(self) -> None:
        # Reset caches so a reused policy object cannot carry stale state
        # across runs (version counters restart per run).
        self._cached_version = None
        self._cached_cumulative = None
        self._cached_equalize_span = 0.0

    def select(self, view: LoadView) -> int:
        if not (view.phase_based and view.version == self._cached_version):
            self._rebuild(view)
        assert self._cached_cumulative is not None

        elapsed = view.elapsed if view.phase_based else view.effective_window
        if elapsed >= self._cached_equalize_span:
            return int(self._integers(self.num_servers))
        u = self._random() * self._cached_cumulative[-1]
        return int(np.searchsorted(self._cached_cumulative, u, side="right"))

    def phase_batchable(self, num_servers: int) -> bool:
        return True

    def select_batch(
        self, view: LoadView, arrival_times: np.ndarray
    ) -> np.ndarray:
        """Replay one phase of :meth:`select` calls with batched draws.

        Elapsed time is non-decreasing within a phase, so the scalar draw
        sequence is a run of ``random()`` draws (deficit subinterval)
        followed by a run of ``integers(n)`` draws (uniform subinterval);
        each run batches bitwise-identically.
        """
        if not (view.phase_based and view.version == self._cached_version):
            self._rebuild(view)
        assert self._cached_cumulative is not None

        elapsed = arrival_times - view.info_time
        deficit_count = int(
            np.searchsorted(elapsed, self._cached_equalize_span, side="left")
        )
        selections = np.empty(arrival_times.size, dtype=np.int64)
        if deficit_count > 0:
            uniforms = self._random(deficit_count)
            selections[:deficit_count] = np.searchsorted(
                self._cached_cumulative,
                uniforms * self._cached_cumulative[-1],
                side="right",
            )
        if deficit_count < arrival_times.size:
            selections[deficit_count:] = self._integers(
                self.num_servers, size=arrival_times.size - deficit_count
            )
        return selections

    def _rebuild(self, view: LoadView) -> None:
        loads = view.loads
        deficits = loads.max() - loads
        total_deficit = deficits.sum()
        total_rate = self.rate_estimator.per_server_rate() * self.num_servers
        if total_deficit <= 0.0:
            # Already balanced: subinterval one is empty.
            self._cached_equalize_span = 0.0
            self._cached_cumulative = np.linspace(
                1.0 / self.num_servers, 1.0, self.num_servers
            )
        else:
            self._cached_equalize_span = total_deficit / total_rate
            self._cached_cumulative = np.cumsum(deficits / total_deficit)
        self._cached_version = view.version if view.phase_based else None
