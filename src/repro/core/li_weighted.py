"""Capacity-aware LI for heterogeneous clusters (paper future work)."""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.core.weights import weighted_waterfill_probabilities
from repro.core.views import LoadView

__all__ = ["WeightedLIPolicy"]


class WeightedLIPolicy(Policy):
    """Basic LI generalized to servers of unequal capacity.

    The paper's conclusions flag heterogeneous servers as future work.
    This policy implements the natural generalization: instead of
    equalizing queue *lengths*, equalize expected *drain times*
    ``q_i / r_i`` via the weighted water-filling of
    :func:`~repro.core.weights.weighted_waterfill_probabilities`.  Per-server
    capacities are taken from the simulation at bind time; with a
    homogeneous cluster the policy is exactly Basic LI.

    Fresh information targets the server with the shortest expected wait;
    stale information degrades to *capacity-proportional* (not uniform)
    random dispatch — the safe limit for a heterogeneous cluster, where
    uniform random would overload the slow machines.
    """

    name = "weighted-li"

    def __init__(self) -> None:
        super().__init__()
        self._cached_version: int | None = None
        self._cached_cumulative: np.ndarray | None = None

    def _on_bind(self) -> None:
        self._cached_version = None
        self._cached_cumulative = None

    def select(self, view: LoadView) -> int:
        if view.phase_based and view.version == self._cached_version:
            assert self._cached_cumulative is not None
            return self._sample_cumulative(self._cached_cumulative)

        window = view.effective_window
        # per_server_rate() is the cluster average by convention, so the
        # aggregate arrival budget is unchanged from Basic LI.
        expected_arrivals = (
            self.rate_estimator.per_server_rate() * self.num_servers * window
        )
        probabilities = weighted_waterfill_probabilities(
            view.loads, self.server_rates, expected_arrivals
        )
        cumulative = np.cumsum(probabilities)
        if view.phase_based:
            self._cached_version = view.version
            self._cached_cumulative = cumulative
        return self._sample_cumulative(cumulative)

    def _sample_cumulative(self, cumulative: np.ndarray) -> int:
        u = self._random() * cumulative[-1]
        return int(np.searchsorted(cumulative, u, side="right"))

    def phase_batchable(self, num_servers: int) -> bool:
        return True

    def select_batch(
        self, view: LoadView, arrival_times: np.ndarray
    ) -> np.ndarray:
        """Replay one phase of :meth:`select` calls with batched draws.

        One weighted water-filling vector per phase, one uniform per
        arrival — exactly the scalar path's draws, pre-drawn in a batch.
        """
        window = view.effective_window
        expected_arrivals = (
            self.rate_estimator.per_server_rate() * self.num_servers * window
        )
        probabilities = weighted_waterfill_probabilities(
            view.loads, self.server_rates, expected_arrivals
        )
        cumulative = np.cumsum(probabilities)
        if view.phase_based:
            self._cached_version = view.version
            self._cached_cumulative = cumulative
        uniforms = self._random(arrival_times.size)
        return np.searchsorted(
            cumulative, uniforms * cumulative[-1], side="right"
        )
