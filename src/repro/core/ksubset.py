"""Mitzenmacher's k-subset policy: least loaded of k random servers."""

from __future__ import annotations

import numpy as np

from repro.core.policy import Policy
from repro.core.views import LoadView

__all__ = ["KSubsetPolicy"]


class KSubsetPolicy(Policy):
    """Send each request to the least loaded of ``k`` randomly chosen servers.

    ``k = 1`` degenerates to uniform random selection; ``k = n`` is the
    classic greedy send-to-least-loaded policy.  Mitzenmacher shows that
    with stale information, small ``k`` (especially ``k = 2``) avoids the
    herd effect that makes large ``k`` pathological — but, as the paper's
    Fig. 1 analysis shows, the resulting dispatch distribution depends only
    on server *rank*, never on the *magnitude* of the imbalance or the
    *age* of the information, which is exactly what LI improves on.

    Ties in reported load are broken uniformly at random.
    """

    def __init__(self, k: int) -> None:
        super().__init__()
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.name = f"k={k}-subset"

    def _on_bind(self) -> None:
        if self.k > self.num_servers:
            raise ValueError(
                f"k={self.k} exceeds the number of servers {self.num_servers}"
            )
        self._everyone = np.arange(self.num_servers)

    def select(self, view: LoadView) -> int:
        if self.k == 1:
            return int(self._integers(self.num_servers))
        if self.k == self.num_servers:
            candidates = self._everyone
        else:
            candidates = self.rng.choice(self.num_servers, size=self.k, replace=False)
        return self._random_minimum(view.loads, candidates)

    def phase_batchable(self, num_servers: int) -> bool:
        # Intermediate k draws a random subset per request with
        # Generator.choice, which has no bitwise batch equivalent.
        return self.k == 1 or self.k == num_servers

    def select_batch(
        self, view: LoadView, arrival_times: np.ndarray
    ) -> np.ndarray:
        """Replay one phase of :meth:`select` calls with batched draws.

        Only the degenerate ends of the k spectrum are batchable: k = 1
        draws one bounded integer per arrival, and k = n examines a tied
        least-loaded set that is fixed while the board is frozen (zero
        draws if the minimum is unique, one fixed-bound draw otherwise).
        """
        size = arrival_times.size
        if self.k == 1:
            return self._integers(self.num_servers, size=size)
        candidate_loads = view.loads[self._everyone]
        tied = self._everyone[candidate_loads == candidate_loads.min()]
        if tied.size == 1:
            return np.full(size, int(tied[0]), dtype=np.int64)
        return tied[self._integers(tied.size, size=size)]

    def __repr__(self) -> str:
        return f"KSubsetPolicy(k={self.k!r})"
