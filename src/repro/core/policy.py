"""The selection-policy interface.

A policy receives a :class:`~repro.core.views.LoadView` per arrival and
returns the index of the server to dispatch to.  Policies are bound once
per simulation run to the cluster size, a dedicated random stream (so
policy randomness is independent of workload randomness) and a
:class:`~repro.core.rate_estimators.RateEstimator`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.rate_estimators import ExactRate, RateEstimator
from repro.core.views import LoadView

__all__ = ["Policy"]


class Policy(ABC):
    """Base class for server-selection policies."""

    #: Human-readable name used in experiment tables; subclasses override.
    name: str = "policy"

    def __init__(self) -> None:
        self._num_servers: int | None = None
        self._rng: np.random.Generator | None = None
        self._random = None
        self._integers = None
        self._rate: RateEstimator = ExactRate()
        self._server_rates: np.ndarray | None = None

    def bind(
        self,
        num_servers: int,
        rng: np.random.Generator,
        rate_estimator: RateEstimator | None = None,
        server_rates: np.ndarray | None = None,
    ) -> None:
        """Attach the policy to a simulation run.

        ``server_rates`` carries per-server capacities for policies that
        are capacity-aware; homogeneous clusters may omit it.
        """
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        self._num_servers = num_servers
        self._rng = rng
        # Cache the generator's bound methods: the per-arrival hot paths
        # then skip one property access and one attribute lookup per draw.
        self._random = rng.random
        self._integers = rng.integers
        if rate_estimator is not None:
            self._rate = rate_estimator
        if server_rates is not None:
            server_rates = np.asarray(server_rates, dtype=np.float64)
            if server_rates.shape != (num_servers,):
                raise ValueError(
                    f"server_rates must have shape ({num_servers},), "
                    f"got {server_rates.shape}"
                )
            if np.any(server_rates <= 0):
                raise ValueError("server_rates must be positive")
        self._server_rates = server_rates
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses to validate parameters against cluster size."""

    @property
    def num_servers(self) -> int:
        """Cluster size (available after :meth:`bind`)."""
        if self._num_servers is None:
            raise RuntimeError(
                f"{type(self).__name__} is unbound; call bind() first "
                "(ClusterSimulation does this for you)"
            )
        return self._num_servers

    @property
    def rng(self) -> np.random.Generator:
        """The policy's private random stream."""
        if self._rng is None:
            raise RuntimeError(f"{type(self).__name__} is unbound; call bind() first")
        return self._rng

    @property
    def rate_estimator(self) -> RateEstimator:
        """The λ estimator this policy consults."""
        return self._rate

    @property
    def server_rates(self) -> np.ndarray:
        """Per-server service rates; all ones unless the run supplied them."""
        if self._server_rates is None:
            return np.ones(self.num_servers)
        return self._server_rates

    @abstractmethod
    def select(self, view: LoadView) -> int:
        """Choose a server index for the arrival described by ``view``."""

    # ------------------------------------------------------------------
    # Phase batching (the fast-path protocol)
    # ------------------------------------------------------------------

    def phase_batchable(self, num_servers: int) -> bool:
        """Whether :meth:`select_batch` can replay a periodic-board phase.

        A policy may return ``True`` only if, for a frozen board,
        ``select_batch`` consumes the policy random stream *bitwise
        identically* to the equivalent sequence of scalar :meth:`select`
        calls and returns the same selections.  Policies that draw random
        candidate subsets per request (``Generator.choice`` has no
        batch-equivalent draw sequence) must return ``False``.  The
        default is conservative: not batchable.
        """
        return False

    def select_batch(
        self, view: LoadView, arrival_times: np.ndarray
    ) -> np.ndarray:
        """Choose servers for one phase's worth of arrivals at once.

        ``view`` describes the frozen board (``loads``, ``version``,
        ``info_time``, ``horizon``; ``now``/``elapsed`` are those of the
        batch's first arrival); ``arrival_times`` holds the absolute
        arrival instants, so time-dependent policies recover each
        arrival's age as ``arrival_times - view.info_time``.  Returns an
        integer array of server indices, one per arrival.  Only called
        when :meth:`phase_batchable` returned ``True``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support phase batching"
        )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _sample_from(self, probabilities: np.ndarray) -> int:
        """Draw a server index from a probability vector.

        Uses inverse-transform sampling on the cumulative sum, which is
        substantially faster than ``Generator.choice`` for the small
        vectors on this hot path.
        """
        cumulative = np.cumsum(probabilities)
        # Guard against cumulative[-1] slightly below 1 from rounding.
        u = self._random() * cumulative[-1]
        return int(np.searchsorted(cumulative, u, side="right"))

    def _random_minimum(self, loads: np.ndarray, candidates: np.ndarray) -> int:
        """Least-loaded of ``candidates``, ties broken uniformly at random."""
        candidate_loads = loads[candidates]
        minimum = candidate_loads.min()
        tied = candidates[candidate_loads == minimum]
        if tied.size == 1:
            return int(tied[0])
        return int(tied[self._integers(tied.size)])

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
