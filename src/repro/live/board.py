"""The live bulletin board: a poller task publishing genuinely stale state.

The simulator's :class:`~repro.staleness.periodic.PeriodicUpdate` *models*
a bulletin board; this one is real.  A background task connects to every
backend, requests a load report every ``T`` time units (on an absolute
schedule, so the cadence never drifts), and publishes the gathered
snapshot.  Between polls the snapshot simply sits there aging — requests
arriving late in a phase act on information that is genuinely ``T`` old,
including whatever queueing happened on the wire in the meantime.

:meth:`BulletinBoard.view` is the LoadView adapter: it dresses the
current snapshot up as the engine-agnostic
:class:`~repro.core.views.LoadView` policies consume, with periodic
(phase-based) semantics — the same contract the simulator's staleness
models honor, satisfying :class:`~repro.core.views.LoadViewSource`.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.views import LoadView
from repro.live.protocol import LiveClock, read_message, send_message

__all__ = ["BoardSnapshot", "BulletinBoard"]

#: Per-poll timeout (wall seconds): a backend that cannot answer a load
#: probe within this window keeps its previous entry — hidden staleness,
#: exactly like the fault injector's crashed-server board masking.
_POLL_TIMEOUT = 5.0


@dataclass(frozen=True, slots=True)
class BoardSnapshot:
    """One published poll result.

    ``info_time`` is in normalized time units (the clock's scale);
    ``loads`` holds jobs-in-system per backend, in backend order.
    ``last_success`` (normalized units, backend order) records when each
    entry last came from an answered probe — the age ledger behind
    ``max_entry_age`` eviction; ``None`` on boards that predate it.
    """

    loads: np.ndarray
    version: int
    info_time: float
    last_success: np.ndarray | None = None


class BulletinBoard:
    """Polls all backends every ``period`` time units; publishes snapshots.

    Parameters
    ----------
    addresses:
        ``(host, port)`` of every backend, in server-id order.
    period:
        The update period ``T`` in normalized time units — the paper's
        central staleness parameter, realized as a wall-clock polling
        interval via ``clock``.
    clock:
        The experiment's shared :class:`~repro.live.protocol.LiveClock`.
    on_update:
        Optional hook ``(now, version, loads)`` invoked after each
        publish — the live counterpart of the simulator probes'
        ``on_load_update``, used for herd-epoch detection.
    max_entry_age:
        Optional bound, in *periods*, on how long a failed backend's
        frozen entry stays trusted.  Entries carry a last-success
        timestamp; once one ages past ``max_entry_age * period`` the
        board publishes ``inf`` for it — dead backends stop attracting
        traffic instead of advertising their final (often empty-looking)
        report forever.  ``None`` (the default) keeps the
        keep-previous-forever semantics the simulator's hidden-staleness
        board uses, so fault-free and default faulted runs stay
        comparable to the simulator.
    """

    def __init__(
        self,
        addresses: Sequence[tuple[str, int]],
        period: float,
        clock: LiveClock,
        on_update: Callable[[float, int, np.ndarray], None] | None = None,
        max_entry_age: float | None = None,
    ) -> None:
        if not addresses:
            raise ValueError("BulletinBoard needs at least one backend")
        if not math.isfinite(period) or period <= 0:
            raise ValueError(
                f"period must be positive and finite, got {period}"
            )
        if max_entry_age is not None and (
            not math.isfinite(max_entry_age) or max_entry_age <= 0
        ):
            raise ValueError(
                f"max_entry_age must be positive and finite, "
                f"got {max_entry_age}"
            )
        self.addresses = list(addresses)
        self.period = float(period)
        self.clock = clock
        self.on_update = on_update
        self.max_entry_age = (
            float(max_entry_age) if max_entry_age is not None else None
        )
        self.polls_completed = 0
        self.poll_failures = 0
        self.entries_evicted = 0
        self.reconnects = 0
        self._snapshot: BoardSnapshot | None = None
        self._last_success: np.ndarray | None = None
        self._raw_loads: np.ndarray | None = None
        self._connections: list[
            tuple[asyncio.StreamReader, asyncio.StreamWriter] | None
        ] = []
        self._poller: asyncio.Task | None = None

    @property
    def num_servers(self) -> int:
        return len(self.addresses)

    @property
    def snapshot(self) -> BoardSnapshot:
        if self._snapshot is None:
            raise RuntimeError("board has not published yet; call start()")
        return self._snapshot

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Connect to every backend, take poll 0, start the poll loop.

        The clock must already be started; poll 0 lands at (approximately)
        normalized time zero, matching the simulator's accurate-at-t=0
        board.
        """
        if self._poller is not None:
            raise RuntimeError("BulletinBoard is already running")
        for host, port in self.addresses:
            reader, writer = await asyncio.open_connection(host, port)
            self._connections.append((reader, writer))
        await self._poll_once()
        self._poller = asyncio.create_task(
            self._poll_loop(), name="bulletin-board-poller"
        )

    async def stop(self) -> None:
        """Cancel the poller and close every polling connection."""
        if self._poller is not None:
            self._poller.cancel()
            try:
                await self._poller
            except asyncio.CancelledError:
                pass
            self._poller = None
        open_connections = [c for c in self._connections if c is not None]
        for _, writer in open_connections:
            writer.close()
        for _, writer in open_connections:
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._connections.clear()

    # -- the LoadView adapter -------------------------------------------

    def view(self, client_id: int, now: float) -> LoadView:
        """The stale information visible to one arriving request.

        Periodic bulletin-board semantics (``phase_based=True``): loads
        were sampled at ``info_time`` and the next refresh lands one
        period later.  ``known_age=True`` because the board timestamps
        its snapshots — live clients can always subtract.  The loads
        array is a copy: policies may scribble on their view.
        """
        snapshot = self.snapshot
        return LoadView(
            loads=snapshot.loads.copy(),
            version=snapshot.version,
            info_time=snapshot.info_time,
            now=now,
            horizon=self.period,
            elapsed=max(0.0, now - snapshot.info_time),
            known_age=True,
            phase_based=True,
            client_id=client_id,
        )

    def describe(self) -> dict:
        """JSON-serializable configuration digest (for manifests).

        ``max_entry_age`` appears only when eviction is on, so boards
        without it describe byte-identically to their pre-chaos form.
        """
        described = {"model": "live-periodic", "period": self.period}
        if self.max_entry_age is not None:
            described["max_entry_age"] = self.max_entry_age
        return described

    # -- internals -------------------------------------------------------

    def _poll_timeout(self) -> float:
        """Per-probe timeout: never longer than one poll period.

        Poll rounds are gathered concurrently but published together, so
        a single stalled backend holding a probe for the full 5-second
        ceiling would freeze the *entire* board across many periods.
        Bounding by the period keeps a chaos-stalled backend's damage to
        one hidden-stale entry per round.
        """
        return min(_POLL_TIMEOUT, self.clock.to_wall(self.period))

    async def _drop_connection(self, index: int) -> None:
        """Discard one polling connection after a failed probe.

        A probe that timed out may still get its reply flushed later
        (e.g. a stalled backend resuming); reusing the stream would then
        pair that late reply with the *next* request and skew every
        subsequent reading by one poll.  Dropping the connection and
        redialing next round keeps request/reply pairing exact.
        """
        connection = self._connections[index]
        if connection is None:
            return
        _, writer = connection
        self._connections[index] = None
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _poll_one_backend(self, index: int) -> float | None:
        """One load probe on one connection; ``None`` on failure.

        A missing connection (dropped after an earlier failure, or a
        backend that was down) is redialed first — this is how the board
        rediscovers a restarted backend without any control-plane help.
        """
        if self._connections[index] is None:
            host, port = self.addresses[index]
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    timeout=self._poll_timeout(),
                )
            except (OSError, asyncio.TimeoutError, TimeoutError):
                return None
            self._connections[index] = (reader, writer)
            self.reconnects += 1
        reader, writer = self._connections[index]
        try:
            send_message(writer, {"op": "load"})
            await writer.drain()
            reply = await asyncio.wait_for(
                read_message(reader), timeout=self._poll_timeout()
            )
        except (
            asyncio.TimeoutError,
            TimeoutError,
            ValueError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            await self._drop_connection(index)
            return None
        if reply is None or reply.get("op") != "load":
            await self._drop_connection(index)
            return None
        return float(reply["queue"])

    async def _poll_once(self) -> None:
        """Gather one load report per backend and publish the snapshot.

        A backend that fails to answer keeps its previous entry (0.0 on
        the very first poll): the board silently advertises stale state
        for it, which is precisely how a real stats plane degrades.
        With ``max_entry_age`` set, an entry that has gone unrefreshed
        for more than that many periods is evicted — published as
        ``inf`` so no load-interpreting policy selects the dead backend.
        """
        results = await asyncio.gather(
            *(self._poll_one_backend(i) for i in range(self.num_servers))
        )
        previous = (
            self._raw_loads
            if self._raw_loads is not None
            else np.zeros(self.num_servers)
        )
        loads = np.array(
            [
                result if result is not None else float(previous[i])
                for i, result in enumerate(results)
            ],
            dtype=np.float64,
        )
        self.poll_failures += sum(1 for r in results if r is None)
        version = self._snapshot.version + 1 if self._snapshot else 0
        info_time = self.clock.now()
        if self._last_success is None:
            # Poll 0: every entry starts fresh — a backend missing from
            # the very first round still gets one grace window.
            self._last_success = np.full(self.num_servers, info_time)
        for i, result in enumerate(results):
            if result is not None:
                self._last_success[i] = info_time
        self._raw_loads = loads
        published = loads
        if self.max_entry_age is not None:
            age = info_time - self._last_success
            stale = age > self.max_entry_age * self.period
            if stale.any():
                published = loads.copy()
                published[stale] = math.inf
                self.entries_evicted += int(stale.sum())
        self._snapshot = BoardSnapshot(
            loads=published,
            version=version,
            info_time=info_time,
            last_success=self._last_success.copy(),
        )
        self.polls_completed += 1
        if self.on_update is not None:
            self.on_update(info_time, version, published)

    async def _poll_loop(self) -> None:
        """Poll on the absolute grid t0 + k*T (no cumulative drift)."""
        loop = asyncio.get_running_loop()
        k = 1
        while True:
            deadline = self.clock.wall_deadline(k * self.period)
            delay = deadline - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await self._poll_once()
            # Skip any whole periods lost to a stall (e.g. a suspended
            # laptop): re-anchor on the next future grid point instead
            # of polling in a tight catch-up burst.
            k += 1
            behind = (loop.time() - self.clock.wall_deadline(k * self.period))
            if behind > 0:
                k += int(behind / self.clock.to_wall(self.period)) + 1
