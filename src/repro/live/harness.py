"""One-process live experiments and the sim-vs-wire validation loop.

:func:`run_live` launches ``n`` real TCP backends, the bulletin-board
poller, the dispatcher and a load generator inside one event loop, runs
a timed cell and tears everything down gracefully (dispatcher drains
in-flight requests first, then the board poller stops, then the backends
close — no task leaks).  :func:`simulator_prediction` runs the *same*
``(policy, n, λ, T)`` cell through :class:`~repro.cluster.simulation.ClusterSimulation`,
and :func:`compare_live_to_sim` puts the two side by side — the
strongest validation this repository has: if LI's interpretation of
stale reports is right, it must hold on a wire where the staleness is
produced by an actual polling task, not modeled.

Where sim and wire can legitimately diverge (documented tolerance, see
DESIGN.md §14): event-loop and socket overhead adds a roughly constant
per-request cost (kept under ~2% of a mean service time by the default
``time_unit``); poll round-trips make board snapshots a fraction of a
time unit older than the nominal phase start; and a live run's sample
size is wall-clock-bounded, so its mean carries ordinary sampling noise.
"""

from __future__ import annotations

import asyncio
import math
import sys
import time
from dataclasses import dataclass, field, fields

import numpy as np

from repro.live.backend import BackendServer
from repro.live.board import BulletinBoard
from repro.live.dispatcher import LiveDispatcher
from repro.live.loadgen import ClosedLoopClient, OpenLoopClient
from repro.live.protocol import LiveClock

__all__ = [
    "LIVE_ESTIMATORS",
    "LIVE_POLICIES",
    "LiveResult",
    "LiveSpec",
    "compare_live_to_sim",
    "run_live",
    "run_live_experiment",
    "simulator_prediction",
]


def _make_random():
    from repro.core.random_policy import RandomPolicy

    return RandomPolicy()


def _make_round_robin():
    from repro.core.round_robin import RoundRobinPolicy

    return RoundRobinPolicy()


def _make_basic_li():
    from repro.core.li_basic import BasicLIPolicy

    return BasicLIPolicy()


def _make_basic_li_ts():
    from repro.core.li_basic import BasicLIPolicy

    return BasicLIPolicy(timestamp_aware=True)


def _make_aggressive_li():
    from repro.core.li_aggressive import AggressiveLIPolicy

    return AggressiveLIPolicy()


def _make_greedy(num_servers: int):
    from repro.core.ksubset import KSubsetPolicy

    return KSubsetPolicy(num_servers)


def _make_k2(num_servers: int):
    from repro.core.ksubset import KSubsetPolicy

    return KSubsetPolicy(min(2, num_servers))


#: Policy labels servable live.  Factories taking an argument receive the
#: cluster size (the greedy family needs it); the rest take none.
LIVE_POLICIES = {
    "random": _make_random,
    "round-robin": _make_round_robin,
    "basic-li": _make_basic_li,
    "basic-li(ts)": _make_basic_li_ts,
    "aggressive-li": _make_aggressive_li,
    "greedy": _make_greedy,
    "k=2": _make_k2,
}

#: Argument counts (policy factories that need the cluster size).
_POLICIES_NEEDING_N = {"greedy", "k=2"}


def _make_exact():
    return None  # Policy default: ExactRate bound to the true λ.


def _make_conservative():
    from repro.core.rate_estimators import FixedRate

    return FixedRate(1.0)


def _make_ewma():
    from repro.core.rate_estimators import EWMARate

    return EWMARate()


#: λ-estimator labels: the oracle, the paper's conservative λ=1 strategy,
#: and the honest online EWMA.
LIVE_ESTIMATORS = {
    "exact": _make_exact,
    "conservative": _make_conservative,
    "ewma": _make_ewma,
}


@dataclass(frozen=True)
class LiveSpec:
    """One live cell: everything a run (and its run ID) depends on.

    The experiment-defining fields mirror the simulator cell coordinates
    (policy, n, λ, T, jobs, seed, overload, arrivals program, estimator,
    loop mode).  ``time_unit``, ``host`` and ``duration`` are *execution*
    parameters: they change wall-clock fidelity, never the cell being
    measured, and are folded out of the content hash by
    :func:`repro.ablation.runid.resolve_live_spec`.

    The chaos fields (``faults``, ``impair``, ``health``,
    ``board_max_age``) default to ``None`` and are omitted from
    :meth:`describe` when unset, so fault-free specs — and therefore
    their run IDs and manifest digests — are byte-identical to
    pre-chaos behavior.
    """

    policy: str = "basic-li"
    num_servers: int = 3
    load: float = 0.6
    period: float = 4.0
    jobs: int = 500
    seed: int = 1
    warmup_fraction: float = 0.1
    queue_capacity: int | None = None
    admission: str | None = None
    breaker: str | None = None
    estimator: str = "exact"
    arrivals: str | None = None
    service: str = "exponential"
    mode: str = "open"
    clients: int = 8
    think_time: float = 0.0
    # -- execution-only (wall-clock-volatile) fields --------------------
    time_unit: float = 0.01
    host: str = "127.0.0.1"
    duration: float | None = None
    # -- chaos fields (identity when set, omitted when None) ------------
    #: ``--faults``-format schedule+retry spec replayed by the
    #: :class:`~repro.live.chaos.ChaosOrchestrator` (and fed to the
    #: simulator for faulted predictions).
    faults: str | None = None
    #: ``--impair``-format per-link network impairment spec.
    impair: str | None = None
    #: Health-check spec (``"on"`` or ``interval=...,down_after=...``).
    health: str | None = None
    #: Bulletin-board entry max age, in periods (``None``: keep-forever).
    board_max_age: float | None = None

    #: Fields that never influence the measured cell, only how fast /
    #: where it executes — excluded from live run IDs.
    VOLATILE_FIELDS = ("time_unit", "host", "duration")

    #: Fields dropped from :meth:`describe` when ``None`` so fault-free
    #: specs keep their pre-chaos byte-identity.
    CHAOS_FIELDS = ("faults", "impair", "health", "board_max_age")

    def __post_init__(self) -> None:
        if self.policy not in LIVE_POLICIES:
            raise ValueError(
                f"unknown live policy {self.policy!r}; available: "
                f"{', '.join(LIVE_POLICIES)}"
            )
        if self.estimator not in LIVE_ESTIMATORS:
            raise ValueError(
                f"unknown estimator {self.estimator!r}; available: "
                f"{', '.join(LIVE_ESTIMATORS)}"
            )
        if self.mode not in ("open", "closed"):
            raise ValueError(
                f"mode must be 'open' or 'closed', got {self.mode!r}"
            )
        if self.num_servers < 1:
            raise ValueError(
                f"num_servers must be >= 1, got {self.num_servers}"
            )
        if not math.isfinite(self.load) or self.load <= 0:
            raise ValueError(
                f"load must be positive and finite, got {self.load}"
            )
        if not math.isfinite(self.period) or self.period <= 0:
            raise ValueError(
                f"period must be positive and finite, got {self.period}"
            )
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )
        if self.board_max_age is not None and (
            not math.isfinite(self.board_max_age) or self.board_max_age <= 0
        ):
            raise ValueError(
                f"board_max_age must be positive and finite (or None), "
                f"got {self.board_max_age}"
            )
        # Parse the chaos spec strings eagerly so a malformed spec fails
        # at construction (with the parser's message), not mid-run.
        self.make_faults()
        self.make_impairment()
        self.make_health()

    def describe(self) -> dict:
        """JSON-serializable form: every field, volatile ones included.

        Run-ID construction starts from this and *removes*
        :attr:`VOLATILE_FIELDS`; manifests keep them (they are honest
        provenance, just not identity).  Unset chaos fields are omitted
        entirely: a spec without chaos must describe — and therefore
        hash — byte-identically to one built before chaos existed.
        """
        described = {f.name: getattr(self, f.name) for f in fields(self)}
        for name in self.CHAOS_FIELDS:
            if described[name] is None:
                del described[name]
        return described

    def make_policy(self):
        factory = LIVE_POLICIES[self.policy]
        if self.policy in _POLICIES_NEEDING_N:
            return factory(self.num_servers)
        return factory()

    def make_estimator(self):
        return LIVE_ESTIMATORS[self.estimator]()

    def make_program(self):
        """The non-stationary rate program, or ``None`` when stationary."""
        if self.arrivals is None:
            return None
        from repro.nonstationary.parse import parse_arrivals_spec

        return parse_arrivals_spec(self.arrivals)(
            self.num_servers * self.load
        )

    def make_faults(self):
        """The fault injector config (schedule + retry), or ``None``."""
        if self.faults is None:
            return None
        from repro.faults.parse import parse_fault_spec

        return parse_fault_spec(self.faults)

    def make_impairment(self):
        """The parsed :class:`NetworkImpairment`, or ``None``."""
        if self.impair is None:
            return None
        from repro.live.chaos import parse_impairment_spec

        return parse_impairment_spec(self.impair)

    def make_health(self):
        """The parsed :class:`HealthConfig`, or ``None``."""
        if self.health is None:
            return None
        from repro.live.dispatcher import parse_health_spec

        return parse_health_spec(self.health)

    def chaos_horizon(self) -> float:
        """How far (normalized units) chaos timelines must be realized.

        Generously past the expected run duration — an open-loop cell
        drains ``jobs`` arrivals at total rate ``n·λ`` — and past the
        last scripted event, so no planned fault is silently clipped.
        """
        expected = self.jobs / max(self.num_servers * self.load, 1e-9)
        horizon = 4.0 * expected
        injector = self.make_faults()
        if injector is not None and injector.schedule.scripted:
            last = max(e.time for e in injector.schedule.scripted)
            horizon = max(horizon, last + 1.0)
        return horizon


@dataclass(frozen=True)
class LiveResult:
    """Measured outcome of one live run (times in mean service times)."""

    spec: LiveSpec
    mean_response_time: float
    p95_response_time: float
    jobs_offered: int
    jobs_completed: int
    jobs_measured: int
    jobs_shed: int
    jobs_rejected: int
    goodput: float
    board_polls: int
    poll_failures: int
    breaker_trips: int
    herd: dict
    dispatch_counts: tuple
    wall_seconds: float
    duration: float
    # -- chaos outcome (defaults keep fault-free construction unchanged)
    retries: int = 0
    jobs_failed: int = 0
    loop_errors: int = 0
    chaos: dict | None = None

    def to_manifest(self) -> dict:
        """Manifest-compatible JSON payload (plus the live run ID).

        Chaos keys (``retries``, ``jobs_failed``, ``chaos``) appear only
        on chaotic runs: a fault-free manifest's payload stays
        byte-identical to its pre-chaos form.
        """
        from repro.ablation.runid import live_run_id

        results = {
            "mean_response_time": self.mean_response_time,
            "p95_response_time": self.p95_response_time,
            "jobs_offered": self.jobs_offered,
            "jobs_completed": self.jobs_completed,
            "jobs_measured": self.jobs_measured,
            "jobs_shed": self.jobs_shed,
            "jobs_rejected": self.jobs_rejected,
            "goodput": self.goodput,
            "board_polls": self.board_polls,
            "poll_failures": self.poll_failures,
            "breaker_trips": self.breaker_trips,
            "dispatch_counts": list(self.dispatch_counts),
            "wall_seconds": self.wall_seconds,
            "duration": self.duration,
            "herd": self.herd,
        }
        if self.retries:
            results["retries"] = self.retries
        if self.jobs_failed:
            results["jobs_failed"] = self.jobs_failed
        if self.loop_errors:
            results["loop_errors"] = self.loop_errors
        manifest = {
            "live_manifest_version": 1,
            "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "run_id": live_run_id(self.spec),
            "spec": self.spec.describe(),
            "environment": {
                "python": sys.version.split()[0],
                "numpy": np.__version__,
            },
            "results": results,
        }
        if self.chaos is not None:
            manifest["chaos"] = self.chaos
        return manifest


class _ProbeFanout:
    """Forward each live probe hook to every target that implements it.

    Lets :class:`~repro.obs.live.LiveTrace` (dispatch/completion/board
    hooks) and :class:`~repro.obs.chaos.ChaosTrace` (retry/health/chaos
    hooks) ride the same run without either having to stub the other's
    surface; a hook no target implements raises ``AttributeError``, so
    the dispatcher's ``getattr`` guards behave exactly as with a single
    probe object.
    """

    _HOOKS = frozenset(
        {
            "on_dispatch",
            "on_job_complete",
            "on_load_update",
            "on_retry",
            "on_health",
            "on_chaos_event",
        }
    )

    def __init__(self, *targets) -> None:
        self.targets = [t for t in targets if t is not None]

    def __getattr__(self, name: str):
        if name not in self._HOOKS:
            raise AttributeError(name)
        handlers = [
            getattr(target, name)
            for target in self.targets
            if hasattr(target, name)
        ]
        if not handlers:
            raise AttributeError(name)

        def fan_out(*args, **kwargs) -> None:
            for handler in handlers:
                handler(*args, **kwargs)

        return fan_out


async def run_live(spec: LiveSpec, probes=None) -> LiveResult:
    """Run one live cell end to end inside the current event loop.

    Startup order: backends → board (poll 0 ≈ t=0) → dispatcher →
    chaos orchestrator → load generator.  Shutdown runs in reverse and
    is unconditional (``finally``), so an exception — or an outer
    cancellation, even one landing mid-fault with a backend dead — still
    tears every task down; see ``tests/live/test_shutdown.py`` for the
    no-leak proof.
    """
    from repro.obs.live import LiveTrace
    from repro.overload.parse import parse_admission_spec, parse_breaker_spec

    seed_seq = np.random.SeedSequence(spec.seed)
    backend_seeds = seed_seq.spawn(spec.num_servers)
    dispatcher_seed, loadgen_seed = seed_seq.spawn(2)

    injector = spec.make_faults()
    impairment = spec.make_impairment()
    chaotic = injector is not None or (
        impairment is not None and not impairment.is_null
    )
    chaos_trace = None
    if chaotic:
        from repro.obs.chaos import ChaosTrace

        chaos_trace = ChaosTrace()

    clock = LiveClock(spec.time_unit)
    trace = probes if probes is not None else LiveTrace(spec.num_servers)
    dispatcher_probes = (
        _ProbeFanout(trace, chaos_trace) if chaos_trace is not None else trace
    )
    backends = [
        BackendServer(
            i,
            time_unit=spec.time_unit,
            service=spec.service,
            queue_capacity=spec.queue_capacity,
            seed=backend_seeds[i],
            host=spec.host,
        )
        for i in range(spec.num_servers)
    ]
    wall_start = time.perf_counter()
    started: list = []
    board = dispatcher = chaos = None
    # Count every exception that escapes into the event loop (failed
    # callbacks, never-retrieved task exceptions) — the chaos acceptance
    # bar is *zero* of these across a faulted run.  The previous handler
    # still runs, so nothing is silenced.
    loop = asyncio.get_running_loop()
    loop_error_log: list = []
    previous_handler = loop.get_exception_handler()

    def _count_loop_error(loop_, context) -> None:
        loop_error_log.append(
            context.get("message") or repr(context.get("exception"))
        )
        if previous_handler is not None:
            previous_handler(loop_, context)
        else:
            loop_.default_exception_handler(context)

    loop.set_exception_handler(_count_loop_error)
    try:
        for backend in backends:
            await backend.start()
            started.append(backend)
        addresses = [backend.address for backend in backends]
        clock.start()
        board = BulletinBoard(
            addresses,
            spec.period,
            clock,
            on_update=trace.on_load_update,
            max_entry_age=spec.board_max_age,
        )
        await board.start()
        dispatcher = LiveDispatcher(
            addresses,
            board,
            spec.make_policy(),
            clock,
            rate_estimator=spec.make_estimator(),
            true_rate=spec.load,
            admission=(
                parse_admission_spec(spec.admission)
                if spec.admission
                else None
            ),
            breaker_config=(
                parse_breaker_spec(spec.breaker) if spec.breaker else None
            ),
            retry=injector.retry if injector is not None else None,
            health=spec.make_health(),
            probes=dispatcher_probes,
            seed=dispatcher_seed,
            host=spec.host,
        )
        await dispatcher.start()
        if chaotic:
            from repro.faults.schedule import FaultSchedule
            from repro.live.chaos import ChaosOrchestrator

            chaos = ChaosOrchestrator(
                backends,
                injector.schedule if injector is not None else FaultSchedule(),
                clock,
                horizon=spec.chaos_horizon(),
                seed=spec.seed,
                impairment=impairment,
                probes=chaos_trace,
            )
            await chaos.start()
        if spec.mode == "open":
            generator = OpenLoopClient(
                dispatcher.address,
                rate=spec.num_servers * spec.load,
                total_jobs=spec.jobs,
                clock=clock,
                seed=loadgen_seed,
                program=spec.make_program(),
            )
        else:
            generator = ClosedLoopClient(
                dispatcher.address,
                num_clients=spec.clients,
                total_jobs=spec.jobs,
                clock=clock,
                think_time=spec.think_time,
                seed=loadgen_seed,
            )
        if spec.duration is not None:
            await asyncio.wait_for(generator.run(), timeout=spec.duration)
        else:
            await generator.run()
    finally:
        if chaos is not None:
            await chaos.stop()
        if dispatcher is not None:
            await dispatcher.stop()
        if board is not None:
            await board.stop()
        for backend in started:
            await backend.stop()
        # Never-retrieved task exceptions only surface when the task is
        # collected; force that now so the count reflects this run, then
        # hand the loop back to whoever had it.
        import gc

        gc.collect()
        loop.set_exception_handler(previous_handler)
    trace.finish()

    records = generator.records
    completed = [record for record in records if record.ok]
    warmup = int(len(completed) * spec.warmup_fraction)
    measured = completed[warmup:]
    latencies = np.array([record.latency for record in measured])
    stats = dispatcher.stats
    chaos_section = None
    if chaos_trace is not None:
        if dispatcher.breakers is not None:
            chaos_trace.note_breakers(dispatcher.breakers.summary())
        chaos_section = {
            "config": chaos.describe() if chaos is not None else {},
            # Injected fault transitions (bounded: stochastic schedules
            # can plan many): scheduled vs applied time, per backend.
            "injected": list(chaos.injected[:200]) if chaos is not None else [],
            "trace": chaos_trace.summary(),
            "board": {
                "poll_failures": board.poll_failures,
                "entries_evicted": board.entries_evicted,
                "reconnects": board.reconnects,
            },
            "backends": {
                "discarded": [backend.discarded for backend in backends],
            },
            "loop_errors": len(loop_error_log),
        }
    return LiveResult(
        spec=spec,
        mean_response_time=(
            float(latencies.mean()) if latencies.size else float("nan")
        ),
        p95_response_time=(
            float(np.quantile(latencies, 0.95))
            if latencies.size
            else float("nan")
        ),
        jobs_offered=stats.offered,
        jobs_completed=stats.completed,
        jobs_measured=len(measured),
        jobs_shed=stats.shed,
        jobs_rejected=stats.rejected,
        goodput=stats.goodput,
        board_polls=board.polls_completed,
        poll_failures=board.poll_failures,
        breaker_trips=(
            dispatcher.breakers.trips_total
            if dispatcher.breakers is not None
            else 0
        ),
        herd=trace.herd.summary(),
        dispatch_counts=tuple(int(c) for c in stats.dispatch_counts),
        wall_seconds=time.perf_counter() - wall_start,
        duration=clock.now(),
        retries=stats.retries,
        jobs_failed=stats.failed,
        loop_errors=len(loop_error_log),
        chaos=chaos_section,
    )


def run_live_experiment(spec: LiveSpec, probes=None) -> LiveResult:
    """Synchronous wrapper: run one live cell in a fresh event loop."""
    return asyncio.run(run_live(spec, probes=probes))


def _build_simulation(spec: LiveSpec, jobs: int, seed: int):
    """The simulator cell mirroring one live spec."""
    from repro.cluster.simulation import ClusterSimulation
    from repro.overload.parse import build_overload_config
    from repro.staleness.periodic import PeriodicUpdate
    from repro.workloads.arrivals import (
        PoissonArrivals,
        TimeVaryingPoissonArrivals,
    )
    from repro.workloads.service import exponential_service
    from repro.workloads.distributions import Constant

    program = spec.make_program()
    arrivals = (
        TimeVaryingPoissonArrivals(program)
        if program is not None
        else PoissonArrivals(spec.num_servers * spec.load)
    )
    service = (
        exponential_service()
        if spec.service == "exponential"
        else Constant(1.0)
    )
    return ClusterSimulation(
        num_servers=spec.num_servers,
        arrivals=arrivals,
        service=service,
        policy=spec.make_policy(),
        staleness=PeriodicUpdate(period=spec.period),
        rate_estimator=spec.make_estimator(),
        total_jobs=jobs,
        seed=seed,
        overload=build_overload_config(
            queue_capacity=spec.queue_capacity,
            admission=spec.admission,
            breaker=spec.breaker,
        ),
        faults=spec.make_faults(),
    )


def simulator_prediction(
    spec: LiveSpec,
    jobs: int | None = None,
    seeds: tuple = (1, 2, 3),
    cache=None,
) -> dict:
    """The simulator's answer for the same cell, averaged over seeds.

    Closed-loop cells have no fixed-λ simulator counterpart here, so
    prediction is only defined for open-loop specs.  ``cache``, when
    given, is a :class:`repro.ablation.cache.ResultCache`: each seed's
    value is looked up / stored under its content-hashed run ID, so
    repeated live-bench invocations pay for the simulator once.

    ``jobs=None`` picks the default: 20 000 for fault-free cells (more
    samples, better estimate), but the *live spec's own* job count for
    faulted cells — scripted fault windows live at absolute times, so
    the simulated run must cover the same time span as the live one,
    not two orders of magnitude more.
    """
    if spec.mode != "open":
        raise ValueError(
            "simulator predictions are defined for open-loop cells only"
        )
    if jobs is None:
        jobs = spec.jobs if spec.faults is not None else 20_000
    values = []
    for seed in seeds:
        value = None
        run_key = None
        if cache is not None:
            from repro.ablation.runid import (
                resolve_simulation_spec,
                run_id,
            )

            resolved = resolve_simulation_spec(
                _build_simulation(spec, jobs, seed),
                figure_id="live-bench",
                curve=spec.policy,
                x=float(spec.load),
                seed=seed,
                jobs=jobs,
                metric="mean_response_time",
            )
            run_key = run_id(resolved)
            value = cache.get(run_key)
        if value is None:
            simulation = _build_simulation(spec, jobs, seed)
            value = simulation.run().mean_response_time
            if cache is not None and run_key is not None:
                cache.put(run_key, value)
        values.append(value)
    mean = float(np.mean(values))
    return {
        "mean_response_time": mean,
        "per_seed": [float(v) for v in values],
        "jobs": jobs,
        "seeds": list(seeds),
    }


def compare_live_to_sim(
    live: LiveResult,
    sim: dict | None = None,
    jobs: int | None = None,
    seeds: tuple = (1, 2, 3),
    cache=None,
) -> dict:
    """Put one live measurement next to the simulator's prediction.

    ``relative_error`` is ``(live - sim) / sim`` on the mean response
    time — the quantity the live-smoke and chaos-smoke CI jobs bound.
    Works unchanged for faulted cells: the spec's ``faults`` string
    reaches :func:`_build_simulation`, so the simulator runs the same
    :class:`~repro.faults.schedule.FaultSchedule` (and retry policy) the
    chaos orchestrator replayed on the wire.
    """
    if sim is None:
        sim = simulator_prediction(live.spec, jobs=jobs, seeds=seeds, cache=cache)
    predicted = sim["mean_response_time"]
    measured = live.mean_response_time
    return {
        "live": live.to_manifest()["results"],
        "sim": sim,
        "relative_error": (
            (measured - predicted) / predicted
            if predicted and not math.isnan(measured)
            else float("nan")
        ),
    }
