"""The live serving subsystem: LI policies over real asyncio sockets.

Every other engine in this repository (event, fast, vector, fluid)
*models* staleness; this package realizes it.  A :class:`BackendServer`
is a real TCP server with a FIFO queue and a stochastic service process;
a :class:`BulletinBoard` task polls every backend each ``T`` time units
over its own connections and publishes a snapshot that is genuinely
stale by the time requests consult it; a :class:`LiveDispatcher` fronts
the backends and routes each incoming request through an unmodified
:class:`~repro.core.policy.Policy` (plus the overload subsystem's
admission and circuit-breaker machinery); and the load generators in
:mod:`repro.live.loadgen` drive it open-loop (Poisson, optionally
shaped by a non-stationary :class:`~repro.nonstationary.RateProgram`)
or closed-loop.

:mod:`repro.live.harness` wires all of it into one timed experiment and
reports the measured mean response time, goodput and herd statistics
side by side with the simulator's prediction for the same
``(policy, n, λ, T)`` cell — the sim-vs-wire validation loop.

All request/response traffic is newline-delimited JSON over localhost
TCP (:mod:`repro.live.protocol`).  Time on the wire is wall seconds; the
:class:`LiveClock` converts to the simulator's unit (mean service times)
so live measurements and simulator predictions share one scale.

:mod:`repro.live.chaos` closes the robustness loop: a
:class:`ChaosOrchestrator` replays the simulator's fault schedules
(crashes, recoveries, degradations, network impairment) against the
live backends in wall-clock time, while the dispatcher survives them
with retry/backoff, circuit breakers, health-check drain/rejoin and
bulletin-board entry eviction — and the same schedule feeds the
simulator for a faulted sim-vs-wire comparison.
"""

from repro.live.backend import BackendServer
from repro.live.board import BoardSnapshot, BulletinBoard
from repro.live.chaos import (
    ChaosEvent,
    ChaosOrchestrator,
    NetworkImpairment,
    parse_impairment_spec,
)
from repro.live.dispatcher import (
    DispatcherStats,
    HealthConfig,
    LiveDispatcher,
    parse_health_spec,
)
from repro.live.harness import (
    LIVE_ESTIMATORS,
    LIVE_POLICIES,
    LiveResult,
    LiveSpec,
    compare_live_to_sim,
    run_live,
    run_live_experiment,
    simulator_prediction,
)
from repro.live.loadgen import ClosedLoopClient, OpenLoopClient, RequestRecord
from repro.live.protocol import LiveClock, read_message, send_message

__all__ = [
    "BackendServer",
    "BoardSnapshot",
    "BulletinBoard",
    "ChaosEvent",
    "ChaosOrchestrator",
    "ClosedLoopClient",
    "DispatcherStats",
    "HealthConfig",
    "LiveClock",
    "LiveDispatcher",
    "LiveResult",
    "LiveSpec",
    "LIVE_ESTIMATORS",
    "LIVE_POLICIES",
    "NetworkImpairment",
    "OpenLoopClient",
    "RequestRecord",
    "compare_live_to_sim",
    "parse_health_spec",
    "parse_impairment_spec",
    "read_message",
    "run_live",
    "run_live_experiment",
    "send_message",
    "simulator_prediction",
]
