"""Chaos orchestration: replay simulator fault schedules on live sockets.

The simulator realizes a :class:`~repro.faults.schedule.FaultSchedule`
into per-server :class:`~repro.faults.schedule.ServerTimeline` profiles
and integrates jobs through them analytically.  The
:class:`ChaosOrchestrator` realizes the *same* timelines — same scripted
events, same per-server child-seed derivation as
:meth:`~repro.faults.injector.FaultInjector.attach` — and then walks
them in wall-clock time against real :class:`~repro.live.backend
.BackendServer` processes on the experiment's
:class:`~repro.live.protocol.LiveClock` grid:

================  ==================================================
timeline edge      live action
================  ==================================================
enter DOWN         ``pause()`` (``on_crash="stall"``: the process
                   freezes, queued jobs survive) or ``kill()``
                   (``on_crash="abort"``: fail-stop, jobs present are
                   lost, connections reset)
leave DOWN         ``resume()`` / ``restart()`` respectively
enter DEGRADED     ``set_rate_factor(factor)``
leave DEGRADED     ``set_rate_factor(1.0)``
================  ==================================================

For scripted schedules the live run and the simulator see *identical*
fault timelines, which is what lets :func:`~repro.live.harness
.compare_live_to_sim` extend to faulted runs.  For stochastic
(MTTF/MTTR) schedules each side draws its own realization from the same
process — the comparison is distributional, not samplewise.

:class:`NetworkImpairment` adds the failure mode the simulator does not
model: the wire itself.  Per-link delay, jitter and connection drops are
applied by the backend at the protocol layer to every inbound message,
from its own child-seeded stream.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults.schedule import FaultSchedule, ServerState, ServerTimeline
from repro.live.backend import BackendServer
from repro.live.protocol import LiveClock

__all__ = [
    "ChaosEvent",
    "ChaosOrchestrator",
    "NetworkImpairment",
    "parse_impairment_spec",
]


@dataclass(frozen=True, slots=True)
class NetworkImpairment:
    """Per-link network impairment, applied to every inbound message.

    ``delay`` and ``jitter`` are in normalized time units (mean service
    times): each message is held for ``delay + jitter * U(-1, 1)``
    (clamped at zero) before processing.  ``drop_rate`` is the
    probability that a message instead kills its connection — the peer
    sees a reset mid-conversation, exactly like a flaky middlebox.
    """

    delay: float = 0.0
    jitter: float = 0.0
    drop_rate: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.delay) or self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")
        if not math.isfinite(self.jitter) or self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        if not 0.0 <= self.drop_rate < 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1), got {self.drop_rate}"
            )

    @property
    def is_null(self) -> bool:
        return self.delay == 0.0 and self.jitter == 0.0 and self.drop_rate == 0.0

    def describe(self) -> dict:
        """JSON-serializable digest (for manifests and run IDs)."""
        return {
            "delay": self.delay,
            "jitter": self.jitter,
            "drop_rate": self.drop_rate,
        }


def parse_impairment_spec(text: str) -> NetworkImpairment:
    """Parse ``"delay=0.2,jitter=0.1,drop=0.01"`` (all keys optional)."""
    kwargs: dict = {}
    keys = {"delay": "delay", "jitter": "jitter", "drop": "drop_rate"}
    for raw in text.split(","):
        part = raw.strip()
        if not part:
            continue
        key, separator, value = part.partition("=")
        key = key.strip().lower()
        if not separator or not value.strip():
            raise ValueError(
                f"malformed --impair entry {part!r}; expected key=value"
            )
        if key not in keys:
            raise ValueError(
                f"unknown --impair key {key!r}; known keys: "
                f"{', '.join(sorted(keys))}"
            )
        try:
            kwargs[keys[key]] = float(value)
        except ValueError:
            raise ValueError(
                f"--impair key {key!r} needs a number, got {value!r}"
            ) from None
    return NetworkImpairment(**kwargs)


@dataclass(frozen=True, slots=True)
class ChaosEvent:
    """One planned fault transition on one backend.

    ``time`` is the scheduled instant in normalized units; ``action`` is
    one of ``stall``/``kill``/``resume``/``restart``/``set-rate``;
    ``factor`` is the service-rate multiplier in force after the event.
    """

    time: float
    server_id: int
    action: str
    factor: float = 1.0


class ChaosOrchestrator:
    """Drives live backends through a realized fault schedule.

    Parameters
    ----------
    backends:
        The experiment's started :class:`BackendServer` objects, in
        server-id order.
    schedule:
        The fault process to replay (scripted or stochastic).
    clock:
        The experiment's shared :class:`LiveClock`; events fire on its
        absolute grid, so injected faults land at the same normalized
        times the simulator's timelines place them.
    horizon:
        How far (normalized units) to realize stochastic timelines and
        collect events.  Must be finite; pick it comfortably past the
        expected run duration — events beyond it are never injected.
    seed:
        Seeds the per-server stochastic realizations *and* the
        impairment streams, via the same child-seed derivation the
        simulator's injector uses.
    impairment:
        Optional :class:`NetworkImpairment` attached to every backend
        for the duration of the run.
    probes:
        Optional object with an ``on_chaos_event(time, server_id,
        action, factor, applied)`` hook (e.g.
        :class:`repro.obs.chaos.ChaosTrace`); consulted via ``getattr``.
    """

    def __init__(
        self,
        backends: Sequence[BackendServer],
        schedule: FaultSchedule,
        clock: LiveClock,
        *,
        horizon: float,
        seed: int = 0,
        impairment: NetworkImpairment | None = None,
        probes=None,
    ) -> None:
        if not backends:
            raise ValueError("ChaosOrchestrator needs at least one backend")
        if not math.isfinite(horizon) or horizon <= 0:
            raise ValueError(
                f"horizon must be positive and finite, got {horizon}"
            )
        self.backends = list(backends)
        self.schedule = schedule
        self.clock = clock
        self.horizon = float(horizon)
        self.seed = seed
        self.impairment = impairment
        self.probes = probes
        self.injected: list[dict] = []
        self._task: asyncio.Task | None = None
        self.timelines = self._realize_timelines()
        self.events = self._plan_events()

    # -- planning --------------------------------------------------------

    def _realize_timelines(self) -> list[ServerTimeline]:
        """Mirror ``FaultInjector.attach``'s realization exactly.

        Same child-seed derivation (one integer per server, drawn up
        front) so a stochastic schedule replayed live with the same seed
        produces the same per-server profiles an injector handed the
        same generator would.
        """
        rng = np.random.default_rng(self.seed)
        scripted = self.schedule.scripted
        child_seeds = rng.integers(0, 2**63 - 1, size=len(self.backends))
        timelines: list[ServerTimeline] = []
        for server_id in range(len(self.backends)):
            events = tuple(
                event for event in scripted if event.server_id == server_id
            )
            if events:
                timelines.append(
                    ServerTimeline(self.schedule, scripted=events)
                )
            elif self.schedule.is_null or scripted:
                timelines.append(ServerTimeline(self.schedule))
            else:
                child = np.random.Generator(
                    np.random.PCG64(int(child_seeds[server_id]))
                )
                timelines.append(ServerTimeline(self.schedule, rng=child))
        # Impairment streams are drawn *after* the timeline seeds, so
        # enabling impairment never perturbs the fault realization.
        self._impair_seeds = rng.integers(
            0, 2**63 - 1, size=len(self.backends)
        )
        return timelines

    def _plan_events(self) -> list[ChaosEvent]:
        """Flatten the realized timelines into a chronological plan."""
        abort = self.schedule.on_crash == "abort"
        planned: list[ChaosEvent] = []
        for server_id, timeline in enumerate(self.timelines):
            previous = ServerState.UP
            for begin, _end, state_name, mult in timeline.spans(self.horizon):
                state = ServerState(state_name)
                if begin == 0.0 and state is ServerState.UP:
                    previous = state
                    continue
                if state is ServerState.DOWN:
                    action = "kill" if abort else "stall"
                elif previous is ServerState.DOWN:
                    action = "restart" if abort else "resume"
                else:
                    action = "set-rate"
                planned.append(
                    ChaosEvent(
                        time=begin,
                        server_id=server_id,
                        action=action,
                        factor=0.0 if state is ServerState.DOWN else mult,
                    )
                )
                previous = state
        planned.sort(key=lambda event: (event.time, event.server_id))
        return planned

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Attach impairment and start replaying the event plan."""
        if self._task is not None:
            raise RuntimeError("ChaosOrchestrator is already running")
        if self.impairment is not None and not self.impairment.is_null:
            for server_id, backend in enumerate(self.backends):
                backend.set_impairment(
                    self.impairment,
                    np.random.default_rng(int(self._impair_seeds[server_id])),
                )
        self._task = asyncio.create_task(
            self._run(), name="chaos-orchestrator"
        )

    async def stop(self) -> None:
        """Cancel the replay and detach impairment; backends stay as-is.

        Revival of still-down backends is left to the caller (the
        harness tears everything down anyway; tests may want to inspect
        the faulted state).
        """
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        for backend in self.backends:
            backend.set_impairment(None)

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        for event in self.events:
            deadline = self.clock.wall_deadline(event.time)
            delay = deadline - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await self._apply(event)

    async def _apply(self, event: ChaosEvent) -> None:
        backend = self.backends[event.server_id]
        if event.action == "kill":
            await backend.kill()
        elif event.action == "stall":
            backend.pause()
        elif event.action == "restart":
            backend.set_rate_factor(max(event.factor, 1e-9))
            if backend.killed:
                await backend.restart()
        elif event.action == "resume":
            backend.set_rate_factor(max(event.factor, 1e-9))
            backend.resume()
        else:  # set-rate
            backend.set_rate_factor(max(event.factor, 1e-9))
        applied = self.clock.now()
        record = {
            "t": event.time,
            "applied": applied,
            "server": event.server_id,
            "action": event.action,
            "factor": event.factor,
        }
        self.injected.append(record)
        on_chaos_event = getattr(self.probes, "on_chaos_event", None)
        if on_chaos_event is not None:
            on_chaos_event(
                event.time,
                event.server_id,
                event.action,
                event.factor,
                applied,
            )

    # -- observability ---------------------------------------------------

    @property
    def done(self) -> bool:
        """True once every planned event has been injected."""
        return len(self.injected) >= len(self.events)

    def describe(self) -> dict:
        """JSON-serializable configuration digest (for manifests)."""
        described: dict = {
            "schedule": self.schedule.describe(),
            "seed": self.seed,
            "horizon": self.horizon,
            "planned_events": len(self.events),
        }
        if self.impairment is not None and not self.impairment.is_null:
            described["impairment"] = self.impairment.describe()
        return described
