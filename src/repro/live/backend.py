"""A real TCP worker server with a FIFO queue and stochastic service.

One :class:`BackendServer` is the live counterpart of one simulator
:class:`~repro.cluster.server.Server`: jobs queue FIFO, a single worker
coroutine services them one at a time (``asyncio.sleep`` for a sampled
service time), and an optional bound on the number of jobs in the system
rejects the dispatch that would overflow it — the same semantics the
overload subsystem's bounded queues give the simulator.

The server answers two operations on any connection: ``work`` (enqueue a
job, reply after service — replies may interleave across connections but
service order is strictly FIFO) and ``load`` (report the current number
of jobs in the system, the signal the bulletin board polls).  Load
reports are answered immediately even while jobs are in service, exactly
like a production stats endpoint; their staleness is created *between*
polls, by the board's period, not by the backend.

Chaos hooks (driven by :class:`~repro.live.chaos.ChaosOrchestrator`) map
the simulator's fault model onto process-level faults:

* :meth:`pause` / :meth:`resume` realize a **stall** crash (SIGSTOP
  semantics): the worker and every connection handler freeze, so the
  process answers neither ``work`` nor ``load`` — board polls time out
  and publish hidden staleness — while queued jobs survive to be served
  after :meth:`resume`.
* :meth:`kill` / :meth:`restart` realize an **abort** crash (fail-stop):
  the listener closes, every connection drops, and jobs present at the
  crash instant are discarded; :meth:`restart` comes back empty on the
  same port.
* :meth:`set_rate_factor` realizes a DEGRADED span by scaling the
  service rate, exactly like the timeline's capacity multiplier.
* :attr:`impairment` applies per-link network impairment (delay, jitter,
  connection drops) to every inbound message at the protocol layer.
"""

from __future__ import annotations

import asyncio
import math

import numpy as np

__all__ = ["BackendServer"]

#: How long ``stop(drain=True)`` waits for queued jobs before cancelling.
_DRAIN_TIMEOUT = 10.0


class BackendServer:
    """One FIFO worker behind a localhost TCP listener.

    Parameters
    ----------
    server_id:
        Index reported in load replies (and used in logs/manifests).
    time_unit:
        Wall seconds per mean service time (shared with the experiment's
        :class:`~repro.live.protocol.LiveClock`).
    service_rate:
        Relative capacity; the mean service *wall* time is
        ``time_unit / service_rate``, so heterogeneous fleets can be
        assembled from differently-rated backends.
    service:
        ``"exponential"`` (the paper's M/M/n setting) or
        ``"deterministic"``.
    queue_capacity:
        Bound on jobs in the system (queued + in service); ``None``
        means unbounded.  A full server answers ``work`` immediately
        with ``ok=false, error="queue-full"``.
    seed:
        Seeds this backend's private service-time stream.
    host / port:
        Listen address; port 0 (default) lets the OS pick and exposes
        the result as :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        server_id: int,
        *,
        time_unit: float = 0.01,
        service_rate: float = 1.0,
        service: str = "exponential",
        queue_capacity: int | None = None,
        seed: int | np.random.SeedSequence = 0,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        if not math.isfinite(service_rate) or service_rate <= 0:
            raise ValueError(
                f"service_rate must be positive and finite, got {service_rate}"
            )
        if service not in ("exponential", "deterministic"):
            raise ValueError(
                f"service must be 'exponential' or 'deterministic', "
                f"got {service!r}"
            )
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if not math.isfinite(time_unit) or time_unit <= 0:
            raise ValueError(
                f"time_unit must be positive and finite, got {time_unit}"
            )
        self.server_id = server_id
        self.time_unit = float(time_unit)
        self.service_rate = float(service_rate)
        self.service = service
        self.queue_capacity = queue_capacity
        self.host = host
        self.port = port
        self._rng = np.random.default_rng(seed)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._in_system = 0
        self._served = 0
        self._rejected = 0
        self._discarded = 0
        self._server: asyncio.base_events.Server | None = None
        self._worker: asyncio.Task | None = None
        self._connections: set[asyncio.Task] = set()
        self._sleep_debt = 0.0
        self._rate_factor = 1.0
        # Set == running; cleared by pause().  Every service/reply/protocol
        # step gates on it, so a paused backend is as silent as a stopped
        # process.
        self._running = asyncio.Event()
        self._running.set()
        #: Optional per-link network impairment (set by the chaos
        #: orchestrator); ``None`` keeps the protocol path untouched.
        self.impairment = None
        self._impair_rng: np.random.Generator | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Open the listener (resolving port 0) and start the worker."""
        if self._server is not None:
            raise RuntimeError("BackendServer is already running")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._worker = asyncio.create_task(
            self._work_loop(), name=f"backend-{self.server_id}-worker"
        )

    async def stop(self, drain: bool = True) -> None:
        """Close the listener and wind the worker down without leaks.

        With ``drain=True`` (the default) jobs already accepted are
        served before the worker stops — the graceful path; ``False``
        abandons the queue immediately.  Either way every connection
        task is cancelled and awaited, so no pending-task warnings can
        escape this server.  A paused backend is resumed first (a
        stalled queue would otherwise block the drain for its full
        timeout), and stopping a killed backend is a no-op.
        """
        self._running.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain and self._in_system > 0:
            try:
                await asyncio.wait_for(
                    self._queue.join(), timeout=_DRAIN_TIMEOUT
                )
            except (asyncio.TimeoutError, TimeoutError):
                pass
        await self._halt_tasks()

    async def _halt_tasks(self) -> None:
        """Cancel and await the worker and every connection task."""
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
            self._worker = None
        # Snapshot once: a cancelled handler discards itself from
        # _connections on its way out, so re-listing would skip it and
        # leak the task mid-teardown.
        connections = list(self._connections)
        for task in connections:
            task.cancel()
        for task in connections:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._connections.clear()

    # -- chaos lifecycle -------------------------------------------------

    def pause(self) -> None:
        """Stall the process (SIGSTOP semantics): freeze every coroutine.

        The worker stops starting jobs and delivering replies, and the
        connection handlers stop answering ``work``/``load`` — in-flight
        polls and requests time out at their callers.  Queued jobs
        survive; :meth:`resume` picks up exactly where service stopped.
        """
        self._running.clear()

    def resume(self) -> None:
        """Resume a stalled process; queued jobs are served normally."""
        self._running.set()

    @property
    def paused(self) -> bool:
        return not self._running.is_set()

    async def kill(self) -> None:
        """Fail-stop crash (abort semantics): die abruptly, losing state.

        The listener closes, every open connection is dropped without
        ceremony (peers see EOF/reset, exactly like a SIGKILLed
        process), and the jobs present in the system are discarded —
        their reply channels are dead anyway.  :meth:`restart` brings
        the server back empty on the same port.
        """
        self._running.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._halt_tasks()
        self._discarded += self._in_system
        self._in_system = 0
        self._queue = asyncio.Queue()
        self._sleep_debt = 0.0

    @property
    def killed(self) -> bool:
        """True between :meth:`kill` and :meth:`restart` (or before start)."""
        return self._server is None

    async def restart(self) -> None:
        """Bring a killed backend back up, empty, on its original port."""
        if self._server is not None:
            raise RuntimeError("BackendServer is already running")
        await self.start()

    def set_rate_factor(self, factor: float) -> None:
        """Scale the service rate (DEGRADED spans use factors in (0, 1])."""
        if not math.isfinite(factor) or factor <= 0:
            raise ValueError(
                f"rate factor must be positive and finite, got {factor}"
            )
        self._rate_factor = float(factor)

    def set_impairment(
        self, impairment, rng: np.random.Generator | None = None
    ) -> None:
        """Attach (or clear) per-link network impairment.

        ``impairment`` is a :class:`~repro.live.chaos.NetworkImpairment`
        (or ``None``); ``rng`` drives its delay jitter and drop draws.
        """
        if impairment is not None and rng is None:
            raise ValueError("impairment needs a random generator")
        self.impairment = impairment
        self._impair_rng = rng

    # -- introspection ---------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Jobs in the system right now (queued + in service)."""
        return self._in_system

    @property
    def served(self) -> int:
        """Jobs completed since start."""
        return self._served

    @property
    def rejected(self) -> int:
        """Dispatches refused by the bounded queue since start."""
        return self._rejected

    @property
    def discarded(self) -> int:
        """Jobs lost to :meth:`kill` crashes since start."""
        return self._discarded

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def describe(self) -> dict:
        """JSON-serializable configuration digest (for manifests)."""
        return {
            "server_id": self.server_id,
            "service": self.service,
            "service_rate": self.service_rate,
            "queue_capacity": self.queue_capacity,
        }

    # -- internals -------------------------------------------------------

    def _service_time(self) -> float:
        """One sampled service time in wall seconds."""
        mean = self.time_unit / (self.service_rate * self._rate_factor)
        if self.service == "deterministic":
            return mean
        return float(self._rng.exponential(mean))

    async def _work_loop(self) -> None:
        """The single server process: FIFO, one job at a time.

        ``asyncio.sleep(s)`` systematically overshoots by the event
        loop's timer granularity (hundreds of microseconds), which would
        inflate every service time and bias queueing upward relative to
        the simulator.  The worker therefore carries the overshoot as a
        debt and pays it down from subsequent sleeps, so long-run busy
        time tracks the *sampled* service times.  The debt is clamped to
        ``[0, mean]``: overshoot accrued before an idle period must not
        eat a later busy period's work, a stall spent parked on the
        running gate must not be mistaken for timer overshoot (phantom
        debt the worker would "repay" by racing through its queue on
        resume), and debt can never go negative — overshoot is measured
        strictly around the sleep, with both gates outside the window.
        """
        from repro.live.protocol import send_message

        loop = asyncio.get_running_loop()
        while True:
            job_id, writer = await self._queue.get()
            try:
                # Stall gate: a paused worker starts no service.
                await self._running.wait()
                # Per-iteration: a DEGRADED span may have rescaled the
                # rate (and therefore the debt cap) since the last job.
                mean_wall = self.time_unit / (
                    self.service_rate * self._rate_factor
                )
                sampled = self._service_time()
                corrected = max(0.0, sampled - self._sleep_debt)
                self._sleep_debt = max(
                    0.0, self._sleep_debt - (sampled - corrected)
                )
                before = loop.time()
                await asyncio.sleep(corrected)
                overshoot = loop.time() - before - corrected
                self._sleep_debt = min(
                    mean_wall,
                    max(0.0, self._sleep_debt + max(0.0, overshoot)),
                )
                # Stall gate: a paused worker delivers no replies — a
                # pause landing mid-sleep holds the completion here, and
                # the wait is outside the overshoot window above.
                await self._running.wait()
                self._in_system -= 1
                self._served += 1
                send_message(
                    writer,
                    {
                        "op": "done",
                        "id": job_id,
                        "ok": True,
                        "queue": self._in_system,
                    },
                )
            finally:
                self._queue.task_done()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            await self._serve_connection(reader, writer)
        except asyncio.CancelledError:
            # stop() cancels connection readers; finishing cleanly keeps
            # the streams-module task wrapper from re-raising into the
            # event loop.
            pass
        finally:
            writer.close()
            try:
                # CancelledError here means stop() caught this handler
                # already in teardown; absorbing it keeps the task from
                # ending cancelled (the streams accept-callback would
                # re-raise that into the event loop).
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass
            # Deregister only after the last await: once removed from
            # _connections the task must have no remaining suspension
            # points, or stop() could miss it mid-teardown.
            self._connections.discard(task)

    async def _impair_inbound(self, writer: asyncio.StreamWriter) -> bool:
        """Apply network impairment to one inbound message.

        Returns ``False`` when the draw says the connection drops (the
        transport is aborted so the peer sees a reset, like a flaky
        middlebox); otherwise sleeps out the sampled extra latency and
        returns ``True``.
        """
        impairment = self.impairment
        rng = self._impair_rng
        if impairment is None or rng is None:
            return True
        if impairment.drop_rate > 0 and rng.random() < impairment.drop_rate:
            writer.transport.abort()
            return False
        delay = impairment.delay
        if impairment.jitter > 0:
            delay += impairment.jitter * float(rng.uniform(-1.0, 1.0))
        if delay > 0:
            await asyncio.sleep(self.time_unit * delay)
        return True

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        from repro.live.protocol import read_message, send_message

        loop = asyncio.get_running_loop()
        while True:
            try:
                message = await read_message(reader)
            except ValueError:
                send_message(writer, {"op": "error", "error": "bad-message"})
                await writer.drain()
                return
            if message is None:
                return
            # Stall gate: a paused process answers nothing — the peer's
            # request (or the board's poll) times out on its side.
            await self._running.wait()
            if self.impairment is not None:
                if not await self._impair_inbound(writer):
                    return
            op = message.get("op")
            if op == "work":
                job_id = message.get("id")
                if (
                    self.queue_capacity is not None
                    and self._in_system >= self.queue_capacity
                ):
                    self._rejected += 1
                    send_message(
                        writer,
                        {
                            "op": "done",
                            "id": job_id,
                            "ok": False,
                            "error": "queue-full",
                            "queue": self._in_system,
                        },
                    )
                else:
                    self._in_system += 1
                    self._queue.put_nowait((job_id, writer))
            elif op == "load":
                send_message(
                    writer,
                    {
                        "op": "load",
                        "server": self.server_id,
                        "queue": self._in_system,
                        "served": self._served,
                        "t": loop.time(),
                    },
                )
            else:
                send_message(
                    writer,
                    {"op": "error", "error": f"unknown-op:{op}"},
                )
            await writer.drain()
