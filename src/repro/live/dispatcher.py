"""The asyncio dispatcher: an unmodified core Policy fronting real sockets.

For each incoming request the dispatcher asks the bulletin board for the
current (stale) :class:`~repro.core.views.LoadView`, runs the overload
subsystem's admission check, lets the configured
:class:`~repro.core.policy.Policy` pick a backend — exactly the object
the simulators drive, consuming exactly the view type they produce — and
forwards the job over a persistent per-backend connection.  Circuit
breakers (:class:`~repro.overload.breaker.BreakerBoard`) guard backends
whose bounded queues reject; a request whose chosen backend is
breaker-blocked is re-routed to the least-loaded unblocked backend *by
the stale board's lights* (deterministically, lowest index on ties), the
same fallback contract the simulator's retry path uses.

Requests are served concurrently (one task per request, pipelined on the
backend connections), so dispatch decisions interleave with completions
exactly as they would in production — the event-loop scheduling itself
is part of what the sim-vs-wire comparison validates.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.policy import Policy
from repro.core.rate_estimators import ExactRate, RateEstimator
from repro.faults.retry import RetryPolicy
from repro.live.board import BulletinBoard
from repro.live.protocol import LiveClock, read_message, send_message
from repro.overload.admission import AdmissionPolicy
from repro.overload.breaker import BreakerBoard, BreakerConfig

__all__ = [
    "DispatcherStats",
    "HealthConfig",
    "LiveDispatcher",
    "parse_health_spec",
]

#: How long ``stop()`` waits for in-flight requests before cancelling.
_DRAIN_TIMEOUT = 10.0


@dataclass(frozen=True)
class HealthConfig:
    """Active health checking: probe backends, drain the dead, rejoin.

    All times are in normalized units (mean service times).  Every
    ``interval`` the dispatcher probes each backend on a fresh
    connection with a ``timeout``-bounded load request; ``down_after``
    consecutive failures drain the backend (the policy stops selecting
    it; requests already in flight still complete) and ``up_after``
    consecutive successes rejoin it.  ``None`` on the dispatcher keeps
    health checking off — the simulator has no analogue, so default
    faulted comparisons run without it.
    """

    interval: float = 1.0
    timeout: float = 0.5
    down_after: int = 2
    up_after: int = 1

    def __post_init__(self) -> None:
        if not math.isfinite(self.interval) or self.interval <= 0:
            raise ValueError(
                f"health interval must be positive, got {self.interval}"
            )
        if not math.isfinite(self.timeout) or self.timeout <= 0:
            raise ValueError(
                f"health timeout must be positive, got {self.timeout}"
            )
        if self.down_after < 1 or self.up_after < 1:
            raise ValueError(
                "health down_after/up_after must be >= 1, got "
                f"{self.down_after}/{self.up_after}"
            )

    def describe(self) -> dict:
        """JSON-serializable configuration digest (for manifests)."""
        return {
            "interval": self.interval,
            "timeout": self.timeout,
            "down_after": self.down_after,
            "up_after": self.up_after,
        }


def parse_health_spec(spec: str) -> HealthConfig:
    """Parse ``"interval=1,timeout=0.5,down_after=2,up_after=1"``.

    The bare string ``"on"`` (or an empty spec) selects every default.
    """
    text = spec.strip()
    if text in ("", "on"):
        return HealthConfig()
    kwargs: dict = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad health spec item {part!r} (expected key=value)"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        if key in ("interval", "timeout"):
            kwargs[key] = float(value)
        elif key in ("down_after", "up_after"):
            kwargs[key] = int(value)
        else:
            raise ValueError(f"unknown health spec key {key!r}")
    return HealthConfig(**kwargs)


@dataclass
class DispatcherStats:
    """Counters accumulated over one dispatcher lifetime.

    ``latencies`` holds per-completed-request response times in
    normalized units (mean service times), in completion order.
    """

    offered: int = 0
    completed: int = 0
    shed: int = 0
    rejected: int = 0
    breaker_blocked: int = 0
    retries: int = 0
    failed: int = 0
    dispatch_counts: np.ndarray | None = None
    latencies: list = field(default_factory=list)

    @property
    def dropped(self) -> int:
        """Requests refused for good (shed or rejected, never served)."""
        return self.shed + self.rejected

    @property
    def goodput(self) -> float:
        """Fraction of offered requests that completed service."""
        return self.completed / self.offered if self.offered else 0.0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else float("nan")

    def summary(self) -> dict:
        """JSON-serializable digest (for manifests).

        ``retries``/``failed`` appear only when nonzero: fault-free runs
        must stay byte-identical to their pre-chaos manifests.
        """
        summary = {
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "breaker_blocked": self.breaker_blocked,
            "goodput": self.goodput,
            "mean_latency": self.mean_latency,
            "dispatch_counts": (
                self.dispatch_counts.tolist()
                if self.dispatch_counts is not None
                else None
            ),
        }
        if self.retries:
            summary["retries"] = self.retries
        if self.failed:
            summary["failed"] = self.failed
        return summary


class _BackendLink:
    """One persistent, pipelined connection to one backend.

    Work messages are tagged with a sequence number; a reader task
    resolves the matching future when the backend's (possibly reordered)
    reply arrives.  Losing the connection fails every pending future —
    the dispatcher surfaces those as rejections rather than hanging.
    """

    def __init__(self, server_id: int, host: str, port: int) -> None:
        self.server_id = server_id
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._next_id = 0
        # Serializes reconnection: concurrent retrying requests must not
        # interleave close/connect and orphan each other's reader tasks.
        self._conn_lock = asyncio.Lock()

    async def connect(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        self._reader, self._writer = reader, writer
        self._reader_task = asyncio.create_task(
            self._read_loop(reader),
            name=f"backend-link-{self.server_id}-reader",
        )

    @property
    def connected(self) -> bool:
        """A live reader means the connection has not dropped on us."""
        return (
            self._reader_task is not None
            and not self._reader_task.done()
            and self._writer is not None
            and not self._writer.is_closing()
        )

    async def ensure_connected(self, timeout: float | None = None) -> bool:
        """Redial a dropped connection; ``False`` when the dial fails.

        This is how the dispatcher rediscovers a restarted backend: the
        old stream died with the crash, the next attempt redials the
        pinned port.  A backend still down simply refuses the dial.
        """
        async with self._conn_lock:
            if self.connected:
                return True
            await self.close()
            try:
                await asyncio.wait_for(self.connect(), timeout=timeout)
            except (OSError, asyncio.TimeoutError, TimeoutError):
                await self.close()
                return False
            return True

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
        self._reader = None
        self._fail_pending()

    async def submit(
        self, timeout: float | None = None, alive_check=None
    ) -> dict:
        """Send one job; await its reply (``{"ok": ..., "queue": ...}``).

        Never raises on backend trouble: an unreachable backend, a lost
        connection and an expired wait all come back as ``ok=False``
        replies (errors ``backend-unreachable`` /
        ``backend-connection-lost`` / ``timeout``), so callers decide
        retry-vs-refuse without exception plumbing — and an abandoned
        task can never leak an unretrieved exception into the loop.

        ``alive_check`` disambiguates silence: a reply can be late
        because the backend is *dead* or merely *queued*, and only the
        first is the simulator's "discovery" event.  When the wait
        expires and ``await alive_check()`` answers True, the wait is
        re-armed instead of failing — a slow backend is not a crashed
        one.  Only a failed check (or no checker) turns silence into a
        ``timeout`` reply.
        """
        if self._writer is None or self._writer.is_closing():
            return {"ok": False, "error": "backend-unreachable"}
        job_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[job_id] = future
        try:
            send_message(self._writer, {"op": "work", "id": job_id})
            await self._writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            self._pending.pop(job_id, None)
            return {"ok": False, "error": "backend-unreachable"}
        try:
            while True:
                try:
                    # shield: an expired wait must not kill the future —
                    # a True alive_check re-awaits the same reply.
                    return await asyncio.wait_for(
                        asyncio.shield(future), timeout=timeout
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    if alive_check is not None and await alive_check():
                        continue
                    return {"ok": False, "error": "timeout"}
        finally:
            self._pending.pop(job_id, None)

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        while True:
            try:
                message = await read_message(reader)
            except ValueError:
                message = None
            if message is None:
                self._fail_pending()
                return
            future = self._pending.get(message.get("id"))
            if future is not None and not future.done():
                future.set_result(message)

    def _fail_pending(self) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_result(
                    {"ok": False, "error": "backend-connection-lost"}
                )
        self._pending.clear()


class LiveDispatcher:
    """The load balancer process: board + policy + overload machinery.

    Parameters
    ----------
    addresses:
        Backend ``(host, port)`` pairs in server-id order.
    board:
        A started (or about-to-be-started) :class:`BulletinBoard`.
    policy:
        An *unbound* :class:`~repro.core.policy.Policy`; the dispatcher
        binds it to the cluster size, its private random stream and the
        rate estimator, exactly as ``ClusterSimulation`` would.
    clock:
        The experiment's shared clock.
    rate_estimator:
        Optional λ estimator (``None`` keeps the policy's default
        :class:`~repro.core.rate_estimators.ExactRate`); the dispatcher
        feeds it every arrival via ``observe_arrival``.
    true_rate:
        The configured per-server arrival rate, passed to the
        estimator's ``bind`` (the oracle value for ``ExactRate``).
    admission:
        Optional :class:`~repro.overload.admission.AdmissionPolicy`
        consulted before dispatch with the same stale view.
    breaker_config:
        Optional :class:`~repro.overload.breaker.BreakerConfig`; enables
        per-server circuit breakers fed by queue-full rejections.
    retry:
        Optional :class:`~repro.faults.retry.RetryPolicy` — the same
        object the simulator's fault path uses.  When set, a request
        whose backend cannot answer (connection refused/lost, or silence
        past ``retry.timeout`` normalized units *and* a failed liveness
        probe — a slow backend is not a crashed one) is re-dispatched
        to the least-loaded non-excluded backend by the stale board's
        lights, after the full discovery timeout plus capped exponential
        backoff — the simulator's exact penalty accounting, billed in
        real wall-clock sleeps.  ``None`` keeps the single-shot PR 9
        behavior.
    health:
        Optional :class:`HealthConfig`; enables active health probes
        with drain/rejoin.  Independent of ``retry`` (retries *react* to
        a discovered crash; health checks *anticipate* the next one).
    probes:
        Optional object with ``on_dispatch(now, client_id, server_id,
        queue_length)`` and ``on_job_complete(server_id, completion_time,
        response_time)`` hooks (e.g. :class:`repro.obs.live.LiveTrace`).
        ``on_retry(now, client_id, server_id, attempt)`` and
        ``on_health(now, server_id, healthy)`` are consulted via
        ``getattr`` so probe objects only implement what they care
        about.
    """

    def __init__(
        self,
        addresses: Sequence[tuple[str, int]],
        board: BulletinBoard,
        policy: Policy,
        clock: LiveClock,
        *,
        rate_estimator: RateEstimator | None = None,
        true_rate: float = 1.0,
        admission: AdmissionPolicy | None = None,
        breaker_config: BreakerConfig | None = None,
        retry: RetryPolicy | None = None,
        health: HealthConfig | None = None,
        probes=None,
        seed: int | np.random.SeedSequence = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float | None = 60.0,
    ) -> None:
        if not addresses:
            raise ValueError("LiveDispatcher needs at least one backend")
        self.board = board
        self.policy = policy
        self.clock = clock
        self.admission = admission
        self.retry = retry
        self.health = health
        self.probes = probes
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.stats = DispatcherStats(
            dispatch_counts=np.zeros(len(addresses), dtype=np.int64)
        )
        seed_seq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        # spawn(4), not (3): SeedSequence children are keyed by spawn
        # order, so appending the retry stream keeps the first three
        # children — and every pre-chaos random draw — bit-identical.
        policy_seed, admission_seed, breaker_seed, retry_seed = seed_seq.spawn(
            4
        )
        self._retry_rng = np.random.default_rng(retry_seed)
        self._links = [
            _BackendLink(i, host_, port_)
            for i, (host_, port_) in enumerate(addresses)
        ]
        rng = np.random.default_rng(policy_seed)
        # Mirror the simulator's default: an oracle estimator bound to
        # the true per-server rate when no explicit estimator is given.
        if rate_estimator is None:
            rate_estimator = ExactRate()
        rate_estimator.bind(len(addresses), true_rate)
        self._estimator = rate_estimator
        policy.bind(len(addresses), rng, rate_estimator)
        if admission is not None:
            admission.bind(len(addresses), np.random.default_rng(admission_seed))
        self.breakers = (
            BreakerBoard(
                len(addresses),
                breaker_config,
                rng=np.random.default_rng(breaker_seed),
            )
            if breaker_config is not None
            else None
        )
        self._server: asyncio.base_events.Server | None = None
        self._in_flight: set[asyncio.Task] = set()
        self._connections: set[asyncio.Task] = set()
        self._accepting = True
        self._unhealthy: set[int] = set()
        self._health_task: asyncio.Task | None = None
        self._health_failures = [0] * len(addresses)
        self._health_successes = [0] * len(addresses)

    @property
    def num_servers(self) -> int:
        return len(self._links)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Connect every backend link and open the client listener."""
        if self._server is not None:
            raise RuntimeError("LiveDispatcher is already running")
        for link in self._links:
            await link.connect()
        self._accepting = True
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.health is not None:
            self._health_task = asyncio.create_task(
                self._health_loop(), name="dispatcher-health-checker"
            )

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close links.

        Ordering matters: the listener closes first (no new work), then
        every in-flight request task is awaited (draining), and only
        then are the backend links torn down — so no accepted request is
        ever abandoned by its own dispatcher.
        """
        self._accepting = False
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._in_flight:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*self._in_flight, return_exceptions=True),
                    timeout=_DRAIN_TIMEOUT,
                )
            except (asyncio.TimeoutError, TimeoutError):
                for task in self._in_flight:
                    task.cancel()
                await asyncio.gather(*self._in_flight, return_exceptions=True)
        # Snapshot once: a cancelled handler discards itself from
        # _connections on its way out, so re-listing would skip it and
        # leak the task mid-teardown.
        connections = list(self._connections)
        for task in connections:
            task.cancel()
        for task in connections:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._connections.clear()
        for link in self._links:
            await link.close()

    # -- health checking -------------------------------------------------

    @property
    def unhealthy(self) -> frozenset[int]:
        """Backends currently drained by the health checker."""
        return frozenset(self._unhealthy)

    async def _probe_backend(self, server_id: int) -> bool:
        """One health probe; ``True`` == answered inside the timeout."""
        return await self._probe_load(
            server_id, self.clock.to_wall(self.health.timeout)
        )

    async def _probe_load(self, server_id: int, timeout: float) -> bool:
        """Load-probe a backend on a fresh connection.

        A fresh dial per probe keeps a stalled backend's half-open
        streams from wedging the caller, and doubles as the liveness
        signal itself: a killed backend refuses the dial, a stalled one
        accepts but never answers inside the timeout.  Shared by the
        health checker and the retry path's silence disambiguation.
        """
        link = self._links[server_id]
        writer = None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(link.host, link.port),
                timeout=timeout,
            )
            send_message(writer, {"op": "load"})
            await writer.drain()
            reply = await asyncio.wait_for(
                read_message(reader), timeout=timeout
            )
            return reply is not None and reply.get("op") == "load"
        except (OSError, asyncio.TimeoutError, TimeoutError, ValueError):
            return False
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass

    def _record_health(self, server_id: int, answered: bool) -> None:
        """Update the consecutive counters; drain or rejoin on threshold."""
        if answered:
            self._health_failures[server_id] = 0
            self._health_successes[server_id] += 1
            if (
                server_id in self._unhealthy
                and self._health_successes[server_id] >= self.health.up_after
            ):
                self._unhealthy.discard(server_id)
                self._notify_health(server_id, healthy=True)
        else:
            self._health_successes[server_id] = 0
            self._health_failures[server_id] += 1
            if (
                server_id not in self._unhealthy
                and self._health_failures[server_id] >= self.health.down_after
            ):
                self._unhealthy.add(server_id)
                self._notify_health(server_id, healthy=False)

    def _notify_health(self, server_id: int, healthy: bool) -> None:
        on_health = getattr(self.probes, "on_health", None)
        if on_health is not None:
            on_health(self.clock.now(), server_id, healthy)

    async def _health_loop(self) -> None:
        """Probe every backend each interval; maintain the drain set."""
        interval = self.clock.to_wall(self.health.interval)
        while True:
            await asyncio.sleep(interval)
            results = await asyncio.gather(
                *(self._probe_backend(s) for s in range(self.num_servers))
            )
            for server_id, answered in enumerate(results):
                self._record_health(server_id, answered)

    # -- request path ----------------------------------------------------

    def _avoided(self, now: float) -> set[int]:
        """Backends no fresh dispatch should target right now."""
        avoided = set(self._unhealthy)
        if self.breakers is not None:
            avoided.update(
                s
                for s in range(self.num_servers)
                if self.breakers.blocks(s, now)
            )
        return avoided

    def _least_loaded(self, loads, excluded: set[int]) -> int | None:
        """The simulator's retry target: least reported load, lowest id.

        Evicted (``inf``) entries lose to any finite load; if every
        candidate is evicted the lowest-id one is still returned —
        refusing service because the *board* is dark would be worse than
        probing.
        """
        best = None
        best_load = math.inf
        for candidate in range(self.num_servers):
            if candidate in excluded:
                continue
            load = loads[candidate]
            if load < best_load:
                best_load = load
                best = candidate
            elif best is None:
                best = candidate
        return best

    def select_server(self, view) -> tuple[int | None, bool]:
        """Policy selection plus breaker/health re-routing for one view.

        Returns ``(server_id, blocked)``: ``server_id`` is ``None`` when
        every backend is breaker-blocked or drained (the request must be
        refused); ``blocked`` reports whether the policy's first choice
        was overridden.  Exposed separately from the socket path so
        tests can drive the decision logic synchronously.
        """
        server = self.policy.select(view)
        breaker_ok = self.breakers is None or self.breakers.allow(
            server, view.now
        )
        if breaker_ok and server not in self._unhealthy:
            return server, False
        avoided = self._avoided(view.now) | {server}
        if len(avoided) >= self.num_servers:
            return None, True
        best = self._least_loaded(view.loads, avoided)
        return best, True

    async def _serve_request(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        request_id = request.get("id")
        arrival = self.clock.now()
        self.stats.offered += 1
        if self._estimator is not None:
            self._estimator.observe_arrival(arrival)
        view = self.board.view(int(request.get("client", 0)), arrival)
        if self.admission is not None and not self.admission.admit(view):
            self.stats.shed += 1
            send_message(
                writer,
                {"op": "done", "id": request_id, "ok": False, "error": "shed"},
            )
            return
        server, blocked = self.select_server(view)
        if blocked:
            self.stats.breaker_blocked += 1
        if server is None:
            self.stats.rejected += 1
            send_message(
                writer,
                {
                    "op": "done",
                    "id": request_id,
                    "ok": False,
                    "error": "breaker-open",
                },
            )
            return
        self.stats.dispatch_counts[server] += 1
        if self.probes is not None:
            self.probes.on_dispatch(
                arrival,
                int(request.get("client", 0)),
                server,
                int(view.loads[server]) + 1,
            )
        client_id = int(request.get("client", 0))
        reply, server = await self._dispatch_with_retries(server, client_id)
        done = self.clock.now()
        if reply.get("ok"):
            latency = done - arrival
            self.stats.completed += 1
            self.stats.latencies.append(latency)
            if self.breakers is not None:
                self.breakers.record_success(server, done)
            if self.probes is not None:
                self.probes.on_job_complete(server, done, latency)
            send_message(
                writer,
                {
                    "op": "done",
                    "id": request_id,
                    "ok": True,
                    "server": server,
                    "latency": latency,
                },
            )
        else:
            error = reply.get("error", "rejected")
            if error == "retries-exhausted":
                # The simulator books exhausted retries as failures, not
                # queue rejections; mirror that split.  The retry loop
                # already charged each discovery to the breaker.
                self.stats.failed += 1
            else:
                self.stats.rejected += 1
                if self.breakers is not None:
                    self.breakers.record_failure(server, done)
            send_message(
                writer,
                {
                    "op": "done",
                    "id": request_id,
                    "ok": False,
                    "server": server,
                    "error": error,
                },
            )

    async def _dispatch_with_retries(
        self, server: int, client_id: int
    ) -> tuple[dict, int]:
        """Submit to ``server``; with a retry policy, survive crashes.

        Mirrors the simulator's faulted dispatch path: a connection-
        level failure (refused dial, lost stream) or confirmed silence
        (no reply past ``retry.timeout`` *and* a failed fresh-connection
        liveness probe) discovers the crash the hard way, bills the
        *full* discovery timeout (a fast TCP reset sleeps out the
        remainder — the simulator charges a fixed cost, so must we)
        plus capped exponential backoff, trips the breaker, excludes the
        server (resetting the exclusion set once it covers everyone) and
        re-dispatches to the least-loaded non-excluded backend by the
        stale board's lights.  Queue-full rejections are refused, never
        retried — they already have their own storm machinery.

        One deliberate infidelity, documented in DESIGN.md §15: stalled
        (not killed) backends accept the probe dial and only fail it by
        timeout, so stall-mode discovery costs up to one extra
        ``retry.timeout`` beyond the simulator's fixed charge; and a
        request abandoned on a stalled backend is still served by it
        after resume (the wire protocol has no cancel), where the
        simulator's redispatched jobs never were — phantom work the
        board's own staleness then steers around.
        """
        retry = self.retry
        if retry is None:
            link = self._links[server]
            if not link.connected:
                # Heal a link lost to network impairment even without a
                # retry policy: the single shot deserves a live socket.
                await link.ensure_connected(timeout=self.request_timeout)
            reply = await link.submit(timeout=self.request_timeout)
            return reply, server
        loop = asyncio.get_running_loop()
        timeout_wall = self.clock.to_wall(retry.timeout)
        excluded: set[int] = set()
        attempt = 0
        while True:
            link = self._links[server]
            started = loop.time()
            if await link.ensure_connected(timeout=timeout_wall):
                remaining = max(
                    0.001, timeout_wall - (loop.time() - started)
                )
                probe = server

                async def _alive() -> bool:
                    return await self._probe_load(probe, timeout_wall)

                reply = await link.submit(
                    timeout=remaining, alive_check=_alive
                )
            else:
                reply = {"ok": False, "error": "backend-unreachable"}
            if reply.get("ok") or reply.get("error") == "queue-full":
                return reply, server
            now = self.clock.now()
            if self.breakers is not None:
                self.breakers.record_failure(server, now)
            if retry.max_attempts and attempt >= retry.max_attempts:
                return {"ok": False, "error": "retries-exhausted"}, server
            attempt += 1
            excluded.add(server)
            if len(excluded) >= self.num_servers:
                excluded = set()
            self.stats.retries += 1
            on_retry = getattr(self.probes, "on_retry", None)
            if on_retry is not None:
                on_retry(now, client_id, server, attempt)
            backoff = retry.backoff_delay(attempt, self._retry_rng)
            penalty_wall = max(
                0.0, timeout_wall - (loop.time() - started)
            ) + self.clock.to_wall(backoff)
            if penalty_wall > 0:
                await asyncio.sleep(penalty_wall)
            view = self.board.view(client_id, self.clock.now())
            target = self._least_loaded(
                view.loads, excluded | self._unhealthy
            )
            if target is None:
                # Everything is excluded or drained; fall back to the
                # bare exclusion set (the simulator's set can never
                # cover the fleet after the reset above).
                target = self._least_loaded(view.loads, excluded)
            server = target if target is not None else server

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ValueError:
                    send_message(
                        writer, {"op": "error", "error": "bad-message"}
                    )
                    break
                if request is None:
                    break
                if not self._accepting:
                    send_message(
                        writer,
                        {
                            "op": "done",
                            "id": request.get("id"),
                            "ok": False,
                            "error": "shutting-down",
                        },
                    )
                    continue
                serve = asyncio.create_task(
                    self._serve_request(request, writer),
                    name=f"serve-{request.get('id')}",
                )
                self._in_flight.add(serve)
                serve.add_done_callback(self._in_flight.discard)
                await writer.drain()
        except asyncio.CancelledError:
            # stop() cancels connection readers after draining in-flight
            # work; finishing cleanly here keeps the streams-module task
            # wrapper from re-raising into the event loop.
            pass
        finally:
            # Never close the client connection while its own requests
            # are still in service: completions must be deliverable.
            pending = [t for t in self._in_flight if not t.done()]
            if pending:
                try:
                    await asyncio.gather(*pending, return_exceptions=True)
                except asyncio.CancelledError:
                    pass
            writer.close()
            try:
                # CancelledError here means stop() caught this handler
                # already in teardown; absorbing it keeps the task from
                # ending cancelled (the streams accept-callback would
                # re-raise that into the event loop).
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass
            # Deregister only after the last await: once removed from
            # _connections the task must have no remaining suspension
            # points, or stop() could miss it mid-teardown.
            self._connections.discard(task)
