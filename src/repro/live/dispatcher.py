"""The asyncio dispatcher: an unmodified core Policy fronting real sockets.

For each incoming request the dispatcher asks the bulletin board for the
current (stale) :class:`~repro.core.views.LoadView`, runs the overload
subsystem's admission check, lets the configured
:class:`~repro.core.policy.Policy` pick a backend — exactly the object
the simulators drive, consuming exactly the view type they produce — and
forwards the job over a persistent per-backend connection.  Circuit
breakers (:class:`~repro.overload.breaker.BreakerBoard`) guard backends
whose bounded queues reject; a request whose chosen backend is
breaker-blocked is re-routed to the least-loaded unblocked backend *by
the stale board's lights* (deterministically, lowest index on ties), the
same fallback contract the simulator's retry path uses.

Requests are served concurrently (one task per request, pipelined on the
backend connections), so dispatch decisions interleave with completions
exactly as they would in production — the event-loop scheduling itself
is part of what the sim-vs-wire comparison validates.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.policy import Policy
from repro.core.rate_estimators import ExactRate, RateEstimator
from repro.live.board import BulletinBoard
from repro.live.protocol import LiveClock, read_message, send_message
from repro.overload.admission import AdmissionPolicy
from repro.overload.breaker import BreakerBoard, BreakerConfig

__all__ = ["DispatcherStats", "LiveDispatcher"]

#: How long ``stop()`` waits for in-flight requests before cancelling.
_DRAIN_TIMEOUT = 10.0


@dataclass
class DispatcherStats:
    """Counters accumulated over one dispatcher lifetime.

    ``latencies`` holds per-completed-request response times in
    normalized units (mean service times), in completion order.
    """

    offered: int = 0
    completed: int = 0
    shed: int = 0
    rejected: int = 0
    breaker_blocked: int = 0
    dispatch_counts: np.ndarray | None = None
    latencies: list = field(default_factory=list)

    @property
    def dropped(self) -> int:
        """Requests refused for good (shed or rejected, never served)."""
        return self.shed + self.rejected

    @property
    def goodput(self) -> float:
        """Fraction of offered requests that completed service."""
        return self.completed / self.offered if self.offered else 0.0

    @property
    def mean_latency(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else float("nan")

    def summary(self) -> dict:
        """JSON-serializable digest (for manifests)."""
        return {
            "offered": self.offered,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "breaker_blocked": self.breaker_blocked,
            "goodput": self.goodput,
            "mean_latency": self.mean_latency,
            "dispatch_counts": (
                self.dispatch_counts.tolist()
                if self.dispatch_counts is not None
                else None
            ),
        }


class _BackendLink:
    """One persistent, pipelined connection to one backend.

    Work messages are tagged with a sequence number; a reader task
    resolves the matching future when the backend's (possibly reordered)
    reply arrives.  Losing the connection fails every pending future —
    the dispatcher surfaces those as rejections rather than hanging.
    """

    def __init__(self, server_id: int, host: str, port: int) -> None:
        self.server_id = server_id
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None
        self._next_id = 0

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._reader_task = asyncio.create_task(
            self._read_loop(), name=f"backend-link-{self.server_id}-reader"
        )

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
        self._fail_pending()

    async def submit(self, timeout: float | None = None) -> dict:
        """Send one job; await its reply (``{"ok": ..., "queue": ...}``)."""
        assert self._writer is not None, "link not connected"
        job_id = self._next_id
        self._next_id += 1
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[job_id] = future
        send_message(self._writer, {"op": "work", "id": job_id})
        await self._writer.drain()
        try:
            return await asyncio.wait_for(future, timeout=timeout)
        finally:
            self._pending.pop(job_id, None)

    async def _read_loop(self) -> None:
        assert self._reader is not None
        while True:
            try:
                message = await read_message(self._reader)
            except ValueError:
                message = None
            if message is None:
                self._fail_pending()
                return
            future = self._pending.get(message.get("id"))
            if future is not None and not future.done():
                future.set_result(message)

    def _fail_pending(self) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_result(
                    {"ok": False, "error": "backend-connection-lost"}
                )
        self._pending.clear()


class LiveDispatcher:
    """The load balancer process: board + policy + overload machinery.

    Parameters
    ----------
    addresses:
        Backend ``(host, port)`` pairs in server-id order.
    board:
        A started (or about-to-be-started) :class:`BulletinBoard`.
    policy:
        An *unbound* :class:`~repro.core.policy.Policy`; the dispatcher
        binds it to the cluster size, its private random stream and the
        rate estimator, exactly as ``ClusterSimulation`` would.
    clock:
        The experiment's shared clock.
    rate_estimator:
        Optional λ estimator (``None`` keeps the policy's default
        :class:`~repro.core.rate_estimators.ExactRate`); the dispatcher
        feeds it every arrival via ``observe_arrival``.
    true_rate:
        The configured per-server arrival rate, passed to the
        estimator's ``bind`` (the oracle value for ``ExactRate``).
    admission:
        Optional :class:`~repro.overload.admission.AdmissionPolicy`
        consulted before dispatch with the same stale view.
    breaker_config:
        Optional :class:`~repro.overload.breaker.BreakerConfig`; enables
        per-server circuit breakers fed by queue-full rejections.
    probes:
        Optional object with ``on_dispatch(now, client_id, server_id,
        queue_length)`` and ``on_job_complete(server_id, completion_time,
        response_time)`` hooks (e.g. :class:`repro.obs.live.LiveTrace`).
    """

    def __init__(
        self,
        addresses: Sequence[tuple[str, int]],
        board: BulletinBoard,
        policy: Policy,
        clock: LiveClock,
        *,
        rate_estimator: RateEstimator | None = None,
        true_rate: float = 1.0,
        admission: AdmissionPolicy | None = None,
        breaker_config: BreakerConfig | None = None,
        probes=None,
        seed: int | np.random.SeedSequence = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float | None = 60.0,
    ) -> None:
        if not addresses:
            raise ValueError("LiveDispatcher needs at least one backend")
        self.board = board
        self.policy = policy
        self.clock = clock
        self.admission = admission
        self.probes = probes
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.stats = DispatcherStats(
            dispatch_counts=np.zeros(len(addresses), dtype=np.int64)
        )
        seed_seq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        policy_seed, admission_seed, breaker_seed = seed_seq.spawn(3)
        self._links = [
            _BackendLink(i, host_, port_)
            for i, (host_, port_) in enumerate(addresses)
        ]
        rng = np.random.default_rng(policy_seed)
        # Mirror the simulator's default: an oracle estimator bound to
        # the true per-server rate when no explicit estimator is given.
        if rate_estimator is None:
            rate_estimator = ExactRate()
        rate_estimator.bind(len(addresses), true_rate)
        self._estimator = rate_estimator
        policy.bind(len(addresses), rng, rate_estimator)
        if admission is not None:
            admission.bind(len(addresses), np.random.default_rng(admission_seed))
        self.breakers = (
            BreakerBoard(
                len(addresses),
                breaker_config,
                rng=np.random.default_rng(breaker_seed),
            )
            if breaker_config is not None
            else None
        )
        self._server: asyncio.base_events.Server | None = None
        self._in_flight: set[asyncio.Task] = set()
        self._connections: set[asyncio.Task] = set()
        self._accepting = True

    @property
    def num_servers(self) -> int:
        return len(self._links)

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Connect every backend link and open the client listener."""
        if self._server is not None:
            raise RuntimeError("LiveDispatcher is already running")
        for link in self._links:
            await link.connect()
        self._accepting = True
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, close links.

        Ordering matters: the listener closes first (no new work), then
        every in-flight request task is awaited (draining), and only
        then are the backend links torn down — so no accepted request is
        ever abandoned by its own dispatcher.
        """
        self._accepting = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._in_flight:
            try:
                await asyncio.wait_for(
                    asyncio.gather(*self._in_flight, return_exceptions=True),
                    timeout=_DRAIN_TIMEOUT,
                )
            except (asyncio.TimeoutError, TimeoutError):
                for task in self._in_flight:
                    task.cancel()
                await asyncio.gather(*self._in_flight, return_exceptions=True)
        # Snapshot once: a cancelled handler discards itself from
        # _connections on its way out, so re-listing would skip it and
        # leak the task mid-teardown.
        connections = list(self._connections)
        for task in connections:
            task.cancel()
        for task in connections:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._connections.clear()
        for link in self._links:
            await link.close()

    # -- request path ----------------------------------------------------

    def select_server(self, view) -> tuple[int | None, bool]:
        """Policy selection plus breaker re-routing for one view.

        Returns ``(server_id, blocked)``: ``server_id`` is ``None`` when
        every backend is breaker-blocked (the request must be refused);
        ``blocked`` reports whether the policy's first choice was
        overridden.  Exposed separately from the socket path so tests
        can drive the decision logic synchronously.
        """
        server = self.policy.select(view)
        if self.breakers is None or self.breakers.allow(server, view.now):
            return server, False
        candidates = [
            s
            for s in range(self.num_servers)
            if s != server and not self.breakers.blocks(s, view.now)
        ]
        if not candidates:
            return None, True
        loads = view.loads
        best = min(candidates, key=lambda s: (loads[s], s))
        return best, True

    async def _serve_request(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        request_id = request.get("id")
        arrival = self.clock.now()
        self.stats.offered += 1
        if self._estimator is not None:
            self._estimator.observe_arrival(arrival)
        view = self.board.view(int(request.get("client", 0)), arrival)
        if self.admission is not None and not self.admission.admit(view):
            self.stats.shed += 1
            send_message(
                writer,
                {"op": "done", "id": request_id, "ok": False, "error": "shed"},
            )
            return
        server, blocked = self.select_server(view)
        if blocked:
            self.stats.breaker_blocked += 1
        if server is None:
            self.stats.rejected += 1
            send_message(
                writer,
                {
                    "op": "done",
                    "id": request_id,
                    "ok": False,
                    "error": "breaker-open",
                },
            )
            return
        self.stats.dispatch_counts[server] += 1
        if self.probes is not None:
            self.probes.on_dispatch(
                arrival,
                int(request.get("client", 0)),
                server,
                int(view.loads[server]) + 1,
            )
        reply = await self._links[server].submit(timeout=self.request_timeout)
        done = self.clock.now()
        if reply.get("ok"):
            latency = done - arrival
            self.stats.completed += 1
            self.stats.latencies.append(latency)
            if self.breakers is not None:
                self.breakers.record_success(server, done)
            if self.probes is not None:
                self.probes.on_job_complete(server, done, latency)
            send_message(
                writer,
                {
                    "op": "done",
                    "id": request_id,
                    "ok": True,
                    "server": server,
                    "latency": latency,
                },
            )
        else:
            self.stats.rejected += 1
            if self.breakers is not None:
                self.breakers.record_failure(server, done)
            send_message(
                writer,
                {
                    "op": "done",
                    "id": request_id,
                    "ok": False,
                    "server": server,
                    "error": reply.get("error", "rejected"),
                },
            )

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        try:
            while True:
                try:
                    request = await read_message(reader)
                except ValueError:
                    send_message(
                        writer, {"op": "error", "error": "bad-message"}
                    )
                    break
                if request is None:
                    break
                if not self._accepting:
                    send_message(
                        writer,
                        {
                            "op": "done",
                            "id": request.get("id"),
                            "ok": False,
                            "error": "shutting-down",
                        },
                    )
                    continue
                serve = asyncio.create_task(
                    self._serve_request(request, writer),
                    name=f"serve-{request.get('id')}",
                )
                self._in_flight.add(serve)
                serve.add_done_callback(self._in_flight.discard)
                await writer.drain()
        except asyncio.CancelledError:
            # stop() cancels connection readers after draining in-flight
            # work; finishing cleanly here keeps the streams-module task
            # wrapper from re-raising into the event loop.
            pass
        finally:
            # Never close the client connection while its own requests
            # are still in service: completions must be deliverable.
            pending = [t for t in self._in_flight if not t.done()]
            if pending:
                try:
                    await asyncio.gather(*pending, return_exceptions=True)
                except asyncio.CancelledError:
                    pass
            writer.close()
            try:
                # CancelledError here means stop() caught this handler
                # already in teardown; absorbing it keeps the task from
                # ending cancelled (the streams accept-callback would
                # re-raise that into the event loop).
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass
            # Deregister only after the last await: once removed from
            # _connections the task must have no remaining suspension
            # points, or stop() could miss it mid-teardown.
            self._connections.discard(task)
