"""Load generators: open-loop Poisson (optionally non-stationary) and
closed-loop clients driving the live dispatcher over real sockets.

The open-loop generator is the live counterpart of the simulator's
:class:`~repro.workloads.arrivals.PoissonArrivals`: it fires requests at
exponentially-spaced instants on an *absolute* schedule (arrival k is
sent at its sampled time since start, not ``gap`` after the previous
send completed), so a slow response never thins the offered load — the
defining property of open-loop traffic and the regime the paper
analyzes.  A :class:`~repro.nonstationary.programs.RateProgram` turns it
into a non-homogeneous Poisson source via Lewis–Shedler thinning, the
same construction :class:`~repro.workloads.arrivals.TimeVaryingPoissonArrivals`
uses inside the simulator.

The closed-loop generator models a fixed population of synchronous
clients (send, await reply, optional exponential think time, repeat) —
the regime where offered load adapts to service capacity.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass

import numpy as np

from repro.live.protocol import LiveClock, read_message, send_message

__all__ = ["ClosedLoopClient", "OpenLoopClient", "RequestRecord"]


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """Outcome of one generated request (times in normalized units)."""

    request_id: int
    sent_at: float
    completed_at: float
    ok: bool
    server: int | None
    error: str | None

    @property
    def latency(self) -> float:
        return self.completed_at - self.sent_at


class _DispatcherConnection:
    """One pipelined client connection to the dispatcher."""

    def __init__(self, host: str, port: int, clock: LiveClock) -> None:
        self._host = host
        self._port = port
        self._clock = clock
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}

    async def connect(self) -> None:
        reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        self._reader_task = asyncio.create_task(
            self._read_loop(reader), name="loadgen-reader"
        )

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None

    async def send(self, request_id: int, client_id: int = 0) -> asyncio.Future:
        """Fire one request; returns the future of its ``done`` reply."""
        assert self._writer is not None, "not connected"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        send_message(
            self._writer,
            {"op": "req", "id": request_id, "client": client_id},
        )
        await self._writer.drain()
        return future

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        while True:
            try:
                message = await read_message(reader)
            except ValueError:
                message = None
            if message is None:
                for future in self._pending.values():
                    if not future.done():
                        future.set_result(
                            {"ok": False, "error": "connection-lost"}
                        )
                self._pending.clear()
                return
            future = self._pending.pop(message.get("id"), None)
            if future is not None and not future.done():
                future.set_result(message)


def _record(
    request_id: int, sent_at: float, completed_at: float, reply: dict
) -> RequestRecord:
    return RequestRecord(
        request_id=request_id,
        sent_at=sent_at,
        completed_at=completed_at,
        ok=bool(reply.get("ok")),
        server=reply.get("server"),
        error=reply.get("error"),
    )


class OpenLoopClient:
    """Poisson (or rate-program-shaped) open-loop traffic.

    Parameters
    ----------
    address:
        The dispatcher's ``(host, port)``.
    rate:
        Aggregate arrival rate in requests per normalized time unit
        (``n * λ`` for per-server load λ).  With a ``program`` this is
        ignored in favor of the program's own schedule.
    total_jobs:
        Requests to send before stopping.
    clock:
        The experiment's shared clock.
    seed:
        Seeds the arrival-gap (and thinning) stream.
    program:
        Optional :class:`~repro.nonstationary.programs.RateProgram`
        giving a time-varying aggregate rate λ(t) in normalized units.
    """

    def __init__(
        self,
        address: tuple[str, int],
        rate: float,
        total_jobs: int,
        clock: LiveClock,
        seed: int | np.random.SeedSequence = 0,
        program=None,
    ) -> None:
        if program is None and (not math.isfinite(rate) or rate <= 0):
            raise ValueError(f"rate must be positive and finite, got {rate}")
        if total_jobs < 1:
            raise ValueError(f"total_jobs must be >= 1, got {total_jobs}")
        self.address = address
        self.rate = float(rate)
        self.total_jobs = int(total_jobs)
        self.clock = clock
        self.program = program
        self.records: list[RequestRecord] = []
        self._rng = np.random.default_rng(seed)

    def _arrival_times(self) -> np.ndarray:
        """Pre-sample every arrival instant (normalized units).

        Stationary: cumulative sums of Exp(1/rate) gaps.  Non-stationary:
        candidate arrivals at the program's peak rate, thinned by
        ``rate(t)/peak`` — Lewis–Shedler, matching the simulator's
        time-varying source.
        """
        if self.program is None:
            gaps = self._rng.exponential(1.0 / self.rate, size=self.total_jobs)
            return np.cumsum(gaps)
        peak = self.program.peak_rate
        times = []
        t = 0.0
        while len(times) < self.total_jobs:
            t += float(self._rng.exponential(1.0 / peak))
            if self._rng.random() < self.program.rate(t) / peak:
                times.append(t)
        return np.array(times)

    async def run(self) -> list[RequestRecord]:
        """Send every request on schedule; await all replies.

        Requests are fired by absolute deadline (never waiting on
        responses); replies resolve concurrently through the pipelined
        connection.  Returns the completed :attr:`records`.
        """
        loop = asyncio.get_running_loop()
        connection = _DispatcherConnection(*self.address, self.clock)
        await connection.connect()
        arrival_times = self._arrival_times()
        in_flight: dict[int, tuple[float, asyncio.Future]] = {}
        try:
            for request_id, at in enumerate(arrival_times):
                delay = self.clock.wall_deadline(float(at)) - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                sent_at = self.clock.now()
                future = await connection.send(request_id)
                in_flight[request_id] = (sent_at, future)
            for request_id, (sent_at, future) in in_flight.items():
                reply = await future
                self.records.append(
                    _record(request_id, sent_at, self.clock.now()
                            if "latency" not in reply
                            else sent_at + reply["latency"], reply)
                )
        finally:
            await connection.close()
        self.records.sort(key=lambda record: record.request_id)
        return self.records


class ClosedLoopClient:
    """A fixed population of synchronous clients with exponential think.

    Each of ``num_clients`` coroutines loops send → await reply →
    think(Exp(mean ``think_time``)), stopping once the shared budget of
    ``total_jobs`` requests has been issued.
    """

    def __init__(
        self,
        address: tuple[str, int],
        num_clients: int,
        total_jobs: int,
        clock: LiveClock,
        think_time: float = 0.0,
        seed: int | np.random.SeedSequence = 0,
    ) -> None:
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        if total_jobs < 1:
            raise ValueError(f"total_jobs must be >= 1, got {total_jobs}")
        if think_time < 0 or not math.isfinite(think_time):
            raise ValueError(
                f"think_time must be finite and >= 0, got {think_time}"
            )
        self.address = address
        self.num_clients = int(num_clients)
        self.total_jobs = int(total_jobs)
        self.clock = clock
        self.think_time = float(think_time)
        self.records: list[RequestRecord] = []
        self._seed_seq = (
            seed
            if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed)
        )
        self._issued = 0

    async def run(self) -> list[RequestRecord]:
        await asyncio.gather(
            *(
                self._client_loop(client_id, child)
                for client_id, child in enumerate(
                    self._seed_seq.spawn(self.num_clients)
                )
            )
        )
        self.records.sort(key=lambda record: record.request_id)
        return self.records

    async def _client_loop(
        self, client_id: int, seed: np.random.SeedSequence
    ) -> None:
        rng = np.random.default_rng(seed)
        connection = _DispatcherConnection(*self.address, self.clock)
        await connection.connect()
        try:
            while self._issued < self.total_jobs:
                request_id = self._issued
                self._issued += 1
                sent_at = self.clock.now()
                reply = await (await connection.send(request_id, client_id))
                self.records.append(
                    _record(request_id, sent_at, self.clock.now(), reply)
                )
                if self.think_time > 0:
                    await asyncio.sleep(
                        self.clock.to_wall(
                            float(rng.exponential(self.think_time))
                        )
                    )
        finally:
            await connection.close()
