"""Wire protocol and clock shared by every live component.

Messages are newline-delimited JSON dictionaries — one line per message,
UTF-8, no framing beyond the newline.  The format is deliberately
trivial: the subsystem's interesting behavior is in *when* information
flows (the board's polling cadence, queueing delays on real sockets),
not in how it is encoded.

Message vocabulary (``op`` field):

=========  =============================  =================================
op         sent by                        meaning
=========  =============================  =================================
``work``   dispatcher -> backend          enqueue one job; the backend
                                          replies with the same ``id``
                                          after service (``ok=true``) or
                                          immediately when its bounded
                                          queue is full (``ok=false``,
                                          ``error="queue-full"``).
``load``   board poller -> backend        report current queue length.
``req``    load generator -> dispatcher   one end-user request; the reply
                                          carries ``ok``, the chosen
                                          ``server`` and the dispatcher-
                                          measured ``latency``.
=========  =============================  =================================

:class:`LiveClock` maps wall seconds onto the simulator's time unit (one
mean service time) so LI policies — whose λ and ``T`` are expressed in
that unit — run unmodified, and live measurements land on the same scale
as simulator predictions.
"""

from __future__ import annotations

import asyncio
import json
import math

__all__ = ["LiveClock", "read_message", "send_message", "MAX_MESSAGE_BYTES"]

#: Upper bound on one encoded message line; a peer exceeding it is
#: treated as a protocol error rather than an unbounded buffer.
MAX_MESSAGE_BYTES = 64 * 1024


def send_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Encode ``message`` as one JSON line and queue it on ``writer``.

    Writes are fire-and-forget: callers that need backpressure await
    ``writer.drain()`` themselves.  A closing transport is silently
    skipped — completions racing a disconnecting client are expected
    during shutdown, not errors.
    """
    if writer.is_closing():
        return
    writer.write(json.dumps(message, separators=(",", ":")).encode() + b"\n")


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one JSON line; ``None`` at EOF (peer closed cleanly).

    Raises ``ValueError`` for lines that are not valid JSON objects and
    for over-long lines — a live deployment fails loudly on a confused
    peer instead of desynchronizing the stream.
    """
    try:
        line = await reader.readline()
    except (ConnectionResetError, BrokenPipeError):
        return None
    if not line:
        return None
    if len(line) > MAX_MESSAGE_BYTES:
        raise ValueError(f"message exceeds {MAX_MESSAGE_BYTES} bytes")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ValueError(f"malformed message line: {line[:80]!r}") from error
    if not isinstance(message, dict):
        raise ValueError(f"expected a JSON object, got {type(message).__name__}")
    return message


class LiveClock:
    """Wall-clock time expressed in mean service times.

    Parameters
    ----------
    time_unit:
        Wall seconds per simulated time unit (one mean service time).
        Smaller units run experiments faster but inflate the relative
        weight of event-loop overhead; the harness defaults to 10 ms,
        which keeps per-hop asyncio costs (~0.1 ms) below 2% of a
        service time.

    The zero point is set once by :meth:`start`; every component of one
    experiment shares a single clock so board timestamps, arrival
    instants and latencies are mutually comparable.
    """

    def __init__(self, time_unit: float = 0.01) -> None:
        if not math.isfinite(time_unit) or time_unit <= 0:
            raise ValueError(
                f"time_unit must be positive and finite, got {time_unit}"
            )
        self.time_unit = float(time_unit)
        self._t0: float | None = None

    def start(self) -> None:
        """Pin the zero point to the current event-loop time."""
        self._t0 = asyncio.get_running_loop().time()

    @property
    def started(self) -> bool:
        return self._t0 is not None

    def now(self) -> float:
        """Current time in mean service times since :meth:`start`."""
        if self._t0 is None:
            raise RuntimeError("LiveClock.start() was never called")
        return (asyncio.get_running_loop().time() - self._t0) / self.time_unit

    def to_wall(self, interval: float) -> float:
        """Convert a normalized interval to wall seconds."""
        return interval * self.time_unit

    def wall_deadline(self, at: float) -> float:
        """Absolute event-loop time corresponding to normalized ``at``."""
        if self._t0 is None:
            raise RuntimeError("LiveClock.start() was never called")
        return self._t0 + at * self.time_unit
