"""Chaos trace: what the orchestrator injected and what it cost.

The live counterpart of :class:`~repro.obs.fault_trace.FaultTraceProbe`:
where that probe queries the simulator's injector after the fact, this
one rides along with the live run — the
:class:`~repro.live.chaos.ChaosOrchestrator` reports every injected
fault, the dispatcher reports every retry and every health transition —
and renders the whole campaign (injected events, retry penalties,
breaker trips, per-server recovery latencies) into the run manifest.

It is not a simulator :class:`~repro.obs.probes.Probe`: it implements
the live dispatcher's duck-typed hook surface (``on_retry``,
``on_health``, ``on_chaos_event``) and composes with
:class:`~repro.obs.live.LiveTrace` through the harness's probe fan-out.
"""

from __future__ import annotations

__all__ = ["ChaosTrace"]


class ChaosTrace:
    """Records injected faults, retries, health flips, recovery latency.

    Parameters
    ----------
    max_events:
        Upper bound on retained per-event records (aggregate counters
        stay exact); keeps manifests bounded on long chaotic runs.
    """

    def __init__(self, max_events: int = 1000) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self.max_events = max_events
        self.retries = 0
        self.health_flips = 0
        self.injected = 0
        self._events: list[dict] = []
        self._events_dropped = 0
        #: server_id -> applied time of its pending crash (stall/kill).
        self._down_since: dict[int, float] = {}
        #: (server_id, crash_applied, revive_applied, latency) tuples.
        self._recoveries: list[dict] = []
        self._breakers: dict | None = None

    # -- hooks (called by orchestrator and dispatcher) -------------------

    def on_chaos_event(
        self,
        time: float,
        server_id: int,
        action: str,
        factor: float,
        applied: float,
    ) -> None:
        """One injected fault transition (scheduled at ``time``,
        actually applied at ``applied``, both normalized units)."""
        self.injected += 1
        self._record(
            {
                "kind": "chaos",
                "time": time,
                "applied": applied,
                "server": server_id,
                "action": action,
                "factor": factor,
            }
        )
        if action in ("stall", "kill"):
            self._down_since.setdefault(server_id, applied)
        elif action in ("resume", "restart"):
            crashed = self._down_since.pop(server_id, None)
            if crashed is not None:
                self._recoveries.append(
                    {
                        "server": server_id,
                        "down_at": crashed,
                        "up_at": applied,
                        "latency": applied - crashed,
                    }
                )

    def on_retry(
        self, now: float, client_id: int, server_id: int, attempt: int
    ) -> None:
        """One dispatcher re-dispatch after a discovered crash."""
        self.retries += 1
        self._record(
            {
                "kind": "retry",
                "time": now,
                "client": client_id,
                "server": server_id,
                "attempt": attempt,
            }
        )

    def on_health(self, now: float, server_id: int, healthy: bool) -> None:
        """One health-checker drain (``healthy=False``) or rejoin."""
        self.health_flips += 1
        self._record(
            {
                "kind": "health",
                "time": now,
                "server": server_id,
                "healthy": healthy,
            }
        )

    def note_breakers(self, summary: dict | None) -> None:
        """Attach the breaker board's end-of-run summary (trips etc.)."""
        self._breakers = summary

    # -- reporting -------------------------------------------------------

    def _record(self, event: dict) -> None:
        if len(self._events) < self.max_events:
            self._events.append(event)
        else:
            self._events_dropped += 1

    @property
    def recoveries(self) -> list[dict]:
        return list(self._recoveries)

    def summary(self) -> dict:
        """JSON-serializable digest for the run manifest."""
        out: dict = {
            "injected": self.injected,
            "retries": self.retries,
            "health_flips": self.health_flips,
            "events": self._events,
            "events_dropped": self._events_dropped,
            "recoveries": self._recoveries,
        }
        if self._recoveries:
            latencies = [r["latency"] for r in self._recoveries]
            out["mean_recovery_latency"] = sum(latencies) / len(latencies)
        if self._breakers is not None:
            out["breakers"] = self._breakers
        return out
