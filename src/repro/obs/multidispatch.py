"""Per-dispatcher observability: who sent what where, and in lockstep?

With ``m`` dispatchers the herd effect has a new axis: not just "did
dispatches collapse onto one server" (:class:`~repro.obs.herd.HerdDetector`
measures that) but "did *independent* dispatchers collapse onto the *same*
server".  :class:`DispatcherTraceProbe` accumulates the dispatcher-by-server
dispatch matrix, per-epoch *alignment* (the fraction of active dispatchers
whose modal server equals the epoch's global modal server — 1.0 means every
front-end herded to the same place), and a content digest of the matrix for
run manifests.

The probe keys dispatchers by the ``client_id`` probe field, which the
multidispatch driver sets to the handling dispatcher's id; it therefore
also works (as a per-client trace) on single-dispatcher multi-client runs.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.obs.probes import Probe

__all__ = ["DispatcherTraceProbe"]


class DispatcherTraceProbe(Probe):
    """Dispatch matrix, imbalance, and herd alignment across dispatchers.

    Epochs are delimited by board refreshes (``on_load_update``); models
    that never refresh produce a single whole-run epoch.
    """

    name = "dispatchers"

    def __init__(self) -> None:
        self._num_servers = 0
        self._counts: dict[int, np.ndarray] = {}
        self._epoch_counts: dict[int, np.ndarray] = {}
        self._alignment: list[float] = []
        self._epochs = 0
        self._jobs_lost = 0

    def on_attach(self, sim, servers) -> None:
        self._num_servers = len(servers)
        self._counts = {}
        self._epoch_counts = {}
        self._alignment = []
        self._epochs = 0
        self._jobs_lost = 0

    def _row(self, table: dict[int, np.ndarray], dispatcher: int) -> np.ndarray:
        row = table.get(dispatcher)
        if row is None:
            row = np.zeros(self._num_servers, dtype=np.int64)
            table[dispatcher] = row
        return row

    def on_dispatch(
        self, now: float, client_id: int, server_id: int, queue_length: int
    ) -> None:
        self._row(self._counts, client_id)[server_id] += 1
        self._row(self._epoch_counts, client_id)[server_id] += 1

    def on_job_failed(self, time: float, server_id: int, reason: str) -> None:
        if reason == "dispatchers-down":
            self._jobs_lost += 1

    def on_load_update(self, now: float, version: int, loads) -> None:
        self._close_epoch()

    def on_finish(self, now: float) -> None:
        self._close_epoch()

    def _close_epoch(self) -> None:
        if not self._epoch_counts:
            return
        rows = sorted(self._epoch_counts.items())
        totals = np.zeros(self._num_servers, dtype=np.int64)
        for _, row in rows:
            totals += row
        if totals.sum() == 0:
            self._epoch_counts = {}
            return
        global_top = int(totals.argmax())
        active = [row for _, row in rows if row.sum() > 0]
        aligned = sum(1 for row in active if int(row.argmax()) == global_top)
        self._alignment.append(aligned / len(active))
        self._epochs += 1
        self._epoch_counts = {}

    # -- results ---------------------------------------------------------

    def dispatch_matrix(self) -> np.ndarray:
        """The (dispatchers, servers) job-count matrix observed so far."""
        if not self._counts:
            return np.zeros((0, self._num_servers), dtype=np.int64)
        size = max(self._counts) + 1
        matrix = np.zeros((size, self._num_servers), dtype=np.int64)
        for dispatcher, row in self._counts.items():
            matrix[dispatcher] = row
        return matrix

    def herd_alignment(self) -> float:
        """Mean per-epoch fraction of dispatchers herding to the global
        modal server; 1/m-ish when dispatchers disagree, 1.0 in lockstep."""
        if not self._alignment:
            return 0.0
        return float(np.mean(self._alignment))

    def summary(self) -> dict:
        """JSON-serializable digest (lands in run manifests)."""
        matrix = self.dispatch_matrix()
        per_dispatcher = matrix.sum(axis=1)
        total = int(per_dispatcher.sum())
        digest = hashlib.sha256(
            np.ascontiguousarray(matrix).tobytes()
            + str(matrix.shape).encode()
        ).hexdigest()[:16]
        imbalance = (
            float(per_dispatcher.max() / per_dispatcher.mean())
            if total
            else 0.0
        )
        return {
            "num_dispatchers": int(matrix.shape[0]),
            "jobs_per_dispatcher": [int(v) for v in per_dispatcher],
            "dispatcher_imbalance": round(imbalance, 6),
            "herd_alignment": round(self.herd_alignment(), 6),
            "epochs": self._epochs,
            "jobs_lost": self._jobs_lost,
            "dispatch_matrix_digest": digest,
        }
