"""Per-epoch dispatch-concentration statistics: the herd effect, measured.

The herd effect (paper §3, Figs. 2–4) is a *within-epoch* phenomenon:
during one information phase every dispatcher sees the same stale board,
and a greedy policy funnels most arrivals to the apparently-least-loaded
server.  The headline mean hides this; the per-epoch dispatch distribution
exposes it directly.

:class:`HerdDetector` partitions the run into information epochs — one per
``on_load_update`` (board refresh), or a fixed ``epoch_length`` for models
without global refresh events — and reports per epoch the dispatch share
of the hottest server and the normalized entropy of the dispatch
distribution.  LI's probability vectors keep entropy high and the max
share near the fair share; greedy policies collapse both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs.probes import Probe

__all__ = ["EpochStats", "HerdDetector"]


@dataclass(frozen=True, slots=True)
class EpochStats:
    """Dispatch-concentration statistics for one information epoch.

    Attributes
    ----------
    index:
        Sequential epoch number (0-based).
    version:
        Information version active during the epoch (board refresh count),
        or the epoch index for time-partitioned detection.
    start / end:
        Epoch boundaries in simulation time.
    total:
        Jobs dispatched during the epoch.
    max_share:
        Largest fraction of the epoch's dispatches sent to one server.
    top_server:
        The server receiving ``max_share``.
    entropy:
        Shannon entropy of the dispatch distribution normalized by
        ``log(n)`` — 1.0 is uniform, 0.0 is total collapse onto one
        server.  1.0 by convention for single-server clusters.
    """

    index: int
    version: int
    start: float
    end: float
    total: int
    max_share: float
    top_server: int
    entropy: float

    def to_dict(self) -> dict:
        """JSON-serializable form for manifests."""
        return {
            "index": self.index,
            "version": self.version,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
            "total": self.total,
            "max_share": round(self.max_share, 6),
            "top_server": self.top_server,
            "entropy": round(self.entropy, 6),
        }


def _dispatch_entropy(counts: np.ndarray, total: int) -> float:
    """Normalized Shannon entropy of a dispatch count vector."""
    n = counts.size
    if n <= 1:
        return 1.0
    positive = counts[counts > 0]
    shares = positive / total
    raw = -float((shares * np.log(shares)).sum())
    return raw / math.log(n)


class HerdDetector(Probe):
    """Detect dispatch concentration per information epoch.

    Parameters
    ----------
    herd_factor:
        An epoch is flagged as *herding* when its ``max_share`` exceeds
        ``herd_factor`` times the fair share ``1/n`` (capped at 1.0).
        The default 2.0 flags any epoch in which one server absorbed more
        than twice its fair share of the arrivals.
    epoch_length:
        When set, epochs are fixed time windows of this length instead of
        board-refresh intervals — required for staleness models that never
        publish a global refresh (continuous, update-on-access).

    Caveat: with very short epochs (a handful of jobs each) binomial
    noise alone pushes ``max_share`` past the threshold, so even a
    load-blind random policy "herds" in most epochs.  Compare herding
    fractions between policies at equal epoch length, or read
    ``mean_max_share`` / ``mean_entropy``, which stay discriminative.
    """

    name = "herd"

    def __init__(
        self, herd_factor: float = 2.0, epoch_length: float | None = None
    ) -> None:
        if herd_factor <= 1.0:
            raise ValueError(f"herd_factor must be > 1, got {herd_factor}")
        if epoch_length is not None and epoch_length <= 0:
            raise ValueError(
                f"epoch_length must be positive, got {epoch_length}"
            )
        self.herd_factor = float(herd_factor)
        self.epoch_length = epoch_length
        self.epochs: list[EpochStats] = []
        self._counts: np.ndarray | None = None
        self._epoch_start = 0.0
        self._epoch_version = 0
        self._empty_epochs = 0
        self._next_boundary = math.inf

    def on_attach(self, sim, servers) -> None:
        self.epochs = []
        self._counts = np.zeros(len(servers), dtype=np.int64)
        self._epoch_start = 0.0
        self._epoch_version = 0
        self._empty_epochs = 0
        self._next_boundary = (
            self.epoch_length if self.epoch_length is not None else math.inf
        )

    def on_dispatch(
        self, now: float, client_id: int, server_id: int, queue_length: int
    ) -> None:
        assert self._counts is not None
        while now >= self._next_boundary:
            # Fixed-window mode: close every elapsed window, even idle ones.
            self._close_epoch(self._next_boundary, self._epoch_version + 1)
            self._next_boundary += self.epoch_length  # type: ignore[operator]
        self._counts[server_id] += 1

    def on_load_update(
        self, now: float, version: int, loads: np.ndarray
    ) -> None:
        if self.epoch_length is not None:
            return  # fixed windows take precedence over refresh events
        if now > self._epoch_start:
            self._close_epoch(now, version)

    def on_finish(self, now: float) -> None:
        if self._counts is not None and now > self._epoch_start:
            self._close_epoch(now, self._epoch_version + 1)

    def _close_epoch(self, end: float, next_version: int) -> None:
        assert self._counts is not None
        total = int(self._counts.sum())
        if total > 0:
            top = int(self._counts.argmax())
            self.epochs.append(
                EpochStats(
                    index=len(self.epochs),
                    version=self._epoch_version,
                    start=self._epoch_start,
                    end=end,
                    total=total,
                    max_share=float(self._counts[top]) / total,
                    top_server=top,
                    entropy=_dispatch_entropy(self._counts, total),
                )
            )
            self._counts[:] = 0
        else:
            self._empty_epochs += 1
        self._epoch_start = end
        self._epoch_version = next_version

    # ------------------------------------------------------------------
    # Derived measurements
    # ------------------------------------------------------------------

    @property
    def num_servers(self) -> int:
        """Cluster size (available after on_attach)."""
        if self._counts is None:
            raise RuntimeError("HerdDetector is not attached")
        return int(self._counts.size)

    def herd_threshold(self) -> float:
        """The max-share level above which an epoch counts as herding."""
        return min(1.0, self.herd_factor / self.num_servers)

    def herding_epochs(self) -> list[EpochStats]:
        """Epochs whose hottest server exceeded the herd threshold."""
        threshold = self.herd_threshold()
        return [e for e in self.epochs if e.max_share > threshold]

    def summary(self) -> dict:
        herding = self.herding_epochs() if self._counts is not None else []
        worst = max(self.epochs, key=lambda e: e.max_share, default=None)
        return {
            "epochs": len(self.epochs),
            "empty_epochs": self._empty_epochs,
            "herd_factor": self.herd_factor,
            "herd_threshold": (
                self.herd_threshold() if self._counts is not None else None
            ),
            "herding_epochs": len(herding),
            "herding_fraction": (
                len(herding) / len(self.epochs) if self.epochs else 0.0
            ),
            "mean_max_share": (
                float(np.mean([e.max_share for e in self.epochs]))
                if self.epochs
                else None
            ),
            "mean_entropy": (
                float(np.mean([e.entropy for e in self.epochs]))
                if self.epochs
                else None
            ),
            "worst_epoch": worst.to_dict() if worst is not None else None,
        }

    def epochs_dict(self) -> list[dict]:
        """All per-epoch records, for manifests."""
        return [epoch.to_dict() for epoch in self.epochs]
