"""Overload probe: drops, sheds and breaker dynamics for run manifests.

Renders what the overload-protection layer actually did during a run —
how many arrivals admission refused, which bounded queues bounced how
many dispatches, when each circuit breaker tripped and how long it spent
OPEN — into the JSON manifest, next to the queue traces and fault spans.
Like every probe it is passive: it observes the hooks the dispatch loop
already fires and never perturbs the run.
"""

from __future__ import annotations

from repro.obs.probes import Probe

__all__ = ["OverloadProbe"]

#: ``on_job_failed`` reasons that belong to the overload layer (fault
#: losses like "aborted"/"stalled"/"retries-exhausted" are the
#: FaultTraceProbe's business).
_DROP_REASONS = ("shed", "queue-full", "breaker-blocked", "storm-exhausted")


class OverloadProbe(Probe):
    """Records shed/reject/drop counts and per-server breaker timelines.

    Parameters
    ----------
    max_events:
        Upper bound on retained breaker-transition event records (the
        aggregate counters are exact regardless); keeps manifests bounded
        when breakers flap on long runs.
    """

    name = "overload"

    def __init__(self, max_events: int = 1000) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self.max_events = max_events
        self._reset(0)

    def _reset(self, num_servers: int) -> None:
        self._num_servers = num_servers
        self._queue_capacity: int | None = None
        self._sheds = 0
        self._rejects = [0] * num_servers
        self._drops: dict[str, int] = {}
        self._trips = [0] * num_servers
        self._time_in_open = [0.0] * num_servers
        self._opened_at: list[float | None] = [None] * num_servers
        self._transitions = 0
        self._events: list[dict] = []
        self._events_dropped = 0
        self._duration = 0.0

    def on_attach(self, sim, servers) -> None:
        self._reset(len(servers))
        if servers:
            self._queue_capacity = servers[0].queue_capacity

    def on_job_shed(self, now: float, client_id: int) -> None:
        self._sheds += 1

    def on_job_rejected(self, now: float, server_id: int) -> None:
        self._rejects[server_id] += 1

    def on_job_failed(self, time: float, server_id: int, reason: str) -> None:
        if reason in _DROP_REASONS:
            self._drops[reason] = self._drops.get(reason, 0) + 1

    def on_breaker_transition(
        self, now: float, server_id: int, old_state: str, new_state: str
    ) -> None:
        self._transitions += 1
        if new_state == "open":
            self._trips[server_id] += 1
            self._opened_at[server_id] = now
        elif old_state == "open":
            opened = self._opened_at[server_id]
            if opened is not None:
                self._time_in_open[server_id] += max(0.0, now - opened)
                self._opened_at[server_id] = None
        if len(self._events) < self.max_events:
            self._events.append(
                {
                    "time": now,
                    "server": server_id,
                    "from": old_state,
                    "to": new_state,
                }
            )
        else:
            self._events_dropped += 1

    def on_finish(self, now: float) -> None:
        self._duration = now
        # Breakers still OPEN at the end of the run were open until the
        # final clock; close their accounting intervals there.
        for server_id, opened in enumerate(self._opened_at):
            if opened is not None:
                self._time_in_open[server_id] += max(0.0, now - opened)
                self._opened_at[server_id] = None

    def summary(self) -> dict:
        return {
            "queue_capacity": self._queue_capacity,
            "sheds": self._sheds,
            "rejects": list(self._rejects),
            "rejects_total": sum(self._rejects),
            "drops": dict(sorted(self._drops.items())),
            "drops_total": sum(self._drops.values()),
            "breaker": {
                "transitions": self._transitions,
                "trips": list(self._trips),
                "trips_total": sum(self._trips),
                "time_in_open": list(self._time_in_open),
                "events": self._events,
                "events_dropped": self._events_dropped,
            },
            "duration": self._duration,
        }
