"""Run manifests: what ran, with which code, seeds and observations.

A manifest is the audit record a production experiment pipeline keeps for
every sweep: the exact spec (figure, curves, x values, jobs, seeds), the
code version (``git describe``), the environment, wall time, the headline
results, and — when tracing was enabled — the per-cell probe summaries
(queue traces, utilization, herd epochs, response histograms).

Manifests are plain dictionaries serialized as JSON so they can be diffed,
archived and post-processed without this library.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.report import FigureResult

__all__ = [
    "MANIFEST_VERSION",
    "git_describe",
    "build_manifest",
    "save_manifest",
    "load_manifest",
    "format_manifest",
]

MANIFEST_VERSION = 1


def git_describe(repo_root: str | Path | None = None) -> str | None:
    """Best-effort ``git describe --always --dirty`` of the running code.

    Returns ``None`` when git or the repository is unavailable — manifests
    must never fail a run over missing version metadata.
    """
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=str(repo_root) if repo_root is not None else None,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def build_manifest(
    result: "FigureResult",
    wall_time_seconds: float,
    base_seed: int = 1,
    extra: dict | None = None,
) -> dict:
    """Assemble the manifest dictionary for one completed figure sweep.

    Probe observations, when the sweep was traced, are read from
    ``result.observations`` (keyed by ``(curve, x, seed)``).
    """
    manifest: dict = {
        "manifest_version": MANIFEST_VERSION,
        "figure_id": result.figure_id,
        "title": result.title,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_describe": git_describe(),
        "wall_time_seconds": round(wall_time_seconds, 3),
        "spec": {
            "x_label": result.x_label,
            "x_values": list(result.x_values),
            "curves": list(result.curve_labels),
            "jobs": result.jobs,
            "seeds": result.seeds,
            "base_seed": base_seed,
            "summary": result.summary,
        },
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "cells": [
            {
                "curve": cell.curve,
                "x": cell.x,
                "samples": list(cell.samples),
                "mean": cell.mean,
            }
            for cell in result.cells.values()
        ],
    }
    observations = getattr(result, "observations", None)
    if observations:
        manifest["observations"] = [
            {"curve": curve, "x": x, "seed": seed, "probes": probes}
            for (curve, x, seed), probes in sorted(observations.items())
        ]
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def save_manifest(manifest: dict, directory: str | Path) -> Path:
    """Write ``manifest`` into ``directory`` and return the file path.

    The file is named ``<figure_id>.manifest.json``; the directory is
    created if needed.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{manifest['figure_id']}.manifest.json"
    path.write_text(json.dumps(manifest, indent=2) + "\n")
    return path


def load_manifest(path: str | Path) -> dict:
    """Read a manifest previously written by :func:`save_manifest`."""
    manifest = json.loads(Path(path).read_text())
    version = manifest.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise ValueError(
            f"unsupported manifest version {version!r}; "
            f"this build reads version {MANIFEST_VERSION}"
        )
    return manifest


def _format_observation_row(entry: dict) -> str:
    probes = entry.get("probes", {})
    parts = [f"{entry['curve']:<24} x={entry['x']:<8g} seed={entry['seed']}"]
    trace = probes.get("queue_trace")
    if trace:
        util = trace.get("utilization") or []
        if util:
            parts.append(f"util {min(util):.2f}..{max(util):.2f}")
        parts.append(f"imbalance {trace.get('imbalance', 0.0):.2f}")
    herd = probes.get("herd")
    if herd and herd.get("epochs"):
        parts.append(
            f"herding {herd['herding_epochs']}/{herd['epochs']} epochs "
            f"(worst share {herd['worst_epoch']['max_share']:.2f})"
        )
    hist = probes.get("response_histogram")
    if hist and hist.get("count"):
        parts.append(
            f"p50/p99 {hist.get('p50', 0.0):.2f}/{hist.get('p99', 0.0):.2f}"
        )
    faults = probes.get("faults")
    if faults and (faults.get("retries") or faults.get("availability")):
        availability = faults.get("availability") or {}
        failures = sum(faults.get("failures", {}).values())
        parts.append(
            f"avail {availability.get('availability', 1.0):.3f} "
            f"retries {faults.get('retries', 0)} failed {failures}"
        )
    info = probes.get("staleness_info")
    if info and info.get("refreshes_attempted"):
        parts.append(
            f"refreshes {info['refreshes_attempted'] - info['refreshes_dropped']}"
            f"/{info['refreshes_attempted']} delivered"
        )
    return "  ".join(parts)


def format_manifest(manifest: dict) -> str:
    """Render a manifest as the human-readable `repro obs` summary."""
    spec = manifest["spec"]
    lines = [
        f"{manifest['figure_id']}: {manifest['title']}",
        f"created {manifest['created_at']}"
        + (
            f"  code {manifest['git_describe']}"
            if manifest.get("git_describe")
            else ""
        ),
        f"jobs={spec['jobs']} seeds={spec['seeds']} "
        f"base_seed={spec.get('base_seed', 1)} "
        f"wall={manifest['wall_time_seconds']:.1f}s",
        f"curves: {', '.join(spec['curves'])}",
        f"{spec['x_label']} sweep: "
        + ", ".join(f"{x:g}" for x in spec["x_values"]),
        "",
        "cell means:",
    ]
    for cell in manifest["cells"]:
        lines.append(
            f"  {cell['curve']:<24} {spec['x_label']}={cell['x']:<8g} "
            f"mean={cell['mean']:.4f}  ({len(cell['samples'])} seeds)"
        )
    observations = manifest.get("observations")
    if observations:
        lines += ["", "observations (traced cells):"]
        for entry in observations:
            lines.append("  " + _format_observation_row(entry))
    else:
        lines += ["", "no probe observations (run with --trace to collect)"]
    return "\n".join(lines)
