"""The probe protocol: how observers attach to a simulation run.

A :class:`Probe` is a passive observer of one simulation: it is notified
of dispatches, job lifecycle milestones and load-information refreshes,
and renders whatever it accumulated as a JSON-serializable summary at the
end of the run.  Probes never draw random numbers and never mutate
simulation state, so an instrumented run produces *bit-identical*
measurements to an uninstrumented one.

Zero-overhead contract: when no probes are attached,
:class:`~repro.cluster.simulation.ClusterSimulation` compiles its dispatch
loop without any probe calls (a single ``None`` check per arrival) and the
event loop in :class:`~repro.engine.simulator.Simulator` skips its hook
sweep entirely (an empty-list truthiness check per event).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.server import Server
    from repro.engine.simulator import Simulator

__all__ = ["Probe", "ProbeSet"]


class Probe:
    """Base class for simulation observers; every hook is a no-op.

    Subclasses override the hooks they care about.  All hooks receive
    plain scalars (and, for :meth:`on_load_update`, a read-only load
    vector) so summaries stay cheap to produce and trivially picklable.

    Attributes
    ----------
    name:
        Key under which this probe's :meth:`summary` appears in a
        :class:`ProbeSet` summary (and hence in run manifests).
    requires_event_loop:
        ``True`` (the default) declares that the probe needs the event
        loop's per-event hooks, forcing the event engine whenever the
        probe is attached.  Probes that only consume run-level metadata
        (e.g. :class:`~repro.obs.engine_probe.EngineProvenanceProbe`)
        set this ``False`` so they don't perturb engine selection.
    """

    name = "probe"
    requires_event_loop = True

    def on_attach(self, sim: "Simulator", servers: Sequence["Server"]) -> None:
        """Called once, before the first event fires."""

    def on_dispatch(
        self, now: float, client_id: int, server_id: int, queue_length: int
    ) -> None:
        """Called at each arrival, after the policy chose ``server_id``.

        ``queue_length`` is the chosen server's queue length *including*
        the newly dispatched job.
        """

    def on_job_start(
        self, server_id: int, start_time: float, service_time: float
    ) -> None:
        """Called when a job's service start is determined.

        The FIFO cluster computes start/completion analytically at
        dispatch time, so this fires at dispatch with ``start_time`` in
        the (possibly future) simulation timeline.
        """

    def on_job_complete(
        self, server_id: int, completion_time: float, response_time: float
    ) -> None:
        """Called when a job's completion is determined (see on_job_start)."""

    def on_load_update(
        self, now: float, version: int, loads: np.ndarray
    ) -> None:
        """Called when a staleness model publishes fresh load information."""

    def on_fault_attach(self, injector) -> None:
        """Called when a :class:`~repro.faults.injector.FaultInjector`
        binds to the run, before the first event fires."""

    def on_retry(
        self, now: float, client_id: int, server_id: int, attempt: int
    ) -> None:
        """Called when a dispatch finds ``server_id`` down and schedules
        re-dispatch attempt ``attempt`` (1-based) after timeout+backoff."""

    def on_job_failed(self, time: float, server_id: int, reason: str) -> None:
        """Called when a job is abandoned: ``"aborted"`` by a crash,
        ``"stalled"`` in a permanent outage, ``"retries-exhausted"``, or
        an overload refusal (``"shed"``, ``"queue-full"``,
        ``"breaker-blocked"``, ``"storm-exhausted"`` — these carry
        ``server_id=-1``: no server owns a refused job)."""

    def on_job_shed(self, now: float, client_id: int) -> None:
        """Called when admission control refuses an arrival before any
        server is selected."""

    def on_job_rejected(self, now: float, server_id: int) -> None:
        """Called when ``server_id``'s bounded queue bounces a dispatch."""

    def on_breaker_transition(
        self, now: float, server_id: int, old_state: str, new_state: str
    ) -> None:
        """Called at every circuit-breaker state change for ``server_id``
        (states: ``"closed"``, ``"open"``, ``"half-open"``)."""

    def on_finish(self, now: float) -> None:
        """Called once, after the event loop stops, at the final clock."""

    def summary(self) -> dict:
        """JSON-serializable digest of everything the probe observed."""
        return {}


class ProbeSet(Probe):
    """A composite probe fanning every hook out to its members.

    The simulation layer talks to exactly one probe object; composing
    keeps the dispatch-loop call sites branch-free regardless of how many
    observers are attached.
    """

    name = "probes"

    def __init__(self, probes: Iterable[Probe]) -> None:
        self.probes: tuple[Probe, ...] = tuple(probes)

    def __len__(self) -> int:
        return len(self.probes)

    def __iter__(self):
        return iter(self.probes)

    def on_attach(self, sim: "Simulator", servers: Sequence["Server"]) -> None:
        for probe in self.probes:
            probe.on_attach(sim, servers)

    def on_dispatch(
        self, now: float, client_id: int, server_id: int, queue_length: int
    ) -> None:
        for probe in self.probes:
            probe.on_dispatch(now, client_id, server_id, queue_length)

    def on_job_start(
        self, server_id: int, start_time: float, service_time: float
    ) -> None:
        for probe in self.probes:
            probe.on_job_start(server_id, start_time, service_time)

    def on_job_complete(
        self, server_id: int, completion_time: float, response_time: float
    ) -> None:
        for probe in self.probes:
            probe.on_job_complete(server_id, completion_time, response_time)

    def on_load_update(
        self, now: float, version: int, loads: np.ndarray
    ) -> None:
        for probe in self.probes:
            probe.on_load_update(now, version, loads)

    def on_fault_attach(self, injector) -> None:
        for probe in self.probes:
            probe.on_fault_attach(injector)

    def on_retry(
        self, now: float, client_id: int, server_id: int, attempt: int
    ) -> None:
        for probe in self.probes:
            probe.on_retry(now, client_id, server_id, attempt)

    def on_job_failed(self, time: float, server_id: int, reason: str) -> None:
        for probe in self.probes:
            probe.on_job_failed(time, server_id, reason)

    def on_job_shed(self, now: float, client_id: int) -> None:
        for probe in self.probes:
            probe.on_job_shed(now, client_id)

    def on_job_rejected(self, now: float, server_id: int) -> None:
        for probe in self.probes:
            probe.on_job_rejected(now, server_id)

    def on_breaker_transition(
        self, now: float, server_id: int, old_state: str, new_state: str
    ) -> None:
        for probe in self.probes:
            probe.on_breaker_transition(now, server_id, old_state, new_state)

    def on_finish(self, now: float) -> None:
        for probe in self.probes:
            probe.on_finish(now)

    def summary(self) -> dict:
        """Per-probe summaries keyed by probe name (deduplicated)."""
        summaries: dict[str, dict] = {}
        for probe in self.probes:
            key = probe.name
            suffix = 2
            while key in summaries:
                key = f"{probe.name}#{suffix}"
                suffix += 1
            summaries[key] = probe.summary()
        return summaries
