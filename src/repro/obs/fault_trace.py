"""Fault-trace probe: availability and retry timelines for run manifests.

The fault injector realizes per-server lifecycle timelines; this probe
renders what actually happened during a run — which servers were down or
degraded and when, how many dispatches hit a dead server, how much
latency the timeouts and backoffs cost — into the JSON manifest, next to
the queue traces and herd epochs.  Like every probe it is passive: it
only queries the injector, never perturbs it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.probes import Probe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector

__all__ = ["FaultTraceProbe"]


class FaultTraceProbe(Probe):
    """Records realized availability plus the dispatcher's retry history.

    Parameters
    ----------
    max_events:
        Upper bound on retained retry/failure event records (the
        aggregate counters are exact regardless); keeps manifests bounded
        on long faulty runs.
    """

    name = "faults"

    def __init__(self, max_events: int = 1000) -> None:
        if max_events < 0:
            raise ValueError(f"max_events must be >= 0, got {max_events}")
        self.max_events = max_events
        self._reset()

    def _reset(self) -> None:
        self._injector: "FaultInjector | None" = None
        self._duration = 0.0
        self._retries = 0
        self._failures: dict[str, int] = {}
        self._events: list[dict] = []
        self._events_dropped = 0

    def on_attach(self, sim, servers) -> None:
        self._reset()

    def on_fault_attach(self, injector) -> None:
        self._injector = injector

    def on_retry(
        self, now: float, client_id: int, server_id: int, attempt: int
    ) -> None:
        self._retries += 1
        self._record(
            {
                "kind": "retry",
                "time": now,
                "client": client_id,
                "server": server_id,
                "attempt": attempt,
            }
        )

    def on_job_failed(self, time: float, server_id: int, reason: str) -> None:
        self._failures[reason] = self._failures.get(reason, 0) + 1
        self._record(
            {"kind": "failed", "time": time, "server": server_id, "reason": reason}
        )

    def on_finish(self, now: float) -> None:
        self._duration = now

    def _record(self, event: dict) -> None:
        if len(self._events) < self.max_events:
            self._events.append(event)
        else:
            self._events_dropped += 1

    def summary(self) -> dict:
        out: dict = {
            "retries": self._retries,
            "failures": dict(sorted(self._failures.items())),
            "events": self._events,
            "events_dropped": self._events_dropped,
        }
        if self._injector is not None and self._injector.attached:
            out["config"] = self._injector.describe()
            out["availability"] = self._injector.availability_summary(
                self._duration
            )
            out["spans"] = self._injector.fault_spans(self._duration)
        return out
