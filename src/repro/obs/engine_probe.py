"""Engine provenance: record *which* engine produced a run's numbers.

Every other probe forces the event engine (their hooks fire per event),
so a manifest built from an observed sweep could not previously say
anything about engine selection — the act of observing decided it.  This
probe only consumes run-level metadata: it declares
``requires_event_loop = False`` so it never perturbs
:meth:`ClusterSimulation.engine_decision`, and drivers call its
:meth:`on_engine` hook with the resolved decision before executing.

Attached alongside the standard probes (which *do* force the event
engine) it records that honestly: the manifest says ``"event"`` with the
probes' blocking reason, which is exactly what ran.
"""

from __future__ import annotations

from repro.obs.probes import Probe

__all__ = ["EngineProvenanceProbe"]


class EngineProvenanceProbe(Probe):
    """Records the engine-selection outcome of each run it observes."""

    name = "engine"
    requires_event_loop = False

    def __init__(self) -> None:
        self.engine: str | None = None
        self.reason: str | None = None
        self._simulation = None

    def on_engine(self, engine: str, reason: str, simulation) -> None:
        """Called by the driver once :meth:`engine_decision` resolves."""
        self.engine = engine
        self.reason = reason
        self._simulation = simulation

    def summary(self) -> dict:
        if self.engine is None:
            # The driver never reported (e.g. a custom driver without
            # engine selection); say so rather than guessing.
            return {"engine": "unrecorded"}
        digest: dict = {
            "engine": self.engine,
            "reason": self.reason,
            "driver": type(self._simulation).__name__,
        }
        fluid = getattr(self._simulation, "last_fluid_summary", None)
        if self.engine == "fluid" and fluid is not None:
            digest["fluid"] = fluid
        return digest
