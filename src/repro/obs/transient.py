"""Transient observability: time-binned windows and program provenance.

Whole-run means average a flash crowd away; the herding a lagged λ
estimate causes lives entirely inside the surge windows.
:class:`TransientProbe` bins the run into fixed-width time windows and
records, per window, the arrival count, mean response time, drop count,
the maximum per-server dispatch share (herding when it spikes), and —
when the run exposes them — the estimated vs true arrival rate, which is
the estimator-lag measurement the stale-λ study needs.

:class:`NonstationaryProvenanceProbe` is the manifest-side counterpart
(same pattern as :class:`~repro.obs.engine_probe.EngineProvenanceProbe`):
it digests the run's arrival program and autoscaler configuration and
surfaces the realized scaling history, so a sweep's manifest pins the
exact non-stationary scenario that produced its numbers.
"""

from __future__ import annotations

import hashlib
import json

from repro.obs.probes import Probe

__all__ = ["TransientProbe", "NonstationaryProvenanceProbe", "spec_digest"]


def spec_digest(described: dict) -> str:
    """Stable short digest of a describe() dict (for manifests)."""
    payload = json.dumps(described, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class _Window:
    __slots__ = (
        "arrivals",
        "completions",
        "response_sum",
        "drops",
        "per_server",
        "estimate_sum",
        "true_rate_sum",
        "samples",
    )

    def __init__(self, num_servers: int) -> None:
        self.arrivals = 0
        self.completions = 0
        self.response_sum = 0.0
        self.drops = 0
        self.per_server = [0] * num_servers
        self.estimate_sum = 0.0
        self.true_rate_sum = 0.0
        self.samples = 0


class TransientProbe(Probe):
    """Time-binned window metrics for non-stationary runs.

    Parameters
    ----------
    window:
        Bin width in simulation time units.
    herd_share:
        A window is a *herd epoch* when one server receives at least this
        fraction of the window's dispatches.
    herd_min_arrivals:
        Minimum dispatches in a window before the herd test applies
        (a 2-arrival window trivially concentrates).
    """

    name = "transient"

    def __init__(
        self,
        window: float = 5.0,
        herd_share: float = 0.5,
        herd_min_arrivals: int = 20,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not 0.0 < herd_share <= 1.0:
            raise ValueError(f"herd_share must be in (0, 1], got {herd_share}")
        if herd_min_arrivals < 1:
            raise ValueError(
                f"herd_min_arrivals must be >= 1, got {herd_min_arrivals}"
            )
        self.window = float(window)
        self.herd_share = float(herd_share)
        self.herd_min_arrivals = int(herd_min_arrivals)
        self._num_servers = 0
        self._windows: dict[int, _Window] = {}
        self._simulation = None
        self._duration = 0.0

    # -- hooks ----------------------------------------------------------

    def on_attach(self, sim, servers) -> None:
        self._num_servers = len(servers)
        self._windows = {}
        self._duration = 0.0

    def on_engine(self, engine: str, reason: str, simulation) -> None:
        # Keeps a driver handle so dispatch-time sampling can read the
        # current λ estimate and the program's true rate.
        self._simulation = simulation

    def _window_at(self, time: float) -> _Window:
        index = int(time // self.window)
        bucket = self._windows.get(index)
        if bucket is None:
            bucket = _Window(self._num_servers)
            self._windows[index] = bucket
        return bucket

    def on_dispatch(
        self, now: float, client_id: int, server_id: int, queue_length: int
    ) -> None:
        bucket = self._window_at(now)
        bucket.arrivals += 1
        bucket.per_server[server_id] += 1
        simulation = self._simulation
        if simulation is not None:
            estimator = getattr(simulation, "rate_estimator", None)
            if estimator is not None:
                num_servers = max(self._num_servers, 1)
                bucket.estimate_sum += (
                    estimator.per_server_rate() * num_servers
                )
                program = getattr(
                    getattr(simulation, "arrivals", None), "program", None
                )
                if program is not None:
                    bucket.true_rate_sum += program.rate(now)
                bucket.samples += 1

    def on_job_complete(
        self, server_id: int, completion_time: float, response_time: float
    ) -> None:
        # Bill the response to the window the job *arrived* in, so a surge
        # window owns the latency it caused.
        arrival_time = max(completion_time - response_time, 0.0)
        bucket = self._window_at(arrival_time)
        bucket.completions += 1
        bucket.response_sum += response_time

    def on_job_failed(self, time: float, server_id: int, reason: str) -> None:
        self._window_at(time).drops += 1

    def on_finish(self, now: float) -> None:
        self._duration = now

    # -- results --------------------------------------------------------

    def windows(self) -> list[dict]:
        """Per-window records, time-ordered and JSON-serializable."""
        out = []
        for index in sorted(self._windows):
            bucket = self._windows[index]
            max_count = max(bucket.per_server) if bucket.per_server else 0
            max_share = (
                max_count / bucket.arrivals if bucket.arrivals > 0 else 0.0
            )
            herd = (
                bucket.arrivals >= self.herd_min_arrivals
                and max_share >= self.herd_share
            )
            record = {
                "t0": index * self.window,
                "t1": (index + 1) * self.window,
                "arrivals": bucket.arrivals,
                "completions": bucket.completions,
                "mean_response": (
                    bucket.response_sum / bucket.completions
                    if bucket.completions > 0
                    else None
                ),
                "drops": bucket.drops,
                "max_share": max_share,
                "herd": herd,
            }
            if bucket.samples > 0:
                record["estimated_rate"] = bucket.estimate_sum / bucket.samples
                if bucket.true_rate_sum > 0.0:
                    record["true_rate"] = bucket.true_rate_sum / bucket.samples
            out.append(record)
        return out

    def summary(self) -> dict:
        windows = self.windows()
        herd_epochs = sum(1 for w in windows if w["herd"])
        peak = None
        for w in windows:
            if w["mean_response"] is None:
                continue
            if peak is None or w["mean_response"] > peak["mean_response"]:
                peak = w
        lag = None
        rated = [w for w in windows if "true_rate" in w and "estimated_rate" in w]
        if rated:
            # Mean relative underestimation of λ across windows — positive
            # when the estimator runs behind a rising rate (the dangerous
            # direction per §5.6).
            lag = sum(
                (w["true_rate"] - w["estimated_rate"]) / w["true_rate"]
                for w in rated
                if w["true_rate"] > 0
            ) / len(rated)
        summary: dict = {
            "window": self.window,
            "num_windows": len(windows),
            "duration": self._duration,
            "herd_epochs": herd_epochs,
            "total_drops": sum(w["drops"] for w in windows),
        }
        if peak is not None:
            summary["peak_window"] = {
                "t0": peak["t0"],
                "mean_response": peak["mean_response"],
            }
        if lag is not None:
            summary["mean_rate_underestimation"] = lag
        # The full per-window table can be large; manifests keep the first
        # 200 windows and say so when truncating.
        if len(windows) > 200:
            summary["windows"] = windows[:200]
            summary["windows_truncated"] = len(windows) - 200
        else:
            summary["windows"] = windows
        return summary


class NonstationaryProvenanceProbe(Probe):
    """Pins the arrival program + autoscaler configuration in manifests.

    Metadata-only (``requires_event_loop = False``), like
    :class:`EngineProvenanceProbe`: attaching it never forces the event
    engine, so a constant-program sweep keeps its batch engines while
    its manifest still records the program digest.
    """

    name = "nonstationary"
    requires_event_loop = False

    def __init__(self) -> None:
        self._simulation = None

    def on_engine(self, engine: str, reason: str, simulation) -> None:
        self._simulation = simulation

    def summary(self) -> dict:
        simulation = self._simulation
        if simulation is None:
            return {"nonstationary": "unrecorded"}
        digest: dict = {}
        arrivals = getattr(simulation, "arrivals", None)
        program = getattr(arrivals, "program", None)
        if program is not None:
            described = program.describe()
            digest["arrival_program"] = described
            digest["arrival_program_digest"] = spec_digest(described)
            info = getattr(arrivals, "info_summary", None)
            if info is not None:
                warnings = info().get("warnings")
                if warnings:
                    digest["warnings"] = warnings
        autoscaler = getattr(simulation, "autoscaler", None)
        if autoscaler is not None:
            described = autoscaler.describe()
            digest["autoscaler"] = described
            digest["autoscaler_digest"] = spec_digest(described)
            scaling = getattr(simulation, "last_scaling_summary", None)
            if scaling is not None:
                digest["scaling"] = {
                    key: scaling[key]
                    for key in (
                        "final_active",
                        "mean_active",
                        "actions",
                    )
                    if key in scaling
                }
        if not digest:
            return {"nonstationary": False}
        return digest
