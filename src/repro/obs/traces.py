"""Queue-length / utilization traces and response-time histograms.

:class:`QueueTraceProbe` samples the exact per-server queue lengths on a
time grid, riding the simulator's event hook so it adds *nothing* to the
event calendar and cannot perturb event ordering; the cluster's historical
queue queries (two binary searches per server) make each sample exact.

:class:`ResponseHistogramProbe` folds every completed job into a
streaming :class:`~repro.engine.stats.LogBinnedHistogram`, giving tail
percentiles at O(bins) memory for runs of any length.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.engine.stats import LogBinnedHistogram
from repro.obs.probes import Probe

__all__ = ["QueueTraceProbe", "ResponseHistogramProbe"]


class QueueTraceProbe(Probe):
    """Time-weighted per-server queue-length and utilization traces.

    Parameters
    ----------
    sample_interval:
        Target spacing of samples in simulation time units (mean service
        times).  Samples land on the first event at or after each grid
        point, so actual spacing can exceed the target during quiet
        stretches; recorded timestamps are always the true sample times.
    max_samples:
        Memory bound.  When the trace would exceed this many samples, it
        is decimated (every other sample dropped) and the interval doubled
        — resolution degrades gracefully instead of memory growing without
        bound on paper-scale runs.
    """

    name = "queue_trace"

    def __init__(
        self, sample_interval: float = 1.0, max_samples: int = 20_000
    ) -> None:
        if sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {sample_interval}"
            )
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self.sample_interval = float(sample_interval)
        self.max_samples = int(max_samples)
        self._sim = None
        self._servers: Sequence = ()
        self._times: list[float] = []
        self._queues: list[list[int]] = []
        self._next_sample = 0.0
        self._finished = False
        self._duration = 0.0
        self._utilization: np.ndarray | None = None

    def on_attach(self, sim, servers) -> None:
        self._sim = sim
        self._servers = servers
        self._times = []
        self._queues = []
        self._next_sample = 0.0
        self._finished = False
        self._sample(0.0)
        self._next_sample = self.sample_interval
        sim.add_hook(self._on_event)

    def _on_event(self, now: float) -> None:
        if now >= self._next_sample:
            self._sample(now)
            self._next_sample = now + self.sample_interval

    def _sample(self, now: float) -> None:
        self._times.append(now)
        self._queues.append(
            [server.queue_length(now) for server in self._servers]
        )
        if len(self._times) > self.max_samples:
            # Halve resolution: keep every other sample, double the grid.
            self._times = self._times[::2]
            self._queues = self._queues[::2]
            self.sample_interval *= 2.0

    def on_finish(self, now: float) -> None:
        if self._times and now > self._times[-1]:
            self._sample(now)
        if self._sim is not None:
            self._sim.remove_hook(self._on_event)
        self._duration = now
        if now > 0:
            self._utilization = np.array(
                [
                    min(server.busy_time, now) / now
                    for server in self._servers
                ]
            )
        else:
            self._utilization = np.zeros(len(self._servers))
        self._finished = True

    # ------------------------------------------------------------------
    # Derived measurements
    # ------------------------------------------------------------------

    @property
    def times(self) -> np.ndarray:
        """Sample timestamps."""
        return np.asarray(self._times, dtype=np.float64)

    @property
    def queue_lengths(self) -> np.ndarray:
        """``(samples, servers)`` queue-length matrix."""
        return np.asarray(self._queues, dtype=np.int64)

    @property
    def utilization(self) -> np.ndarray:
        """Per-server busy fraction over the whole run."""
        if self._utilization is None:
            raise RuntimeError("utilization is available after on_finish()")
        return self._utilization

    def mean_queue_lengths(self) -> np.ndarray:
        """Time-weighted mean queue length per server.

        Uses the step interpolation the trace actually observed: each
        sample's vector is held until the next sample.
        """
        times = self.times
        queues = self.queue_lengths
        if len(times) < 2:
            return queues[0].astype(np.float64) if len(times) else np.array([])
        widths = np.diff(times)
        span = times[-1] - times[0]
        if span <= 0:
            return queues[0].astype(np.float64)
        return (widths[:, None] * queues[:-1]).sum(axis=0) / span

    def imbalance(self) -> float:
        """Max over mean of the time-weighted per-server queue lengths.

        1.0 is a perfectly balanced cluster; a herding cluster shows
        values well above 1 (one server's time-averaged queue dwarfs the
        rest).  Returns 1.0 for an idle cluster.
        """
        means = self.mean_queue_lengths()
        if means.size == 0 or means.mean() <= 0:
            return 1.0
        return float(means.max() / means.mean())

    def summary(self) -> dict:
        queues = self.queue_lengths
        return {
            "sample_interval": self.sample_interval,
            "samples": len(self._times),
            "duration": self._duration,
            "mean_queue_length": [
                round(v, 6) for v in self.mean_queue_lengths()
            ],
            "max_queue_length": (
                queues.max(axis=0).tolist() if queues.size else []
            ),
            "utilization": (
                [round(v, 6) for v in self._utilization]
                if self._utilization is not None
                else []
            ),
            "imbalance": round(self.imbalance(), 6),
        }

    def trace_dict(self) -> dict:
        """The full trace (timestamps + queue matrix) for manifests."""
        return {
            "times": [round(t, 6) for t in self._times],
            "queue_lengths": [list(row) for row in self._queues],
        }


class ResponseHistogramProbe(Probe):
    """Streaming log-binned response-time histogram with tail percentiles."""

    name = "response_histogram"

    def __init__(
        self, min_value: float = 1e-3, bins_per_doubling: int = 8
    ) -> None:
        self.histogram = LogBinnedHistogram(
            min_value=min_value, bins_per_doubling=bins_per_doubling
        )

    def on_job_complete(
        self, server_id: int, completion_time: float, response_time: float
    ) -> None:
        self.histogram.add(response_time)

    def summary(self) -> dict:
        return self.histogram.to_dict()
