"""Observability: probes, traces, herd detection and run manifests.

The paper's central phenomenon — the herd effect under stale load
information — is invisible in headline means.  This package provides the
instrumentation layer a real dispatcher fleet would have: a zero-overhead
probe protocol on the simulation loop, time-weighted per-server queue and
utilization traces, a per-epoch dispatch-concentration (herd) detector,
and JSON run manifests that make every sweep reproducible and auditable.
"""

from repro.obs.chaos import ChaosTrace
from repro.obs.engine_probe import EngineProvenanceProbe
from repro.obs.fault_trace import FaultTraceProbe
from repro.obs.herd import EpochStats, HerdDetector
from repro.obs.manifest import (
    MANIFEST_VERSION,
    build_manifest,
    format_manifest,
    git_describe,
    load_manifest,
    save_manifest,
)
from repro.obs.multidispatch import DispatcherTraceProbe
from repro.obs.overload import OverloadProbe
from repro.obs.probes import Probe, ProbeSet
from repro.obs.traces import QueueTraceProbe, ResponseHistogramProbe
from repro.obs.transient import NonstationaryProvenanceProbe, TransientProbe

__all__ = [
    "Probe",
    "ProbeSet",
    "ChaosTrace",
    "DispatcherTraceProbe",
    "EngineProvenanceProbe",
    "FaultTraceProbe",
    "NonstationaryProvenanceProbe",
    "OverloadProbe",
    "QueueTraceProbe",
    "ResponseHistogramProbe",
    "TransientProbe",
    "HerdDetector",
    "EpochStats",
    "MANIFEST_VERSION",
    "build_manifest",
    "format_manifest",
    "git_describe",
    "load_manifest",
    "save_manifest",
]
