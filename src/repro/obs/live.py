"""Observability for live (on-the-wire) runs.

:class:`LiveTrace` is the live dispatcher's probe: it receives the same
``on_dispatch`` / ``on_load_update`` / ``on_job_complete`` notifications
the simulator probes do — with times in normalized units off the shared
:class:`~repro.live.protocol.LiveClock` — and reuses the *identical*
:class:`~repro.obs.herd.HerdDetector` the simulator runs attach, so
"herd epochs on the wire" and "herd epochs in the simulator" are the
same statistic computed by the same code.  That shared yardstick is what
makes the sim-vs-wire comparison meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.obs.herd import HerdDetector

__all__ = ["LiveTrace"]


class LiveTrace:
    """Accumulates dispatch, completion and board-refresh events.

    Parameters
    ----------
    num_servers:
        Cluster size (the herd detector needs it up front: a live run
        has no ``on_attach`` moment with simulator server objects).
    herd_factor:
        Forwarded to :class:`~repro.obs.herd.HerdDetector`.
    """

    name = "live"

    def __init__(self, num_servers: int, herd_factor: float = 2.0) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        self.num_servers = num_servers
        self.herd = HerdDetector(herd_factor=herd_factor)
        # The detector only reads len() of the server sequence on attach.
        self.herd.on_attach(None, [None] * num_servers)
        self.dispatch_counts = np.zeros(num_servers, dtype=np.int64)
        self.latencies: list[float] = []
        self.load_updates = 0
        self._last_event_time = 0.0

    # -- the probe hooks (live dispatcher + board call these) ------------

    def on_dispatch(
        self, now: float, client_id: int, server_id: int, queue_length: int
    ) -> None:
        self.dispatch_counts[server_id] += 1
        self.herd.on_dispatch(now, client_id, server_id, queue_length)
        self._last_event_time = max(self._last_event_time, now)

    def on_load_update(
        self, now: float, version: int, loads: np.ndarray
    ) -> None:
        self.load_updates += 1
        self.herd.on_load_update(now, version, loads)
        self._last_event_time = max(self._last_event_time, now)

    def on_job_complete(
        self, server_id: int, completion_time: float, response_time: float
    ) -> None:
        self.latencies.append(response_time)
        self._last_event_time = max(self._last_event_time, completion_time)

    # -- summaries -------------------------------------------------------

    def finish(self) -> None:
        """Close the trailing herd epoch (call once, after the run)."""
        self.herd.on_finish(self._last_event_time)

    def mean_latency(self) -> float:
        return (
            float(np.mean(self.latencies)) if self.latencies else float("nan")
        )

    def latency_percentile(self, quantile: float) -> float:
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if not self.latencies:
            return float("nan")
        return float(np.quantile(np.array(self.latencies), quantile))

    def summary(self) -> dict:
        """JSON-serializable digest, manifest-compatible with sim probes."""
        return {
            "dispatch_counts": self.dispatch_counts.tolist(),
            "completed": len(self.latencies),
            "mean_latency": self.mean_latency(),
            "p95_latency": self.latency_percentile(0.95),
            "load_updates": self.load_updates,
            "herd": self.herd.summary(),
        }
