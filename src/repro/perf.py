"""The performance-trajectory harness: timed kernels and ``BENCH_*.json``.

This module gives the repository a *memory* of its own speed.  A fixed set
of named kernels — dispatch loops on both engines plus the hot
water-filling micro-kernels — is timed at pinned knobs and written to
``benchmarks/BENCH_<YYYYMMDD>.json``.  Committing one such file per
significant performance change builds a trajectory that ``repro
bench-trend`` can print and that CI's ``bench-smoke`` job checks new
commits against.

Hardware drift is handled with a *calibration kernel*: a fixed
numpy-plus-interpreter workload timed alongside the real kernels.  Trend
comparisons divide each kernel's wall time by its file's calibration time,
so a faster laptop does not masquerade as a code-level speedup (nor a CI
container as a regression).

Schema of one ``BENCH_*.json`` file::

    {
      "schema": 1,
      "date": "YYYY-MM-DD",
      "commit": "<git rev or 'unknown'>",
      "knobs": {"jobs": ..., "repeats": ..., "num_servers": ...,
                 "offered_load": ..., "period": ...},
      "kernels": {
        "<name>": {"median_s": ..., "jobs_per_sec": ..., "jobs": ...},
        ...
      }
    }

``jobs_per_sec`` is ``jobs / median_s`` for dispatch kernels and ``null``
for micro-kernels whose unit of work is not a job.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import time
from dataclasses import dataclass
from datetime import date as _date
from pathlib import Path
from typing import Callable, Iterable

import numpy as np

__all__ = [
    "PerfKernel",
    "bench_schema_version",
    "default_kernels",
    "run_kernels",
    "write_bench_file",
    "load_bench_files",
    "format_trend",
    "compare_benches",
    "measure_cache_effectiveness",
    "Regression",
]

#: Current on-disk schema version of BENCH_*.json files.
SCHEMA_VERSION = 1

#: Name of the hardware-normalization kernel (always included).
CALIBRATION_KERNEL = "calibrate"

#: Default relative slowdown tolerated before a kernel counts as regressed.
DEFAULT_TOLERANCE = 0.15


def bench_schema_version() -> int:
    """The BENCH_*.json schema version this library reads and writes."""
    return SCHEMA_VERSION


@dataclass(frozen=True)
class PerfKernel:
    """One named, timed workload.

    ``make`` builds a zero-argument callable (setup excluded from timing);
    ``jobs`` is the number of simulated arrivals per call for dispatch
    kernels, or ``None`` for micro-kernels with no job-shaped unit of work.
    ``inner`` is the number of back-to-back calls per timed block, divided
    back out of the recorded time: micro-kernels in the tens of
    microseconds are hopelessly noisy timed one call at a time, so they
    are timed in ~10ms blocks instead.  Fixed per kernel (never
    auto-ranged) so every BENCH point measures the same thing.
    """

    name: str
    make: Callable[[], Callable[[], object]]
    jobs: int | None = None
    inner: int = 1


def _pinned_simulation(engine: str, jobs: int, seed: int = 1):
    """The pinned dispatch cell every BENCH file times.

    Fig. 2's central configuration: 10 servers, offered load 0.9,
    exponential service with mean 1, periodic board with T = 2 phase —
    the workload the paper's headline sweeps are made of.
    """
    from repro.cluster.simulation import ClusterSimulation
    from repro.core.li_basic import BasicLIPolicy
    from repro.staleness.periodic import PeriodicUpdate
    from repro.workloads.arrivals import PoissonArrivals
    from repro.workloads.distributions import Exponential

    return ClusterSimulation(
        num_servers=10,
        arrivals=PoissonArrivals(rate=9.0),
        service=Exponential(1.0),
        policy=BasicLIPolicy(),
        staleness=PeriodicUpdate(period=2.0),
        total_jobs=jobs,
        seed=seed,
        engine=engine,
    )


def _pinned_multidispatch(jobs: int, seed: int = 1):
    """The pinned multi-dispatcher cell: the Fig. 2 configuration split
    across four front-ends sharing one periodic board, each running its
    own basic LI instance with the honest local rate lambda/4."""
    from repro.multidispatch import MultiDispatchSimulation
    from repro.core.li_basic import BasicLIPolicy
    from repro.staleness.periodic import PeriodicUpdate
    from repro.workloads.distributions import Exponential

    return MultiDispatchSimulation(
        num_servers=10,
        total_rate=9.0,
        service=Exponential(1.0),
        policy=BasicLIPolicy,
        staleness=lambda: PeriodicUpdate(period=2.0),
        num_dispatchers=4,
        board="shared",
        total_jobs=jobs,
        seed=seed,
    )


def _pinned_overload(jobs: int, seed: int = 1):
    """The pinned overload cell: the dispatch workload pushed to rho=1.1
    with bounded queues (capacity 16) and circuit breakers on — times the
    per-arrival refusal path (try_assign, breaker bookkeeping, drop
    accounting) that the unprotected kernels never enter."""
    from repro.cluster.simulation import ClusterSimulation
    from repro.core.li_basic import BasicLIPolicy
    from repro.overload import BreakerConfig, OverloadConfig
    from repro.staleness.periodic import PeriodicUpdate
    from repro.workloads.arrivals import PoissonArrivals
    from repro.workloads.distributions import Exponential

    return ClusterSimulation(
        num_servers=10,
        arrivals=PoissonArrivals(rate=11.0),
        service=Exponential(1.0),
        policy=BasicLIPolicy(),
        staleness=PeriodicUpdate(period=2.0),
        total_jobs=jobs,
        seed=seed,
        engine="event",
        overload=OverloadConfig(
            queue_capacity=16, breaker=BreakerConfig()
        ),
    )


def _pinned_flashcrowd(jobs: int, seed: int = 1):
    """The pinned non-stationary cell: repeating 3x flash crowds over the
    dispatch workload at base load 0.6, interpreted through a lagging
    EWMA λ estimate — times the thinning-based arrival path plus the
    per-arrival estimator updates the stationary kernels never run."""
    from repro.cluster.simulation import ClusterSimulation
    from repro.core.li_basic import BasicLIPolicy
    from repro.core.rate_estimators import EWMARate
    from repro.nonstationary import FlashCrowdProgram
    from repro.staleness.periodic import PeriodicUpdate
    from repro.workloads.arrivals import TimeVaryingPoissonArrivals
    from repro.workloads.distributions import Exponential

    program = FlashCrowdProgram(
        6.0, surge_factor=3.0, start=40.0, duration=20.0, every=160.0
    )
    return ClusterSimulation(
        num_servers=10,
        arrivals=TimeVaryingPoissonArrivals(program),
        service=Exponential(1.0),
        policy=BasicLIPolicy(),
        staleness=PeriodicUpdate(period=2.0),
        rate_estimator=EWMARate(),
        total_jobs=jobs,
        seed=seed,
        engine="event",
    )


#: The pinned knobs recorded in every BENCH file, alongside ``jobs``.
PINNED_KNOBS = {"num_servers": 10, "offered_load": 0.9, "period": 2.0}

#: The vector kernel's pinned scale point.  Its job count is fixed (it
#: does NOT follow the ``jobs`` knob): at n=10,000 a small smoke-sized
#: job count would time per-call overhead, not sustained throughput, and
#: a floating count would make BENCH points incomparable.
VECTOR_BENCH_SERVERS = 10_000
VECTOR_BENCH_JOBS = 200_000


def _pinned_vector_simulation(seed: int = 1):
    """The pinned scale cell: the Fig. 2 configuration at n=10,000.

    Offered load and period match :data:`PINNED_KNOBS`; only the cluster
    size (and the aggregate arrival rate that keeps load at 0.9) grows.
    """
    from repro.cluster.simulation import ClusterSimulation
    from repro.core.li_basic import BasicLIPolicy
    from repro.staleness.periodic import PeriodicUpdate
    from repro.workloads.arrivals import PoissonArrivals
    from repro.workloads.distributions import Exponential

    return ClusterSimulation(
        num_servers=VECTOR_BENCH_SERVERS,
        arrivals=PoissonArrivals(rate=0.9 * VECTOR_BENCH_SERVERS),
        service=Exponential(1.0),
        policy=BasicLIPolicy(),
        staleness=PeriodicUpdate(period=2.0),
        total_jobs=VECTOR_BENCH_JOBS,
        seed=seed,
        engine="vector",
    )


def _calibration_workload() -> Callable[[], float]:
    """A fixed workload used to normalize timings across machines.

    Mirrors the instruction blend of the simulation engines — a heap
    event loop of closures, a tight scalar float loop, and small numpy
    batches — WITHOUT calling any repro code: its wall time must move
    with the machine (CPU model, turbo state, neighbors on the host),
    never with the repository, or the normalization would cancel real
    regressions.  Everything here is frozen; do not "optimize" it.
    """
    import heapq

    rng = np.random.default_rng(12345)
    event_times = rng.random(3_000).tolist()
    batch = rng.random(2_000)

    def run() -> float:
        # Heap churn with closure payloads: the event engine's skeleton.
        total = 0.0
        heap: list[tuple[float, int]] = []
        for index, t in enumerate(event_times):
            heapq.heappush(heap, (t, index))
        last = 0.0
        while heap:
            t, index = heapq.heappop(heap)
            # The FIFO recurrence + Welford blend of the hot loop.
            start = t if t > last else last
            last = start + event_times[index % 1000] * 0.1
            total += (last - t - total / (index + 1)) / (index + 1)
        # Batched numpy phase, the fast engine's skeleton.
        acc = np.cumsum(np.sort(batch))
        return total + float(acc[-1])

    return run


def default_kernels(jobs: int) -> list[PerfKernel]:
    """The standard kernel line-up for one BENCH run.

    ``jobs`` pins the arrivals per dispatch-kernel call (the CI smoke job
    uses a small value; local trajectory points use the default or
    ``REPRO_BENCH_JOBS``).
    """
    from repro.core.weights import waterfill_probabilities
    from repro.engine.rng import RandomStreams

    def make_dispatch(engine: str) -> Callable[[], Callable[[], object]]:
        def make() -> Callable[[], object]:
            def run() -> float:
                return _pinned_simulation(engine, jobs).run().mean_response_time

            return run

        return make

    def make_waterfill(n: int) -> Callable[[], Callable[[], object]]:
        def make() -> Callable[[], object]:
            loads = RandomStreams(7).stream("perf").uniform(0.0, 100.0, n)
            expected = float(n) * 4.0

            def run():
                return waterfill_probabilities(loads, expected)

            return run

        return make

    def make_multidispatch() -> Callable[[], object]:
        def run() -> float:
            return _pinned_multidispatch(jobs).run().mean_response_time

        return run

    def make_overload() -> Callable[[], object]:
        def run() -> float:
            return _pinned_overload(jobs).run().goodput

        return run

    def make_flashcrowd() -> Callable[[], object]:
        def run() -> float:
            return _pinned_flashcrowd(jobs).run().mean_response_time

        return run

    def make_vector() -> Callable[[], object]:
        def run() -> float:
            return _pinned_vector_simulation().run().mean_response_time

        return run

    def make_fluid() -> Callable[[], object]:
        from repro.core.li_basic import BasicLIPolicy
        from repro.engine.fluid import fluid_fixed_point

        def run() -> float:
            return fluid_fixed_point(
                BasicLIPolicy(),
                arrival_rate=PINNED_KNOBS["offered_load"],
                period=PINNED_KNOBS["period"],
                num_servers=PINNED_KNOBS["num_servers"],
            ).mean_response_time

        return run

    return [
        PerfKernel(CALIBRATION_KERNEL, lambda: _calibration_workload(), inner=50),
        PerfKernel("dispatch-event", make_dispatch("event"), jobs=jobs),
        PerfKernel("dispatch-fast", make_dispatch("fast"), jobs=jobs),
        PerfKernel(
            "dispatch-vector-n10k", make_vector, jobs=VECTOR_BENCH_JOBS
        ),
        PerfKernel("dispatch-multi4", make_multidispatch, jobs=jobs),
        PerfKernel("overload-bounded", make_overload, jobs=jobs),
        PerfKernel("dispatch-flashcrowd", make_flashcrowd, jobs=jobs),
        PerfKernel("fluid-fixedpoint", make_fluid),
        PerfKernel("waterfill-n10", make_waterfill(10), inner=500),
        PerfKernel("waterfill-n1000", make_waterfill(1000), inner=250),
    ]


def run_kernels(
    jobs: int, repeats: int = 3, kernels: Iterable[PerfKernel] | None = None
) -> dict:
    """Time every kernel and return the BENCH payload (not yet written).

    Each kernel runs once untimed (warm-up: imports, allocator, caches)
    and then ``repeats`` timed calls; the median wall time is recorded.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    results: dict[str, dict] = {}
    for kernel in kernels if kernels is not None else default_kernels(jobs):
        workload = kernel.make()
        workload()  # warm-up, untimed
        times = []
        for _ in range(repeats):
            started = time.perf_counter()
            for _ in range(kernel.inner):
                workload()
            times.append((time.perf_counter() - started) / kernel.inner)
        median = float(np.median(times))
        results[kernel.name] = {
            "median_s": median,
            "jobs": kernel.jobs,
            "jobs_per_sec": (
                kernel.jobs / median if kernel.jobs and median > 0 else None
            ),
        }
    return {
        "schema": SCHEMA_VERSION,
        "date": _date.today().isoformat(),
        "commit": _git_commit(),
        "knobs": {"jobs": jobs, "repeats": repeats, **PINNED_KNOBS},
        "kernels": results,
    }


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def write_bench_file(
    payload: dict, directory: str | Path, date: str | None = None
) -> Path:
    """Write ``payload`` as ``BENCH_<YYYYMMDD>.json`` into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = (date or payload.get("date") or _date.today().isoformat()).replace(
        "-", ""
    )
    path = directory / f"BENCH_{stamp}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_files(directory: str | Path) -> list[tuple[Path, dict]]:
    """Load every ``BENCH_*.json`` under ``directory``, oldest first.

    Files with an unreadable payload or a newer schema raise ``ValueError``
    naming the offending file.
    """
    directory = Path(directory)
    out: list[tuple[Path, dict]] = []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ValueError(f"unreadable bench file {path}: {error}") from error
        if payload.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"{path} has schema {payload.get('schema')!r}; this build "
                f"reads schema {SCHEMA_VERSION}"
            )
        out.append((path, payload))
    return out


def format_trend(benches: list[tuple[Path, dict]]) -> str:
    """A fixed-width table of kernel medians across bench files."""
    if not benches:
        return "no BENCH_*.json files found"
    names: list[str] = []
    for _, payload in benches:
        for name in payload["kernels"]:
            if name not in names:
                names.append(name)
    lines = []
    header = f"{'kernel':<18}" + "".join(
        f"{payload['date']:>14}" for _, payload in benches
    )
    lines.append(header)
    lines.append(
        f"{'(commit)':<18}"
        + "".join(f"{payload['commit']:>14}" for _, payload in benches)
    )
    for name in names:
        row = [f"{name:<18}"]
        for _, payload in benches:
            entry = payload["kernels"].get(name)
            row.append(
                f"{entry['median_s'] * 1e3:>12.2f}ms" if entry else f"{'-':>14}"
            )
        lines.append("".join(row))
    jps_rows = []
    for name in names:
        values = [
            payload["kernels"].get(name, {}).get("jobs_per_sec")
            for _, payload in benches
        ]
        if any(v for v in values):
            jps_rows.append(
                f"{name + ' j/s':<18}"
                + "".join(
                    f"{value:>14,.0f}" if value else f"{'-':>14}"
                    for value in values
                )
            )
    if jps_rows:
        lines.append("")
        lines.extend(jps_rows)
    return "\n".join(lines)


@dataclass(frozen=True)
class Regression:
    """One kernel that got slower than the tolerance allows."""

    kernel: str
    baseline_s: float
    current_s: float
    normalized_ratio: float

    def describe(self) -> str:
        """Human-readable one-liner for CLI and CI output."""
        return (
            f"{self.kernel}: {self.baseline_s * 1e3:.2f}ms -> "
            f"{self.current_s * 1e3:.2f}ms "
            f"({(self.normalized_ratio - 1.0) * 100.0:+.1f}% "
            "hardware-normalized)"
        )


def compare_benches(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[Regression]:
    """Kernels slower in ``current`` than ``baseline`` beyond ``tolerance``.

    Wall times are divided by each payload's calibration-kernel time
    before comparison, so only code-level slowdowns (not hardware
    differences) register.  Falls back to raw wall times when either
    payload lacks the calibration kernel.  Kernels present in only one
    payload are skipped — the trajectory is allowed to grow — and so are
    dispatch kernels whose per-call ``jobs`` differ between the payloads:
    wall times at different scales are not comparable (a small smoke run
    would trivially "beat" a large baseline and mask real regressions).
    """
    if not 0.0 <= tolerance:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")

    def calibration(payload: dict) -> float | None:
        entry = payload["kernels"].get(CALIBRATION_KERNEL)
        if entry and entry["median_s"] > 0:
            return entry["median_s"]
        return None

    current_cal = calibration(current)
    baseline_cal = calibration(baseline)
    normalize = current_cal is not None and baseline_cal is not None

    regressions: list[Regression] = []
    for name, entry in current["kernels"].items():
        if name == CALIBRATION_KERNEL:
            continue
        base_entry = baseline["kernels"].get(name)
        if base_entry is None:
            continue
        if entry.get("jobs") != base_entry.get("jobs"):
            continue
        current_s = entry["median_s"]
        baseline_s = base_entry["median_s"]
        if baseline_s <= 0 or not math.isfinite(current_s):
            continue
        if normalize:
            ratio = (current_s / current_cal) / (baseline_s / baseline_cal)
        else:
            ratio = current_s / baseline_s
        if ratio > 1.0 + tolerance:
            regressions.append(
                Regression(
                    kernel=name,
                    baseline_s=baseline_s,
                    current_s=current_s,
                    normalized_ratio=ratio,
                )
            )
    return regressions


#: Pinned knobs of the cache-effectiveness measurement: small enough to
#: ride along with every BENCH point, fixed so points stay comparable.
CACHE_BENCH_JOBS = 300
CACHE_BENCH_SEEDS = 1


def measure_cache_effectiveness(
    jobs: int = CACHE_BENCH_JOBS,
    seeds: int = CACHE_BENCH_SEEDS,
    figure_ids: Iterable[str] | None = None,
    cache_dir: str | Path | None = None,
) -> dict:
    """Cold-vs-warm wall times for regenerating the registry figure suite.

    Runs every figure (or ``figure_ids``) twice through the cache-aware
    runner against the same content-hashed result cache: the *cold* pass
    executes every cell and fills the cache, the *warm* pass re-resolves
    every cell's run ID and serves all of them from disk.  The warm pass
    is what incremental regeneration costs when nothing changed — spec
    resolution, hashing and cache reads — and its speedup over cold is
    the number CI gates on.

    Returns the ``"cache"`` section of the BENCH payload::

        {"jobs": ..., "seeds": ..., "figures": N, "cells": N,
         "cold_s": ..., "warm_s": ..., "speedup": cold_s / warm_s}

    Raises if any warm cell missed the cache — a miss would mean run IDs
    are unstable between identical invocations, which is a correctness
    bug, not a slow path.
    """
    import tempfile

    from repro.ablation.cache import ResultCache
    from repro.experiments.registry import figure_ids as registry_ids
    from repro.experiments.runner import run_figure

    figures = tuple(figure_ids) if figure_ids is not None else registry_ids()

    def sweep(root: str | Path) -> tuple[float, int, int]:
        cache = ResultCache(root)
        cells = 0
        started = time.perf_counter()
        for figure in figures:
            result = run_figure(figure, jobs=jobs, seeds=seeds, cache=cache)
            cells += result.cache_info["cells"]
        return time.perf_counter() - started, cells, cache.misses

    def run(root: str | Path) -> dict:
        cold_s, cells, _ = sweep(root)
        warm_s, _, warm_misses = sweep(root)
        if warm_misses:
            raise RuntimeError(
                f"{warm_misses} cache misses on the warm pass: run IDs are "
                "not stable across identical invocations"
            )
        return {
            "jobs": jobs,
            "seeds": seeds,
            "figures": len(figures),
            "cells": cells,
            "cold_s": round(cold_s, 3),
            "warm_s": round(warm_s, 3),
            "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else math.inf,
        }

    if cache_dir is not None:
        return run(cache_dir)
    with tempfile.TemporaryDirectory(prefix="repro-cache-bench-") as tmp:
        return run(tmp)


def bench_jobs_from_env(default: int = 15_000) -> int:
    """Dispatch-kernel job count, overridable with ``REPRO_BENCH_JOBS``."""
    raw = os.environ.get("REPRO_BENCH_JOBS")
    if raw is None:
        return default
    value = int(raw)
    if value < 1:
        raise ValueError(f"REPRO_BENCH_JOBS must be >= 1, got {value}")
    return value
