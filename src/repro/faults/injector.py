"""The fault injector: binds a schedule to a running simulation.

A :class:`FaultInjector` is configuration until :meth:`attach` is called
(so it pickles cleanly into worker processes and can be reused across
runs); attaching realizes one per-server :class:`ServerTimeline` from the
dedicated ``"faults"`` random stream and hands each timeline to its
server.  Everything downstream is pull-based — the dispatcher, the
bulletin board and the observability layer query the injector; no events
are added to the calendar — so a null schedule leaves every other
component of the run bit-identical to a fault-free one.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule, ServerState, ServerTimeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.server import Server
    from repro.engine.simulator import Simulator

__all__ = ["FaultInjector"]


class FaultInjector:
    """Per-server fault lifecycle driver plus the dispatcher's retry knobs.

    Parameters
    ----------
    schedule:
        The fault process; defaults to the null schedule (no faults).
    retry:
        Dispatcher timeout/backoff parameters.
    """

    def __init__(
        self,
        schedule: FaultSchedule | None = None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self.retry = retry if retry is not None else RetryPolicy()
        self._timelines: list[ServerTimeline] | None = None
        self._servers: Sequence["Server"] | None = None

    @property
    def attached(self) -> bool:
        return self._timelines is not None

    @property
    def num_servers(self) -> int:
        timelines = self._require_attached()
        return len(timelines)

    def attach(
        self,
        sim: "Simulator",
        servers: Sequence["Server"],
        rng: np.random.Generator,
        probes=None,
    ) -> None:
        """Realize timelines for ``servers`` and bind them.

        All previous state is discarded, so one injector object can drive
        any number of runs; each run's realization depends only on the
        generator it is handed (the run's named ``"faults"`` substream).
        """
        del sim  # pull-based: the injector schedules no events
        scripted = self.schedule.scripted
        timelines: list[ServerTimeline] = []
        # One child seed per server, drawn up front, so lazy extension of
        # one server's timeline never perturbs another's realization.
        child_seeds = rng.integers(0, 2**63 - 1, size=len(servers))
        for server in servers:
            events = tuple(
                event for event in scripted if event.server_id == server.server_id
            )
            if events:
                timeline = ServerTimeline(self.schedule, scripted=events)
                server.timeline = timeline
            elif self.schedule.is_null or scripted:
                # No fault ever touches this server (null schedule, or a
                # scripted schedule that names other servers only): keep it
                # on its exact closed-form fast path, so an attached-but-
                # harmless injector leaves the run bit-identical to a
                # fault-free one, down to the last ulp of busy time.
                timeline = ServerTimeline(self.schedule)
                server.timeline = None
            else:
                child = np.random.Generator(
                    np.random.PCG64(int(child_seeds[server.server_id]))
                )
                timeline = ServerTimeline(self.schedule, rng=child)
                server.timeline = timeline
            timelines.append(timeline)
        self._timelines = timelines
        self._servers = servers
        if probes is not None:
            probes.on_fault_attach(self)

    # -- queries --------------------------------------------------------

    def state_at(self, server_id: int, time: float) -> ServerState:
        return self._require_attached()[server_id].state_at(time)

    def is_down(self, server_id: int, time: float) -> bool:
        return self._require_attached()[server_id].is_down(time)

    def rate_multiplier(self, server_id: int, time: float) -> float:
        return self._require_attached()[server_id].multiplier_at(time)

    def timeline(self, server_id: int) -> ServerTimeline:
        return self._require_attached()[server_id]

    def mask_refresh(
        self, now: float, fresh: np.ndarray, previous: np.ndarray | None
    ) -> np.ndarray:
        """Board refresh as seen through failures.

        A crashed server cannot send its report, so the board keeps the
        last value it heard — the same hidden-staleness fault
        :class:`~repro.staleness.lossy.LossyPeriodicUpdate` injects for
        the whole board, here per server.  Degraded servers still report.
        """
        timelines = self._require_attached()
        if previous is None:
            return fresh
        masked = fresh
        copied = False
        for server_id, timeline in enumerate(timelines):
            if timeline.is_down(now):
                if not copied:
                    masked = fresh.copy()
                    copied = True
                masked[server_id] = previous[server_id]
        return masked

    # -- observability --------------------------------------------------

    def availability_summary(self, duration: float) -> dict:
        """Realized availability over ``[0, duration]``, JSON-serializable."""
        timelines = self._require_attached()
        if duration <= 0:
            return {
                "duration": duration,
                "crashes": 0,
                "availability": 1.0,
                "servers": [],
            }
        servers = []
        total_down = 0.0
        total_crashes = 0
        for server_id, timeline in enumerate(timelines):
            down = degraded = 0.0
            for begin, end, state, _mult in timeline.spans(duration):
                span = end - begin
                if state == ServerState.DOWN.value:
                    down += span
                elif state == ServerState.DEGRADED.value:
                    degraded += span
            crashes = len(timeline.crash_times(duration))
            total_down += down
            total_crashes += crashes
            servers.append(
                {
                    "server": server_id,
                    "crashes": crashes,
                    "down_fraction": down / duration,
                    "degraded_fraction": degraded / duration,
                }
            )
        return {
            "duration": duration,
            "crashes": total_crashes,
            "availability": 1.0 - total_down / (duration * len(timelines)),
            "servers": servers,
        }

    def fault_spans(self, duration: float) -> list[dict]:
        """Non-UP spans over ``[0, duration]`` (the availability timeline)."""
        timelines = self._require_attached()
        out = []
        for server_id, timeline in enumerate(timelines):
            for begin, end, state, mult in timeline.spans(duration):
                if state == ServerState.UP.value:
                    continue
                span = {
                    "server": server_id,
                    "start": begin,
                    "end": end if math.isfinite(end) else None,
                    "state": state,
                }
                if state == ServerState.DEGRADED.value:
                    span["factor"] = mult
                out.append(span)
        out.sort(key=lambda span: (span["start"], span["server"]))
        return out

    def describe(self) -> dict:
        """Configuration digest for run manifests."""
        return {
            "schedule": self.schedule.describe(),
            "retry": self.retry.describe(),
        }

    def _require_attached(self) -> list[ServerTimeline]:
        if self._timelines is None:
            raise RuntimeError(
                "FaultInjector is not attached to a simulation; "
                "ClusterSimulation(faults=...) attaches it for you"
            )
        return self._timelines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(schedule={self.schedule!r}, retry={self.retry!r})"
        )
