"""Fault injection: server crash/recovery, degraded service, retry policy.

The adversarial limit of stale load information is a report from a server
that no longer exists.  This package grows the cluster substrate a
principled fault model: per-server lifecycle timelines (UP / DEGRADED /
DOWN) realized from a dedicated random stream, bulletin boards that keep
advertising a crashed server's last report, and a dispatcher that pays
for each misdirected job with a timeout and capped-backoff retries.
"""

from repro.faults.injector import FaultInjector
from repro.faults.parse import parse_fault_spec
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    ServerState,
    ServerTimeline,
)

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "RetryPolicy",
    "ServerState",
    "ServerTimeline",
    "parse_fault_spec",
]
