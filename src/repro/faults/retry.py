"""Dispatcher-side robustness: timeout, capped exponential backoff, retries.

When the dispatcher sends a job to a server that has crashed, it does not
learn the truth from the (stale) bulletin board — it discovers it the hard
way, by waiting out a timeout.  The job is then re-dispatched to another
server, with the failed one on an exclusion list and an exponentially
growing (capped) backoff between attempts.  Every time unit spent on
timeouts and backoff is added to the job's measured response time: under
stale information, failures are paid for in latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Timeout/retry parameters of the dispatcher.

    Attributes
    ----------
    timeout:
        Time ``t_o`` a dispatch to a down server wastes before the
        dispatcher gives up on it.
    backoff_base:
        Backoff before the first re-dispatch; attempt ``k`` waits
        ``min(backoff_base * 2**(k-1), backoff_cap)``.
    backoff_cap:
        Upper bound on any single backoff delay.
    max_attempts:
        Re-dispatch attempts before the job is dropped as failed;
        0 means retry until a live server is found.
    jitter:
        Fractional jitter on each backoff: the realized delay is uniform
        in ``delay * [1 - jitter, 1 + jitter]``, drawn from the
        ``"faults"`` stream.  The default 0 keeps backoffs deterministic
        (bit-identical to older runs) — but deterministic backoff means
        simultaneous failures re-dispatch in lock-step, a retry herd;
        any positive jitter de-synchronizes them.
    """

    timeout: float = 0.5
    backoff_base: float = 0.25
    backoff_cap: float = 8.0
    max_attempts: int = 0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.timeout) or self.timeout < 0:
            raise ValueError(
                f"timeout must be finite and non-negative, got {self.timeout}"
            )
        if not math.isfinite(self.backoff_base) or self.backoff_base < 0:
            raise ValueError(
                "backoff_base must be finite and non-negative, got "
                f"{self.backoff_base}"
            )
        if not math.isfinite(self.backoff_cap) or self.backoff_cap < 0:
            raise ValueError(
                "backoff_cap must be finite and non-negative, got "
                f"{self.backoff_cap}"
            )
        if self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"backoff_cap ({self.backoff_cap}) must be >= backoff_base "
                f"({self.backoff_base})"
            )
        if self.max_attempts < 0:
            raise ValueError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )
        if self.timeout == 0 and self.backoff_base == 0 and self.max_attempts == 0:
            raise ValueError(
                "timeout and backoff_base cannot both be zero with unlimited "
                "max_attempts: retries would spin at a single instant"
            )
        if not 0.0 <= self.jitter < 1.0 or not math.isfinite(self.jitter):
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def backoff_delay(self, attempt: int, rng=None) -> float:
        """Backoff before re-dispatch attempt ``attempt`` (1-based).

        ``rng`` is the ``"faults"`` stream; it is consulted (one uniform)
        only when ``jitter > 0``, so zero-jitter policies draw nothing
        regardless of whether a generator is supplied.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        # Cap the exponent as well: 2.0**large overflows to inf.
        doubling = min(attempt - 1, 64)
        delay = min(self.backoff_base * 2.0**doubling, self.backoff_cap)
        if self.jitter > 0.0:
            if rng is None:
                raise ValueError("jitter > 0 needs the 'faults' random stream")
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay

    def describe(self) -> dict:
        """JSON-serializable summary (for run manifests)."""
        return {
            "timeout": self.timeout,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "max_attempts": self.max_attempts,
            "jitter": self.jitter,
        }
