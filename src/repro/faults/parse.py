"""Parse the CLI's compact ``--faults`` specification string.

The format is ``key=value`` pairs separated by commas, e.g.::

    --faults mttf=200,mttr=10,mode=abort,timeout=0.5,backoff=0.25

Schedule keys: ``mttf``, ``mttr``, ``degrade-mttf``, ``degrade-mttr``,
``degrade-factor``, ``mode`` (stall|abort).  Retry keys: ``timeout``,
``backoff``, ``backoff-cap``, ``attempts``.  Validation happens in the
:class:`FaultSchedule`/:class:`RetryPolicy` constructors, so malformed
values fail with the same messages the library API gives.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultSchedule

__all__ = ["parse_fault_spec"]

_SCHEDULE_KEYS = {
    "mttf": "mttf",
    "mttr": "mttr",
    "degrade-mttf": "degrade_mttf",
    "degrade-mttr": "degrade_mttr",
    "degrade-factor": "degrade_factor",
}
_RETRY_KEYS = {
    "timeout": "timeout",
    "backoff": "backoff_base",
    "backoff-cap": "backoff_cap",
}


def parse_fault_spec(text: str) -> FaultInjector:
    """Build a :class:`FaultInjector` from a ``--faults`` string."""
    schedule_kwargs: dict = {}
    retry_kwargs: dict = {}
    for raw in text.split(","):
        part = raw.strip()
        if not part:
            continue
        key, separator, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if not separator or not value:
            raise ValueError(
                f"malformed --faults entry {part!r}; expected key=value"
            )
        if key in _SCHEDULE_KEYS:
            schedule_kwargs[_SCHEDULE_KEYS[key]] = _parse_number(key, value)
        elif key in _RETRY_KEYS:
            retry_kwargs[_RETRY_KEYS[key]] = _parse_number(key, value)
        elif key == "mode":
            schedule_kwargs["on_crash"] = value
        elif key == "attempts":
            retry_kwargs["max_attempts"] = _parse_int(key, value)
        else:
            known = sorted(
                [*_SCHEDULE_KEYS, *_RETRY_KEYS, "mode", "attempts"]
            )
            raise ValueError(
                f"unknown --faults key {key!r}; known keys: {', '.join(known)}"
            )
    return FaultInjector(
        schedule=FaultSchedule(**schedule_kwargs),
        retry=RetryPolicy(**retry_kwargs),
    )


def _parse_number(key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"--faults key {key!r} needs a number, got {value!r}"
        ) from None


def _parse_int(key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"--faults key {key!r} needs an integer, got {value!r}"
        ) from None
