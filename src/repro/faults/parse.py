"""Parse the CLI's compact ``--faults`` specification string.

The format is ``key=value`` pairs separated by commas, e.g.::

    --faults mttf=200,mttr=10,mode=abort,timeout=0.5,backoff=0.25

Schedule keys: ``mttf``, ``mttr``, ``degrade-mttf``, ``degrade-mttr``,
``degrade-factor``, ``mode`` (stall|abort).  Retry keys: ``timeout``,
``backoff``, ``backoff-cap``, ``attempts``.

Scripted timelines (mutually exclusive with the stochastic knobs, per
the :class:`FaultSchedule` contract) use repeatable window keys::

    --faults down=0:40:60,mode=abort            # server 0 DOWN on [40, 60)
    --faults down=1:20:30,degrade=0:10:50:0.5   # may be combined/repeated

``down=SERVER:START:END`` expands to a crash/recover pair and
``degrade=SERVER:START:END:FACTOR`` to a degrade/restore pair.
Validation happens in the :class:`FaultSchedule`/:class:`RetryPolicy`
constructors, so malformed values fail with the same messages the
library API gives.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = ["parse_fault_spec"]

_SCHEDULE_KEYS = {
    "mttf": "mttf",
    "mttr": "mttr",
    "degrade-mttf": "degrade_mttf",
    "degrade-mttr": "degrade_mttr",
    "degrade-factor": "degrade_factor",
}
_RETRY_KEYS = {
    "timeout": "timeout",
    "backoff": "backoff_base",
    "backoff-cap": "backoff_cap",
}


def parse_fault_spec(text: str) -> FaultInjector:
    """Build a :class:`FaultInjector` from a ``--faults`` string."""
    schedule_kwargs: dict = {}
    retry_kwargs: dict = {}
    scripted: list[FaultEvent] = []
    for raw in text.split(","):
        part = raw.strip()
        if not part:
            continue
        key, separator, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if not separator or not value:
            raise ValueError(
                f"malformed --faults entry {part!r}; expected key=value"
            )
        if key in _SCHEDULE_KEYS:
            schedule_kwargs[_SCHEDULE_KEYS[key]] = _parse_number(key, value)
        elif key in _RETRY_KEYS:
            retry_kwargs[_RETRY_KEYS[key]] = _parse_number(key, value)
        elif key == "mode":
            schedule_kwargs["on_crash"] = value
        elif key == "attempts":
            retry_kwargs["max_attempts"] = _parse_int(key, value)
        elif key in ("down", "degrade"):
            scripted.extend(_parse_window(key, value))
        else:
            known = sorted(
                [
                    *_SCHEDULE_KEYS,
                    *_RETRY_KEYS,
                    "mode",
                    "attempts",
                    "down",
                    "degrade",
                ]
            )
            raise ValueError(
                f"unknown --faults key {key!r}; known keys: {', '.join(known)}"
            )
    if scripted:
        schedule_kwargs["scripted"] = tuple(scripted)
    return FaultInjector(
        schedule=FaultSchedule(**schedule_kwargs),
        retry=RetryPolicy(**retry_kwargs),
    )


def _parse_window(key: str, value: str) -> list[FaultEvent]:
    """Expand one ``down``/``degrade`` window into its event pair.

    ``down=SERVER:START:END`` -> crash at START, recover at END;
    ``degrade=SERVER:START:END:FACTOR`` -> degrade at START (with the
    given rate factor), restore at END.
    """
    fields = value.split(":")
    expected = 3 if key == "down" else 4
    if len(fields) != expected:
        shape = (
            "SERVER:START:END" if key == "down" else "SERVER:START:END:FACTOR"
        )
        raise ValueError(
            f"--faults key {key!r} needs {shape}, got {value!r}"
        )
    server = _parse_int(key, fields[0])
    start = _parse_number(key, fields[1])
    end = _parse_number(key, fields[2])
    if end <= start:
        raise ValueError(
            f"--faults {key}={value!r}: window end must be after start"
        )
    if key == "down":
        return [
            FaultEvent(start, server, "crash"),
            FaultEvent(end, server, "recover"),
        ]
    factor = _parse_number(key, fields[3])
    return [
        FaultEvent(start, server, "degrade", factor=factor),
        FaultEvent(end, server, "restore"),
    ]


def _parse_number(key: str, value: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"--faults key {key!r} needs a number, got {value!r}"
        ) from None


def _parse_int(key: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"--faults key {key!r} needs an integer, got {value!r}"
        ) from None
