"""Fault schedules and per-server lifecycle timelines.

A server's availability over one run is a piecewise-constant *capacity
profile*: alternating spans of ``UP`` (full rate), ``DEGRADED`` (rate
scaled by a factor in (0, 1)) and ``DOWN`` (rate zero).  Because the
cluster substrate computes completion times analytically at dispatch
(:class:`~repro.cluster.server.Server`), faults are modeled the same way:
the profile is a function of time drawn *before* it is consulted, from a
dedicated random stream, so the fault process is independent of the
workload and of every other stochastic component.

Two ways to describe a profile:

* stochastically, as a renewal process parameterized by MTTF/MTTR (and an
  analogous incidence/duration pair for degraded spans), extended lazily
  as far as the simulation asks; or
* exactly, as a scripted list of :class:`FaultEvent` transitions — the
  form unit tests and postmortem replays use.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["ServerState", "FaultEvent", "FaultSchedule", "ServerTimeline"]


class ServerState(Enum):
    """Lifecycle state of one server."""

    UP = "up"
    DEGRADED = "degraded"
    DOWN = "down"


#: Scripted transition kinds and the state each one enters.
_EVENT_STATES = {
    "crash": ServerState.DOWN,
    "recover": ServerState.UP,
    "degrade": ServerState.DEGRADED,
    "restore": ServerState.UP,
}


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scripted lifecycle transition.

    Attributes
    ----------
    time:
        Simulation time of the transition (>= 0).
    server_id:
        Index of the affected server.
    kind:
        ``"crash"`` (enter DOWN), ``"recover"`` (leave DOWN),
        ``"degrade"`` (enter DEGRADED) or ``"restore"`` (leave DEGRADED).
    factor:
        Service-rate multiplier for ``"degrade"`` events, in (0, 1);
        ignored for the other kinds.
    """

    time: float
    server_id: int
    kind: str
    factor: float = 0.5

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise ValueError(
                f"fault event time must be finite and >= 0, got {self.time}"
            )
        if self.server_id < 0:
            raise ValueError(
                f"fault event server_id must be >= 0, got {self.server_id}"
            )
        if self.kind not in _EVENT_STATES:
            raise ValueError(
                f"fault event kind must be one of {sorted(_EVENT_STATES)}, "
                f"got {self.kind!r}"
            )
        if self.kind == "degrade" and not 0.0 < self.factor < 1.0:
            raise ValueError(
                f"degrade factor must be in (0, 1), got {self.factor}"
            )


@dataclass(frozen=True, slots=True)
class FaultSchedule:
    """Configuration of the per-server fault process.

    With every stochastic knob at its default (``None``/zero incidence)
    and no scripted events, the schedule is the *null schedule*: servers
    stay UP forever and an attached injector is a pure pass-through.

    Attributes
    ----------
    mttf:
        Mean time to failure: from UP, crashes arrive Poisson with rate
        ``1/mttf``.  ``None`` disables crashes.
    mttr:
        Mean time to repair: each DOWN span lasts exponential(``mttr``).
    degrade_mttf:
        Mean time between degradation incidents (``None`` disables them).
    degrade_mttr:
        Mean duration of a degraded span.
    degrade_factor:
        Service-rate multiplier while DEGRADED, in (0, 1).
    scripted:
        Explicit :class:`FaultEvent` timeline.  Mutually exclusive with
        the stochastic knobs.
    on_crash:
        What a crash does to jobs present on the server: ``"stall"``
        suspends service until recovery (jobs survive), ``"abort"``
        discards every job present at the crash instant (fail-stop).
    """

    mttf: float | None = None
    mttr: float = 10.0
    degrade_mttf: float | None = None
    degrade_mttr: float = 10.0
    degrade_factor: float = 0.5
    scripted: tuple[FaultEvent, ...] = ()
    on_crash: str = "stall"

    def __post_init__(self) -> None:
        for name in ("mttf", "degrade_mttf"):
            value = getattr(self, name)
            if value is not None and (not math.isfinite(value) or value <= 0):
                raise ValueError(
                    f"{name} must be positive and finite (or None), got {value}"
                )
        for name in ("mttr", "degrade_mttr"):
            value = getattr(self, name)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(
                    f"{name} must be positive and finite, got {value}"
                )
        if not 0.0 < self.degrade_factor < 1.0:
            raise ValueError(
                f"degrade_factor must be in (0, 1), got {self.degrade_factor}"
            )
        if self.on_crash not in ("stall", "abort"):
            raise ValueError(
                f"on_crash must be 'stall' or 'abort', got {self.on_crash!r}"
            )
        if self.scripted:
            object.__setattr__(self, "scripted", tuple(self.scripted))
            if self.mttf is not None or self.degrade_mttf is not None:
                raise ValueError(
                    "a schedule is either scripted or stochastic; scripted "
                    "events cannot be combined with mttf/degrade_mttf"
                )
            for event in self.scripted:
                if not isinstance(event, FaultEvent):
                    raise ValueError(
                        f"scripted entries must be FaultEvent, got {event!r}"
                    )

    @property
    def is_null(self) -> bool:
        """True when no fault can ever occur under this schedule."""
        return (
            self.mttf is None
            and self.degrade_mttf is None
            and not self.scripted
        )

    def describe(self) -> dict:
        """JSON-serializable summary (for run manifests and run IDs).

        Scripted schedules list every event in canonical (time, server)
        order: run-ID folding hashes this digest, so two different
        scripted timelines must never describe identically.
        """
        summary: dict = {"on_crash": self.on_crash}
        if self.scripted:
            summary["scripted_events"] = len(self.scripted)
            summary["scripted"] = [
                {
                    "time": event.time,
                    "server": event.server_id,
                    "kind": event.kind,
                    **(
                        {"factor": event.factor}
                        if event.kind == "degrade"
                        else {}
                    ),
                }
                for event in sorted(
                    self.scripted, key=lambda e: (e.time, e.server_id)
                )
            ]
        if self.mttf is not None:
            summary["mttf"] = self.mttf
            summary["mttr"] = self.mttr
        if self.degrade_mttf is not None:
            summary["degrade_mttf"] = self.degrade_mttf
            summary["degrade_mttr"] = self.degrade_mttr
            summary["degrade_factor"] = self.degrade_factor
        return summary


class ServerTimeline:
    """The realized capacity profile of one server.

    Segments are kept as three parallel arrays: boundary times, the rate
    multiplier in force *from* each boundary, and the state entered at it.
    A boundary belongs to the segment it opens (a server is DOWN at the
    crash instant itself and UP again at the recovery instant).

    Stochastic timelines are extended lazily, one incident cycle at a
    time, from this server's own generator — so the realization is
    independent of the order in which servers are queried.
    """

    __slots__ = (
        "_times",
        "_mults",
        "_states",
        "_crashes",
        "_frontier",
        "_rng",
        "_schedule",
    )

    def __init__(
        self,
        schedule: FaultSchedule,
        rng: np.random.Generator | None = None,
        scripted: tuple[FaultEvent, ...] = (),
    ) -> None:
        self._times: list[float] = [0.0]
        self._mults: list[float] = [1.0]
        self._states: list[ServerState] = [ServerState.UP]
        self._crashes: list[float] = []
        self._schedule = schedule
        self._rng = rng
        if scripted:
            self._apply_scripted(scripted)
            self._frontier = math.inf
        elif schedule.is_null or rng is None:
            self._frontier = math.inf
        else:
            self._frontier = 0.0

    def _apply_scripted(self, events: tuple[FaultEvent, ...]) -> None:
        previous = -1.0
        for event in sorted(events, key=lambda e: e.time):
            if event.time == previous:
                raise ValueError(
                    "scripted fault events for one server must have "
                    f"distinct times; duplicate at t={event.time}"
                )
            previous = event.time
            state = _EVENT_STATES[event.kind]
            if state is ServerState.DOWN:
                multiplier = 0.0
                self._crashes.append(event.time)
            elif state is ServerState.DEGRADED:
                multiplier = event.factor
            else:
                multiplier = 1.0
            self._times.append(event.time)
            self._mults.append(multiplier)
            self._states.append(state)

    # -- lazy stochastic extension -------------------------------------

    def _extend(self) -> None:
        """Generate one more incident cycle past the current frontier."""
        schedule = self._schedule
        rng = self._rng
        assert rng is not None
        crash_rate = 1.0 / schedule.mttf if schedule.mttf else 0.0
        degrade_rate = (
            1.0 / schedule.degrade_mttf if schedule.degrade_mttf else 0.0
        )
        total = crash_rate + degrade_rate
        assert total > 0.0
        incident = self._frontier + float(rng.exponential(1.0 / total))
        is_crash = crash_rate > 0 and (
            degrade_rate == 0 or float(rng.random()) < crash_rate / total
        )
        if is_crash:
            duration = float(rng.exponential(schedule.mttr))
            self._times.append(incident)
            self._mults.append(0.0)
            self._states.append(ServerState.DOWN)
            self._crashes.append(incident)
        else:
            duration = float(rng.exponential(schedule.degrade_mttr))
            self._times.append(incident)
            self._mults.append(schedule.degrade_factor)
            self._states.append(ServerState.DEGRADED)
        end = incident + duration
        self._times.append(end)
        self._mults.append(1.0)
        self._states.append(ServerState.UP)
        self._frontier = end

    def ensure_until(self, time: float) -> None:
        """Realize the profile at least up to ``time``."""
        if not math.isfinite(time):
            return
        while self._frontier <= time:
            self._extend()

    # -- queries --------------------------------------------------------

    def _segment_index(self, time: float) -> int:
        self.ensure_until(time)
        return bisect_right(self._times, time) - 1

    def state_at(self, time: float) -> ServerState:
        """Lifecycle state at ``time`` (DOWN at the crash instant itself)."""
        if time < 0:
            return ServerState.UP
        return self._states[self._segment_index(time)]

    def multiplier_at(self, time: float) -> float:
        """Service-rate multiplier in force at ``time``."""
        if time < 0:
            return 1.0
        return self._mults[self._segment_index(time)]

    def is_down(self, time: float) -> bool:
        return self.state_at(time) is ServerState.DOWN

    def first_crash_in(self, start: float, end: float) -> float | None:
        """Earliest crash instant in ``[start, end)``, or ``None``."""
        if end <= start:
            return None
        self.ensure_until(end if math.isfinite(end) else start)
        index = bisect_right(self._crashes, start)
        if index > 0 and self._crashes[index - 1] == start:
            index -= 1  # a crash exactly at ``start`` is inside the window
        if index < len(self._crashes) and self._crashes[index] < end:
            return self._crashes[index]
        return None

    def serve(
        self, arrival: float, start: float, service_time: float, base_rate: float
    ) -> tuple[float, bool]:
        """Completion of a job of demand ``service_time`` starting at ``start``.

        Integrates the capacity profile ``base_rate * multiplier(t)`` from
        ``start`` until ``service_time`` units of work are delivered.
        Under an ``"abort"`` schedule, a crash while the job is present
        (from ``arrival`` on) kills it instead: the job leaves the queue
        at the crash instant and ``aborted`` is True.  A job stalled
        behind a permanent scripted outage never completes and returns
        ``(inf, False)``.
        """
        if not math.isfinite(start):
            return math.inf, False
        completion = self._completion(start, service_time, base_rate)
        if self._schedule.on_crash == "abort":
            crash = self.first_crash_in(arrival, completion)
            if crash is not None:
                return crash, True
        return completion, False

    def _completion(self, start: float, work: float, base_rate: float) -> float:
        if work <= 0.0:
            return start
        remaining = work
        time = start
        index = self._segment_index(start)
        while True:
            multiplier = self._mults[index]
            if index + 1 < len(self._times):
                boundary = self._times[index + 1]
            elif math.isfinite(self._frontier):
                self._extend()
                boundary = self._times[index + 1]
            else:
                boundary = math.inf
            if multiplier > 0.0:
                rate = base_rate * multiplier
                span = remaining / rate
                if time + span <= boundary or boundary == math.inf:
                    return time + span
                remaining -= (boundary - time) * rate
            elif boundary == math.inf:
                return math.inf  # permanently down: the job stalls forever
            time = boundary
            index += 1

    def spans(self, until: float) -> list[tuple[float, float, str, float]]:
        """Realized ``(start, end, state, multiplier)`` spans over ``[0, until]``.

        Used by observability to report availability; extends a stochastic
        timeline to ``until`` if needed and clips the final span.
        """
        if until < 0:
            raise ValueError(f"until must be >= 0, got {until}")
        self.ensure_until(until)
        out: list[tuple[float, float, str, float]] = []
        for index, begin in enumerate(self._times):
            if begin > until:
                break
            end = (
                self._times[index + 1]
                if index + 1 < len(self._times)
                else math.inf
            )
            out.append(
                (
                    begin,
                    min(end, until),
                    self._states[index].value,
                    self._mults[index],
                )
            )
        return out

    def crash_times(self, until: float) -> list[float]:
        """Crash instants realized in ``[0, until]``."""
        self.ensure_until(until)
        return [t for t in self._crashes if t <= until]
