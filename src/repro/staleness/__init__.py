"""Staleness models: how (old) load information reaches dispatchers.

The paper's three models of old information (§3), plus the individual-update
model Mitzenmacher examines (which the paper omits "for compactness" — we
include it for completeness):

* :class:`PeriodicUpdate` — a bulletin board refreshed every ``T`` time
  units; all requests in a phase see the same snapshot.
* :class:`ContinuousUpdate` — each request sees the system as it was a
  random delay ``d`` ago (constant, uniform, or exponential ``d``);
  optionally the request knows its actual ``d`` (Fig. 7) rather than only
  the mean (Fig. 6).
* :class:`UpdateOnAccess` — each client's snapshot is refreshed by the
  reply to its own previous request, so active clients see fresher data.
* :class:`IndividualUpdate` — every server posts its own load on its own
  period with a random phase offset.
"""

from repro.staleness.base import LoadView, StalenessModel
from repro.staleness.continuous import ContinuousUpdate
from repro.staleness.individual import IndividualUpdate
from repro.staleness.lossy import LossyPeriodicUpdate
from repro.staleness.periodic import PeriodicUpdate
from repro.staleness.update_on_access import UpdateOnAccess

__all__ = [
    "LoadView",
    "StalenessModel",
    "PeriodicUpdate",
    "LossyPeriodicUpdate",
    "ContinuousUpdate",
    "UpdateOnAccess",
    "IndividualUpdate",
]
