"""Interfaces shared by all staleness models.

A staleness model sits between the true server state and the dispatcher:
at each arrival it produces a :class:`LoadView` — the (possibly stale) load
vector plus the metadata a load-interpretation policy needs to reason about
its age.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.cluster.server import Server
from repro.engine.simulator import Simulator

__all__ = ["LoadView", "StalenessModel"]


@dataclass(slots=True)
class LoadView:
    """What a dispatching policy sees at one arrival.

    Attributes
    ----------
    loads:
        Reported queue length of each server (stale).
    version:
        Increments whenever the underlying information changes.  Policies
        that precompute per-snapshot state (Basic LI under the periodic
        model computes one probability vector per phase) cache on this.
    info_time:
        Simulation time at which ``loads`` was sampled from the servers.
    now:
        Current simulation time (the arrival instant).
    horizon:
        The interpretation window ``T`` in time units: for the periodic
        model the phase length; for the continuous and update-on-access
        models the *average* information age.  LI algorithms compute the
        expected number of arrivals over this window.
    elapsed:
        The information's actual age, ``now - info_time`` (>= 0).
    known_age:
        Whether the policy is allowed to use ``elapsed``.  Under the
        continuous model the paper distinguishes clients that know only
        the mean delay (Fig. 6, ``known_age=False``) from clients that
        know each request's actual delay (Fig. 7, ``known_age=True``).
    phase_based:
        True for bulletin-board semantics: information was published at
        ``info_time`` and will be refreshed at ``info_time + horizon``;
        Basic LI then equalizes over the whole phase and Aggressive LI
        schedules subintervals by ``elapsed``.  False for sliding-age
        semantics (continuous / update-on-access).
    ages:
        Optional per-server ages for models where servers report
        independently (:class:`~repro.staleness.individual.IndividualUpdate`);
        ``None`` when all entries share the same age.
    client_id:
        Identity of the requesting client — used by locality-aware
        policies whose scores depend on who is asking.
    """

    loads: np.ndarray
    version: int
    info_time: float
    now: float
    horizon: float
    elapsed: float
    known_age: bool
    phase_based: bool
    ages: np.ndarray | None = None
    client_id: int = 0

    @property
    def effective_window(self) -> float:
        """The window an LI policy should interpret the loads over.

        Phase-based models equalize over the full phase; sliding-age models
        use the actual age when it is known and the mean age otherwise.
        """
        if self.phase_based:
            return self.horizon
        if self.known_age:
            return self.elapsed
        return self.horizon


class StalenessModel(ABC):
    """Produces :class:`LoadView` objects from true server state.

    Parameters
    ----------
    metric:
        What a "load" report contains.  ``"queue-length"`` (the paper's
        setting) reports the number of jobs present; ``"work-backlog"``
        reports the unfinished work in time units — the signal
        job-size-aware policies use (cf. Harchol-Balter et al., discussed
        in the paper's §2).  With mean job size 1.0 the LI water-filling
        interpretation applies unchanged to either metric, since the
        expected *work* arriving over a window equals the expected *count*.
    """

    METRICS = ("queue-length", "work-backlog")

    def __init__(self, metric: str = "queue-length") -> None:
        if metric not in self.METRICS:
            raise ValueError(
                f"metric must be one of {self.METRICS}, got {metric!r}"
            )
        self.metric = metric
        self._servers: list[Server] | None = None
        self._sim: Simulator | None = None
        self._probes = None
        self._faults = None

    @property
    def num_servers(self) -> int:
        """Cluster size (available after :meth:`attach`)."""
        servers = self._require_attached()
        return len(servers)

    def attach(
        self,
        sim: Simulator,
        servers: list[Server],
        rng: np.random.Generator,
        probes=None,
        faults=None,
    ) -> None:
        """Bind to a simulation and schedule any recurring processes.

        ``probes``, when given, is a :class:`repro.obs.probes.Probe` (or
        :class:`~repro.obs.probes.ProbeSet`) notified via its
        ``on_load_update`` hook whenever this model publishes fresh load
        information.  ``faults``, when given, is an attached
        :class:`~repro.faults.injector.FaultInjector`: crashed servers
        cannot send load reports, so refreshes keep their last pre-crash
        entry — hidden staleness on top of the model's own aging.  Both
        are rebound on every attach so wiring never leaks across runs of
        a reused model object.
        """
        self._sim = sim
        self._servers = servers
        self._rng = rng
        self._probes = probes
        self._faults = faults
        self._on_attach()

    def info_summary(self) -> dict:
        """JSON-serializable counters describing realized information flow.

        The base model has nothing to report; subclasses with interesting
        internal accounting (e.g. the lossy board's attempted/dropped
        refresh counters) override this for run manifests and the ``obs``
        CLI summary.
        """
        return {}

    def _on_attach(self) -> None:
        """Hook for subclasses (e.g. to schedule the first board refresh)."""

    def _emit_load_update(
        self, now: float, version: int, loads: np.ndarray
    ) -> None:
        """Notify attached probes of a load-information refresh (if any)."""
        if self._probes is not None:
            self._probes.on_load_update(now, version, loads)

    @abstractmethod
    def view(self, client_id: int, now: float) -> LoadView:
        """Return the load information visible to ``client_id`` at ``now``."""

    def on_dispatch(self, client_id: int, server_id: int, now: float) -> None:
        """Hook called after each dispatch (used by update-on-access)."""

    def true_loads(self, now: float) -> np.ndarray:
        """Ground-truth queue lengths (for measurement, never for policies)."""
        servers = self._require_attached()
        return np.array([server.queue_length(now) for server in servers])

    def _require_attached(self) -> list[Server]:
        if self._servers is None:
            raise RuntimeError(
                f"{type(self).__name__} is not attached to a simulation; "
                "call attach() first (ClusterSimulation does this for you)"
            )
        return self._servers

    def _sample_loads(self, at_time: float) -> np.ndarray:
        """Load reports for all servers as of ``at_time`` (clamped to >= 0).

        Reports queue lengths or work backlogs depending on ``metric``.
        """
        servers = self._require_attached()
        when = max(at_time, 0.0)
        if self.metric == "work-backlog":
            return np.array(
                [server.work_remaining(when) for server in servers],
                dtype=np.float64,
            )
        return np.array(
            [server.queue_length(when) for server in servers], dtype=np.float64
        )
