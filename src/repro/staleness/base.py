"""Interfaces shared by all staleness models.

A staleness model sits between the true server state and the dispatcher:
at each arrival it produces a :class:`LoadView` — the (possibly stale) load
vector plus the metadata a load-interpretation policy needs to reason about
its age.

:class:`LoadView` itself lives in :mod:`repro.core.views` (re-exported
here for backward compatibility): the view type is the engine-agnostic
policy interface, shared with the live asyncio dispatcher, while this
module holds the *simulator-side* producers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.cluster.server import Server
from repro.core.views import LoadView
from repro.engine.simulator import Simulator

__all__ = ["LoadView", "StalenessModel"]


class StalenessModel(ABC):
    """Produces :class:`LoadView` objects from true server state.

    Parameters
    ----------
    metric:
        What a "load" report contains.  ``"queue-length"`` (the paper's
        setting) reports the number of jobs present; ``"work-backlog"``
        reports the unfinished work in time units — the signal
        job-size-aware policies use (cf. Harchol-Balter et al., discussed
        in the paper's §2).  With mean job size 1.0 the LI water-filling
        interpretation applies unchanged to either metric, since the
        expected *work* arriving over a window equals the expected *count*.
    """

    METRICS = ("queue-length", "work-backlog")

    def __init__(self, metric: str = "queue-length") -> None:
        if metric not in self.METRICS:
            raise ValueError(
                f"metric must be one of {self.METRICS}, got {metric!r}"
            )
        self.metric = metric
        self._servers: list[Server] | None = None
        self._sim: Simulator | None = None
        self._probes = None
        self._faults = None

    @property
    def num_servers(self) -> int:
        """Cluster size (available after :meth:`attach`)."""
        servers = self._require_attached()
        return len(servers)

    def attach(
        self,
        sim: Simulator,
        servers: list[Server],
        rng: np.random.Generator,
        probes=None,
        faults=None,
    ) -> None:
        """Bind to a simulation and schedule any recurring processes.

        ``probes``, when given, is a :class:`repro.obs.probes.Probe` (or
        :class:`~repro.obs.probes.ProbeSet`) notified via its
        ``on_load_update`` hook whenever this model publishes fresh load
        information.  ``faults``, when given, is an attached
        :class:`~repro.faults.injector.FaultInjector`: crashed servers
        cannot send load reports, so refreshes keep their last pre-crash
        entry — hidden staleness on top of the model's own aging.  Both
        are rebound on every attach so wiring never leaks across runs of
        a reused model object.
        """
        self._sim = sim
        self._servers = servers
        self._rng = rng
        self._probes = probes
        self._faults = faults
        self._on_attach()

    def info_summary(self) -> dict:
        """JSON-serializable counters describing realized information flow.

        The base model has nothing to report; subclasses with interesting
        internal accounting (e.g. the lossy board's attempted/dropped
        refresh counters) override this for run manifests and the ``obs``
        CLI summary.
        """
        return {}

    def _on_attach(self) -> None:
        """Hook for subclasses (e.g. to schedule the first board refresh)."""

    def _emit_load_update(
        self, now: float, version: int, loads: np.ndarray
    ) -> None:
        """Notify attached probes of a load-information refresh (if any)."""
        if self._probes is not None:
            self._probes.on_load_update(now, version, loads)

    @abstractmethod
    def view(self, client_id: int, now: float) -> LoadView:
        """Return the load information visible to ``client_id`` at ``now``."""

    def on_dispatch(self, client_id: int, server_id: int, now: float) -> None:
        """Hook called after each dispatch (used by update-on-access)."""

    def true_loads(self, now: float) -> np.ndarray:
        """Ground-truth queue lengths (for measurement, never for policies)."""
        servers = self._require_attached()
        return np.array([server.queue_length(now) for server in servers])

    def _require_attached(self) -> list[Server]:
        if self._servers is None:
            raise RuntimeError(
                f"{type(self).__name__} is not attached to a simulation; "
                "call attach() first (ClusterSimulation does this for you)"
            )
        return self._servers

    def _sample_loads(self, at_time: float) -> np.ndarray:
        """Load reports for all servers as of ``at_time`` (clamped to >= 0).

        Reports queue lengths or work backlogs depending on ``metric``.
        """
        servers = self._require_attached()
        when = max(at_time, 0.0)
        if self.metric == "work-backlog":
            return np.array(
                [server.work_remaining(when) for server in servers],
                dtype=np.float64,
            )
        return np.array(
            [server.queue_length(when) for server in servers], dtype=np.float64
        )
