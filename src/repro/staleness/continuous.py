"""The continuous-update staleness model (§3.1).

The board is "constantly updated" but lags the true system state: a request
arriving at time ``t`` sees every server's queue length as it was at
``t - d``, with ``d`` drawn per request from a configurable delay
distribution.  The paper studies four delay distributions with the same
mean ``T`` — constant(T), uniform(T/2, 3T/2), uniform(0, 2T) and
exponential(T) — and two information regimes: clients that know only the
mean delay (Fig. 6) and clients that are told each request's actual delay
(Fig. 7).

This model abstracts, e.g., clients that probe servers directly but whose
jobs take a network round trip to land.
"""

from __future__ import annotations

import numpy as np

from repro.staleness.base import LoadView, StalenessModel
from repro.workloads.distributions import Constant, Distribution

__all__ = ["ContinuousUpdate"]


class ContinuousUpdate(StalenessModel):
    """Per-request random-lag view of all server loads.

    Parameters
    ----------
    delay:
        Distribution of the information age ``d``; pass a float as
        shorthand for a constant delay.
    known_age:
        If true, each :class:`~repro.staleness.base.LoadView` advertises
        its actual sampled delay to the policy (Fig. 7); if false the
        policy may only use the mean delay (Fig. 6).
    """

    def __init__(
        self,
        delay: Distribution | float,
        known_age: bool = False,
        metric: str = "queue-length",
    ) -> None:
        super().__init__(metric=metric)
        if isinstance(delay, (int, float)):
            delay = Constant(float(delay))
        if delay.mean < 0:
            raise ValueError("delay distribution must be non-negative")
        self.delay = delay
        self.known_age = bool(known_age)
        self._version = 0

    def view(self, client_id: int, now: float) -> LoadView:
        assert self._rng is not None
        lag = self.delay.sample(self._rng)
        if lag < 0:
            raise ValueError(
                f"delay distribution produced a negative delay {lag}; "
                "continuous-update lags must be non-negative"
            )
        info_time = now - lag
        loads = self._sample_loads(info_time)
        self._version += 1
        return LoadView(
            loads=loads,
            version=self._version,
            info_time=info_time,
            now=now,
            horizon=self.delay.mean,
            elapsed=lag,
            known_age=self.known_age,
            phase_based=False,
            client_id=client_id,
        )

    def __repr__(self) -> str:
        return f"ContinuousUpdate(delay={self.delay!r}, known_age={self.known_age!r})"
