"""The update-on-access staleness model (§3.2).

Each client keeps its own snapshot of the load vector, refreshed by the
reply to the client's own previous request: when a request is dispatched,
the chosen server replies with the system's current load values, and that
snapshot serves the client's *next* request.  The average information age
therefore equals the client's mean inter-request time, and with bursty
clients most requests see much fresher information than the average
suggests — the effect §5.4 studies.

We model the reply as instantaneous (zero network latency), so the
snapshot is taken at the dispatch instant, *after* the dispatched job has
been enqueued — the reply naturally reflects the request it answers.
"""

from __future__ import annotations

import numpy as np

from repro.staleness.base import LoadView, StalenessModel

__all__ = ["UpdateOnAccess"]


class UpdateOnAccess(StalenessModel):
    """Per-client snapshots refreshed by each request's reply.

    Parameters
    ----------
    nominal_age:
        The configured average inter-request time ``T`` of each client,
        reported to policies as the view's ``horizon`` (used only when a
        policy ignores actual ages; LI policies use the known actual age).
    """

    def __init__(self, nominal_age: float, metric: str = "queue-length") -> None:
        super().__init__(metric=metric)
        if nominal_age <= 0:
            raise ValueError(f"nominal_age must be positive, got {nominal_age}")
        self.nominal_age = float(nominal_age)
        # client_id -> (snapshot loads, snapshot time)
        self._snapshots: dict[int, tuple[np.ndarray, float]] = {}
        self._version = 0

    def _on_attach(self) -> None:
        # Snapshots belong to one run; drop them if the model is reused.
        self._snapshots.clear()

    def view(self, client_id: int, now: float) -> LoadView:
        snapshot = self._snapshots.get(client_id)
        if snapshot is None:
            # A client's first request has no reply to draw on; it sees
            # the initial (empty) system state, timestamped at t=0.
            loads = np.zeros(self.num_servers)
            info_time = 0.0
        else:
            loads, info_time = snapshot
        self._version += 1
        return LoadView(
            loads=loads,
            version=self._version,
            info_time=info_time,
            now=now,
            horizon=self.nominal_age,
            elapsed=now - info_time,
            known_age=True,
            phase_based=False,
            client_id=client_id,
        )

    def on_dispatch(self, client_id: int, server_id: int, now: float) -> None:
        """Refresh the client's snapshot from the reply to this request."""
        self._snapshots[client_id] = (self._sample_loads(now), now)

    def __repr__(self) -> str:
        return f"UpdateOnAccess(nominal_age={self.nominal_age!r})"
