"""Lossy periodic updates: board refreshes dropped by the network.

The paper's §5.2 shows LI needs a decent estimate of the information age.
In a real deployment built on periodic multicasts, refresh messages get
*lost*, so the board silently carries information older than the phase
length suggests — an adversarial form of age misestimation.  This model
injects exactly that fault: each scheduled refresh succeeds only with
probability ``1 - drop_probability``; views keep advertising the nominal
phase metadata (clients cannot see the loss), while ``elapsed`` and
``info_time`` reflect the truth for measurement.

Used by the ``ext-lossy`` ablation to quantify how gracefully each
policy tolerates update loss.

Replay contract: the phase-batched fast path
(:mod:`repro.engine.fastpath`) replays this model bit-identically by
drawing one uniform from the ``"staleness"`` stream per scheduled
attempt — delivered or dropped — in attempt order; keep that draw
discipline if the drop logic changes.
"""

from __future__ import annotations

from repro.staleness.periodic import PeriodicUpdate

__all__ = ["LossyPeriodicUpdate"]


class LossyPeriodicUpdate(PeriodicUpdate):
    """A bulletin board whose refresh messages are dropped at random.

    Parameters
    ----------
    period:
        Nominal refresh period ``T``.
    drop_probability:
        Probability that any given refresh is lost.  The *effective* mean
        information age becomes ``T / (1 - p)`` (geometric retries), but
        policies are still told the nominal ``T`` — the interesting,
        pessimistic case.
    """

    def __init__(
        self,
        period: float,
        drop_probability: float,
        metric: str = "queue-length",
    ) -> None:
        super().__init__(period=period, metric=metric)
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        self.drop_probability = float(drop_probability)
        self.refreshes_attempted = 0
        self.refreshes_dropped = 0

    def _on_attach(self) -> None:
        self.refreshes_attempted = 0
        self.refreshes_dropped = 0
        super()._on_attach()

    def _refresh(self) -> None:
        assert self._sim is not None
        self.refreshes_attempted += 1
        if self._rng.random() < self.drop_probability:
            # The multicast is lost: the board keeps its stale contents
            # and stale timestamp; only the next attempt is scheduled.
            self.refreshes_dropped += 1
            self._sim.schedule_after(
                self.period, self._refresh, priority=self.REFRESH_PRIORITY
            )
            return
        super()._refresh()

    # Note: view() is inherited unchanged on purpose.  Clients are told
    # the nominal phase length (horizon == period) and cannot observe the
    # loss; after a drop, the view's true elapsed age exceeds its horizon
    # — exactly the hidden-staleness fault this model injects.

    def info_summary(self) -> dict:
        """Realized refresh loss, surfaced in run manifests."""
        attempted = self.refreshes_attempted
        dropped = self.refreshes_dropped
        return {
            "refreshes_attempted": attempted,
            "refreshes_dropped": dropped,
            "drop_fraction": dropped / attempted if attempted else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"LossyPeriodicUpdate(period={self.period!r}, "
            f"drop_probability={self.drop_probability!r})"
        )
