"""The periodic-update (bulletin board) staleness model (§3.1).

Every ``period`` time units a board visible to all arrivals is refreshed
with the true load of every server.  Information is exact at the start of
a phase and ages linearly until the next refresh.

Replay contract: this model is one of the two the phase-batched fast
path (:mod:`repro.engine.fastpath`) can replay bit-identically.  The
fast path reproduces the refresh clock by repeated addition of
``period`` (exactly how ``_refresh`` reschedules itself) and the
refresh-before-arrival ordering implied by :attr:`REFRESH_PRIORITY`;
changes to either must be mirrored there.
"""

from __future__ import annotations

import math

import numpy as np

from repro.staleness.base import LoadView, StalenessModel

__all__ = ["PeriodicUpdate"]


class PeriodicUpdate(StalenessModel):
    """A shared bulletin board refreshed every ``period`` time units.

    The board refresh is a recurring simulation event scheduled with a
    priority that makes it observable by arrivals at the same instant
    (refresh-then-dispatch), matching the paper's "accurate at the
    beginning of a phase" semantics.
    """

    # Fire board refreshes before any same-instant arrival events.
    REFRESH_PRIORITY = -1

    def __init__(
        self,
        period: float,
        metric: str = "queue-length",
        phase_offset: float = 0.0,
    ) -> None:
        super().__init__(metric=metric)
        if not math.isfinite(period) or period <= 0:
            raise ValueError(f"period must be positive and finite, got {period}")
        if not math.isfinite(phase_offset) or phase_offset < 0:
            raise ValueError(
                f"phase_offset must be finite and >= 0, got {phase_offset}"
            )
        self.period = float(period)
        self.phase_offset = float(phase_offset)
        self._board: np.ndarray | None = None
        self._phase_start = 0.0
        self._version = 0

    def _on_attach(self) -> None:
        assert self._sim is not None
        # The board starts accurate at t=0 (all queues empty).
        self._board = self._sample_loads(0.0)
        self._phase_start = 0.0
        self._version = 0
        # With a phase offset o in (0, period) the refresh train runs at
        # o, o + period, ... so staggered boards (one per dispatcher)
        # never refresh in lockstep.  An offset of 0 — or any multiple of
        # the period — reduces to the seed schedule, keeping single-board
        # runs bit-identical.
        first = self.phase_offset % self.period
        if first == 0.0:
            first = self.period
        self._sim.schedule(first, self._refresh, priority=self.REFRESH_PRIORITY)

    def _refresh(self) -> None:
        assert self._sim is not None
        now = self._sim.now
        fresh = self._sample_loads(now)
        if self._faults is not None:
            # Crashed servers cannot send reports: the board keeps their
            # last pre-crash entry, silently advertising a dead server.
            fresh = self._faults.mask_refresh(now, fresh, self._board)
        self._board = fresh
        self._phase_start = now
        self._version += 1
        self._emit_load_update(now, self._version, self._board)
        self._sim.schedule_after(
            self.period, self._refresh, priority=self.REFRESH_PRIORITY
        )

    @property
    def version(self) -> int:
        """Number of refreshes performed so far."""
        return self._version

    @property
    def phase_start(self) -> float:
        """Start time of the current phase."""
        return self._phase_start

    def view(self, client_id: int, now: float) -> LoadView:
        if self._board is None:
            raise RuntimeError("PeriodicUpdate.view() called before attach()")
        return LoadView(
            loads=self._board,
            version=self._version,
            info_time=self._phase_start,
            now=now,
            horizon=self.period,
            elapsed=now - self._phase_start,
            known_age=True,
            phase_based=True,
            client_id=client_id,
        )

    def __repr__(self) -> str:
        if self.phase_offset:
            return (
                f"PeriodicUpdate(period={self.period!r}, "
                f"phase_offset={self.phase_offset!r})"
            )
        return f"PeriodicUpdate(period={self.period!r})"
