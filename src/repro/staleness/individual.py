"""The individual-update staleness model.

Each server posts its own load to the shared board on its own period, with
a random phase offset, so board entries have heterogeneous ages.
Mitzenmacher examines this model and finds it behaves like the periodic
model; the paper omits it "for compactness".  We implement it for
completeness and expose per-entry ages on the view so age-aware policies
can exploit them.
"""

from __future__ import annotations

import math

import numpy as np

from repro.staleness.base import LoadView, StalenessModel

__all__ = ["IndividualUpdate"]


class IndividualUpdate(StalenessModel):
    """Per-server board postings every ``period`` with random offsets."""

    REFRESH_PRIORITY = -1

    def __init__(self, period: float, metric: str = "queue-length") -> None:
        super().__init__(metric=metric)
        if not math.isfinite(period) or period <= 0:
            raise ValueError(f"period must be positive and finite, got {period}")
        self.period = float(period)
        self._board: np.ndarray | None = None
        self._post_times: np.ndarray | None = None
        self._version = 0

    def _on_attach(self) -> None:
        assert self._sim is not None and self._servers is not None
        n = len(self._servers)
        self._board = np.zeros(n)
        self._post_times = np.zeros(n)
        for server_id in range(n):
            offset = float(self._rng.uniform(0.0, self.period))
            self._sim.schedule(
                offset,
                self._make_poster(server_id),
                priority=self.REFRESH_PRIORITY,
            )

    def _make_poster(self, server_id: int):
        def post() -> None:
            assert (
                self._sim is not None
                and self._servers is not None
                and self._board is not None
                and self._post_times is not None
            )
            now = self._sim.now
            server = self._servers[server_id]
            if self._faults is not None and self._faults.is_down(server_id, now):
                # A crashed server cannot post; its board entry (and its
                # timestamp) silently go stale until it recovers.
                self._sim.schedule_after(
                    self.period, post, priority=self.REFRESH_PRIORITY
                )
                return
            if self.metric == "work-backlog":
                self._board[server_id] = server.work_remaining(now)
            else:
                self._board[server_id] = server.queue_length(now)
            self._post_times[server_id] = now
            self._version += 1
            self._emit_load_update(now, self._version, self._board)
            self._sim.schedule_after(
                self.period, post, priority=self.REFRESH_PRIORITY
            )

        return post

    def view(self, client_id: int, now: float) -> LoadView:
        if self._board is None or self._post_times is None:
            raise RuntimeError("IndividualUpdate.view() called before attach()")
        ages = now - self._post_times
        return LoadView(
            loads=self._board,
            version=self._version,
            info_time=float(self._post_times.min()),
            now=now,
            # Entry ages are uniform on [0, period) in steady state, so the
            # average age of a board entry is period / 2.
            horizon=self.period / 2.0,
            elapsed=float(ages.mean()),
            known_age=True,
            phase_based=False,
            ages=ages,
            client_id=client_id,
        )

    def __repr__(self) -> str:
        return f"IndividualUpdate(period={self.period!r})"
