"""Retry storms: refused work that comes back as new work.

Real clients do not vanish when the system says no — they back off and
try again.  Under overload this closes a feedback loop: refusals breed
re-submissions, re-submissions inflate the effective arrival rate, the
inflated rate breeds more refusals.  If the loop gain exceeds one the
system enters the classic *metastable* regime — a transient herd pushes
effective λ past capacity and the system never recovers even though the
exogenous load alone would be serviceable (Bronson et al., "Metastable
Failures in Distributed Systems").

Model: a job refused by the dispatcher (shed by admission, rejected by a
full queue, or blocked by breakers with no alternative) waits out a
jittered exponential client backoff and re-enters the arrival pipeline —
same original arrival timestamp for response accounting (the client has
been waiting the whole time), fresh admission + dispatch decisions on
arrival.  ``max_resubmits`` bounds the loop so every run terminates; a
job that exhausts it is dropped for good.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["RetryStormConfig"]


@dataclass(frozen=True, slots=True)
class RetryStormConfig:
    """Client re-submission behavior for refused jobs.

    Attributes
    ----------
    backoff_base:
        Client wait before the first re-submission; re-submission ``k``
        waits ``min(backoff_base * 2**(k-1), backoff_cap)`` before
        jitter.
    backoff_cap:
        Upper bound on any single (pre-jitter) backoff.
    jitter:
        Fractional jitter: the realized wait is uniform in
        ``delay * [1 - jitter, 1 + jitter]``, drawn from the
        ``"retry-storm"`` stream.  0 keeps the wait deterministic and
        draws nothing.
    max_resubmits:
        Re-submissions per job before the client gives up.  Must be
        finite and >= 1: an unbounded storm over a saturated cluster
        would never drain the arrival quota.
    """

    backoff_base: float = 0.5
    backoff_cap: float = 16.0
    jitter: float = 0.25
    max_resubmits: int = 8

    def __post_init__(self) -> None:
        if not math.isfinite(self.backoff_base) or self.backoff_base <= 0:
            raise ValueError(
                "backoff_base must be positive and finite, got "
                f"{self.backoff_base}"
            )
        if not math.isfinite(self.backoff_cap) or self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"backoff_cap ({self.backoff_cap}) must be finite and >= "
                f"backoff_base ({self.backoff_base})"
            )
        if not 0.0 <= self.jitter < 1.0 or not math.isfinite(self.jitter):
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.max_resubmits < 1:
            raise ValueError(
                f"max_resubmits must be >= 1, got {self.max_resubmits}"
            )

    def delay(self, resubmit: int, rng: np.random.Generator | None) -> float:
        """Client wait before re-submission ``resubmit`` (1-based).

        ``rng`` is the ``"retry-storm"`` stream; required only when
        ``jitter > 0``.
        """
        if resubmit < 1:
            raise ValueError(f"resubmit must be >= 1, got {resubmit}")
        # Cap the exponent as well: 2.0**large overflows to inf.
        doubling = min(resubmit - 1, 64)
        delay = min(self.backoff_base * 2.0**doubling, self.backoff_cap)
        if self.jitter > 0.0:
            if rng is None:
                raise ValueError(
                    "jitter > 0 needs the 'retry-storm' random stream"
                )
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return delay

    def describe(self) -> dict:
        """JSON-serializable summary (for run manifests)."""
        return {
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "jitter": self.jitter,
            "max_resubmits": self.max_resubmits,
        }
