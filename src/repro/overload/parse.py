"""Parse the CLI's compact overload specification strings.

Same ``key=value`` comma format as ``--faults``:

    --admission shed=0.1              (probabilistic shed)
    --admission threshold=24          (stale-board threshold shed)
    --breaker threshold=3,cooldown=8,jitter=0.1
    --storm backoff=0.5,cap=16,jitter=0.25,resubmits=8

``--breaker`` and ``--storm`` also accept the bare word ``on`` for the
defaults.  Validation happens in the underlying constructors, so
malformed values fail with the library API's messages.
"""

from __future__ import annotations

from repro.overload.admission import (
    AdmissionPolicy,
    ProbabilisticShed,
    StaleBoardShed,
)
from repro.overload.breaker import BreakerConfig
from repro.overload.config import OverloadConfig
from repro.overload.storm import RetryStormConfig

__all__ = [
    "parse_admission_spec",
    "parse_breaker_spec",
    "parse_storm_spec",
    "build_overload_config",
]

_BREAKER_KEYS = {
    "threshold": ("failure_threshold", int),
    "cooldown": ("cooldown", float),
    "jitter": ("cooldown_jitter", float),
}
_STORM_KEYS = {
    "backoff": ("backoff_base", float),
    "cap": ("backoff_cap", float),
    "jitter": ("jitter", float),
    "resubmits": ("max_resubmits", int),
}


def parse_admission_spec(text: str) -> AdmissionPolicy:
    """Build an :class:`AdmissionPolicy` from an ``--admission`` string."""
    pairs = _split_pairs(text, "--admission")
    if list(pairs) == ["shed"]:
        return ProbabilisticShed(_parse_value("shed", pairs["shed"], float))
    if list(pairs) == ["threshold"]:
        return StaleBoardShed(_parse_value("threshold", pairs["threshold"], float))
    raise ValueError(
        f"--admission expects 'shed=P' or 'threshold=T', got {text!r}"
    )


def parse_breaker_spec(text: str) -> BreakerConfig:
    """Build a :class:`BreakerConfig` from a ``--breaker`` string."""
    if text.strip().lower() == "on":
        return BreakerConfig()
    kwargs = _parse_keyed(text, "--breaker", _BREAKER_KEYS)
    return BreakerConfig(**kwargs)


def parse_storm_spec(text: str) -> RetryStormConfig:
    """Build a :class:`RetryStormConfig` from a ``--storm`` string."""
    if text.strip().lower() == "on":
        return RetryStormConfig()
    kwargs = _parse_keyed(text, "--storm", _STORM_KEYS)
    return RetryStormConfig(**kwargs)


def build_overload_config(
    queue_capacity: int | None = None,
    admission: str | None = None,
    breaker: str | None = None,
    storm: str | None = None,
) -> OverloadConfig | None:
    """Assemble an :class:`OverloadConfig` from raw CLI values.

    Returns ``None`` when every flag is absent, so callers can hand the
    result straight to ``ClusterSimulation(overload=...)`` without
    special-casing the all-defaults run.
    """
    if (
        queue_capacity is None
        and admission is None
        and breaker is None
        and storm is None
    ):
        return None
    kwargs: dict = {"queue_capacity": queue_capacity}
    if admission is not None:
        kwargs["admission"] = parse_admission_spec(admission)
    if breaker is not None:
        kwargs["breaker"] = parse_breaker_spec(breaker)
    if storm is not None:
        kwargs["retry_storm"] = parse_storm_spec(storm)
    return OverloadConfig(**kwargs)


def _split_pairs(text: str, flag: str) -> dict[str, str]:
    pairs: dict[str, str] = {}
    for raw in text.split(","):
        part = raw.strip()
        if not part:
            continue
        key, separator, value = part.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if not separator or not value:
            raise ValueError(
                f"malformed {flag} entry {part!r}; expected key=value"
            )
        if key in pairs:
            raise ValueError(f"duplicate {flag} key {key!r}")
        pairs[key] = value
    if not pairs:
        raise ValueError(f"empty {flag} specification {text!r}")
    return pairs


def _parse_keyed(text: str, flag: str, known: dict) -> dict:
    kwargs: dict = {}
    for key, value in _split_pairs(text, flag).items():
        if key not in known:
            raise ValueError(
                f"unknown {flag} key {key!r}; known keys: "
                f"{', '.join(sorted(known))}"
            )
        field_name, caster = known[key]
        kwargs[field_name] = _parse_value(key, value, caster)
    return kwargs


def _parse_value(key: str, value: str, caster):
    try:
        return caster(value)
    except ValueError:
        kind = "an integer" if caster is int else "a number"
        raise ValueError(f"key {key!r} needs {kind}, got {value!r}") from None
