"""One bundle for every overload-protection knob.

`OverloadConfig` is what travels through the stack: the simulation, the
runner's worker tuples, the CLI and the figure registry all pass one of
these (or ``None``).  The contract that keeps the seed reproducible is
``active``: a config whose every knob is at its default — unbounded
queues, always-admit, no breakers, no storms — must change *nothing*, and
the simulation checks exactly this property to decide whether the
overload machinery participates at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.overload.admission import AdmissionPolicy, AlwaysAdmit
from repro.overload.breaker import BreakerConfig
from repro.overload.storm import RetryStormConfig

__all__ = ["OverloadConfig"]


@dataclass(frozen=True)
class OverloadConfig:
    """Overload-protection configuration for one simulation.

    Attributes
    ----------
    queue_capacity:
        Maximum jobs (queued + in service) per server; an arrival that
        would exceed it is rejected.  ``None`` (default) = unbounded.
    admission:
        Dispatcher-side admission policy; :class:`AlwaysAdmit` (default)
        never sheds.
    breaker:
        Per-server circuit-breaker parameters; ``None`` (default) = no
        breakers.
    retry_storm:
        Client re-submission behavior for refused jobs; ``None``
        (default) = refused jobs are dropped immediately.
    """

    queue_capacity: int | None = None
    admission: AdmissionPolicy = field(default_factory=AlwaysAdmit)
    breaker: BreakerConfig | None = None
    retry_storm: RetryStormConfig | None = None

    def __post_init__(self) -> None:
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 or None, got {self.queue_capacity}"
            )
        if not isinstance(self.admission, AdmissionPolicy):
            raise TypeError(
                "admission must be an AdmissionPolicy instance, got "
                f"{type(self.admission).__name__}"
            )
        if self.retry_storm is not None and not self.can_refuse:
            raise ValueError(
                "retry_storm without bounded queues, a shedding admission "
                "policy, or breakers can never fire: nothing refuses jobs"
            )

    @property
    def sheds(self) -> bool:
        """Whether the admission policy can ever refuse an arrival."""
        return not isinstance(self.admission, AlwaysAdmit)

    @property
    def can_refuse(self) -> bool:
        """Whether any mechanism can refuse a job (storm's precondition)."""
        return (
            self.queue_capacity is not None
            or self.sheds
            or self.breaker is not None
        )

    @property
    def active(self) -> bool:
        """Whether any knob deviates from the do-nothing defaults.

        An inactive config must leave every run bit-identical to one
        without overload protection at all; the golden-figure tests pin
        this.
        """
        return self.can_refuse or self.retry_storm is not None

    def blocker_reason(self) -> str:
        """The named ``fast_path_blocker`` entry for this config.

        The fast path replays whole phases in batch; per-arrival refusal
        decisions (capacity checks, sheds, breaker state) are inherently
        sequential, so any active config falls back to the event engine
        under the feature that makes it active.
        """
        if self.queue_capacity is not None:
            return "overload_bounded_queues"
        if self.sheds:
            return "overload_admission"
        if self.breaker is not None:
            return "overload_breakers"
        return "overload_retry_storm"

    def describe(self) -> dict:
        """JSON-serializable summary (for run manifests)."""
        return {
            "queue_capacity": self.queue_capacity,
            "admission": self.admission.describe(),
            "breaker": None if self.breaker is None else self.breaker.describe(),
            "retry_storm": (
                None if self.retry_storm is None else self.retry_storm.describe()
            ),
        }
