"""Admission control: shed load at the dispatcher before it hits a queue.

Bounded queues protect *servers* by rejecting the arrival that would
overflow; admission control protects the *system* by refusing work one
step earlier, at the dispatcher, before a server is even selected.  The
two are accounted separately (``jobs_shed`` vs ``jobs_rejected``) because
they occupy different points of the overload-control design space: a shed
job costs nothing downstream, a rejected job already consumed a dispatch
decision (and, with breakers, contributes to tripping one).

Policies see the same stale :class:`~repro.staleness.base.LoadView` the
dispatch policy is about to use, so shedding decisions are subject to
exactly the staleness the paper studies — a threshold shedder reacting to
an old board is late in both directions, admitting into a swamped cluster
and shedding out of a recovered one.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.core.views import LoadView

__all__ = [
    "AdmissionPolicy",
    "AlwaysAdmit",
    "ProbabilisticShed",
    "StaleBoardShed",
]


class AdmissionPolicy(ABC):
    """Decides, per arrival, whether the dispatcher accepts the job.

    Lifecycle mirrors the dispatch policies: the simulation calls
    :meth:`bind` once before the run, then :meth:`admit` once per arrival
    (including storm re-submissions, which face admission again).
    """

    def bind(self, num_servers: int, rng: np.random.Generator | None) -> None:
        """Attach to a cluster.  ``rng`` is the ``"admission"`` stream;
        policies that never randomize may ignore it."""
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        self._num_servers = num_servers
        self._rng = rng

    @abstractmethod
    def admit(self, view: LoadView) -> bool:
        """Whether the arrival holding this (stale) view is admitted."""

    @abstractmethod
    def describe(self) -> dict:
        """JSON-serializable summary (for run manifests)."""


class AlwaysAdmit(AdmissionPolicy):
    """The default: every arrival is admitted, nothing is drawn."""

    def admit(self, view: LoadView) -> bool:
        return True

    def describe(self) -> dict:
        return {"admission": "always"}


class ProbabilisticShed(AdmissionPolicy):
    """Shed each arrival independently with probability ``p``.

    The simplest load shedder: blind to the board, it thins the offered
    load from λ to (1-p)λ.  Draws one uniform per arrival off the
    ``"admission"`` stream.
    """

    def __init__(self, shed_probability: float) -> None:
        if not 0.0 <= shed_probability < 1.0 or not math.isfinite(
            shed_probability
        ):
            raise ValueError(
                f"shed_probability must be in [0, 1), got {shed_probability}"
            )
        self.shed_probability = shed_probability

    def bind(self, num_servers: int, rng: np.random.Generator | None) -> None:
        if self.shed_probability > 0 and rng is None:
            raise ValueError(
                "ProbabilisticShed needs the 'admission' random stream"
            )
        super().bind(num_servers, rng)

    def admit(self, view: LoadView) -> bool:
        if self.shed_probability == 0.0:
            return True
        return float(self._rng.random()) >= self.shed_probability

    def describe(self) -> dict:
        return {"admission": "probabilistic", "p": self.shed_probability}


class StaleBoardShed(AdmissionPolicy):
    """Shed when the *reported* board says every server is at or beyond
    ``threshold`` jobs.

    Deterministic (no RNG draws) and deliberately subject to staleness:
    it reads the same bulletin board the dispatch policy does, so with a
    large update period it sheds against a past the cluster may have left
    — the admission-control face of the paper's interpretation problem.
    """

    def __init__(self, threshold: float) -> None:
        if not math.isfinite(threshold) or threshold <= 0:
            raise ValueError(
                f"threshold must be positive and finite, got {threshold}"
            )
        self.threshold = threshold

    def admit(self, view: LoadView) -> bool:
        return float(np.min(view.loads)) < self.threshold

    def describe(self) -> dict:
        return {"admission": "stale-board", "threshold": self.threshold}
