"""Overload protection: bounded queues, admission control, circuit
breakers, and retry-storm (metastability) modeling.

The paper's herd effect is a transient local overload — stale boards
concentrate arrivals until a server is swamped.  This package supplies
the guard rails real dispatchers deploy against exactly that failure
mode, so the reproduction can study how LI's graceful interpretation of
stale data interacts with drops, sheds, breaker trips, and the
metastable feedback loop of client retries.
"""

from repro.overload.admission import (
    AdmissionPolicy,
    AlwaysAdmit,
    ProbabilisticShed,
    StaleBoardShed,
)
from repro.overload.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    ServerBreaker,
)
from repro.overload.config import OverloadConfig
from repro.overload.parse import (
    build_overload_config,
    parse_admission_spec,
    parse_breaker_spec,
    parse_storm_spec,
)
from repro.overload.storm import RetryStormConfig

__all__ = [
    "AdmissionPolicy",
    "AlwaysAdmit",
    "ProbabilisticShed",
    "StaleBoardShed",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "ServerBreaker",
    "OverloadConfig",
    "RetryStormConfig",
    "build_overload_config",
    "parse_admission_spec",
    "parse_breaker_spec",
    "parse_storm_spec",
]
