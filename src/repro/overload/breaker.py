"""Dispatcher-side circuit breakers: stop hammering a server that rejects.

A stale bulletin board keeps advertising an overloaded (or crashed) server
long after it stopped accepting work; without protection the dispatcher
re-discovers the same failure once per arrival, paying a timeout or a
rejected dispatch every time.  A per-server *circuit breaker* remembers:
after ``failure_threshold`` consecutive rejections/timeouts the breaker
**opens** and the dispatcher routes around the server without trying it;
after a (jittered) ``cooldown`` it moves to **half-open** and lets probe
dispatches through; a probe success closes the breaker, a probe failure
re-opens it for another cooldown.

The classic state machine::

    CLOSED --[failure_threshold consecutive failures]--> OPEN
    OPEN   --[cooldown elapses]-----------------------> HALF_OPEN
    HALF_OPEN --[probe succeeds]----------------------> CLOSED
    HALF_OPEN --[probe fails]-------------------------> OPEN

Cooldown jitter draws from the dedicated ``"breaker"`` random stream, so
enabling it never perturbs arrival/service/policy draws; with
``cooldown_jitter=0`` (the default) the breaker draws nothing at all.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["BreakerConfig", "BreakerState", "BreakerBoard", "ServerBreaker"]


class BreakerState(enum.Enum):
    """Lifecycle state of one server's circuit breaker."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True, slots=True)
class BreakerConfig:
    """Parameters of every per-server breaker.

    Attributes
    ----------
    failure_threshold:
        Consecutive rejections/timeouts that trip a CLOSED breaker OPEN.
    cooldown:
        Time an OPEN breaker blocks dispatches before allowing a
        HALF_OPEN probe (in units of mean service time).
    cooldown_jitter:
        Fractional jitter on each realized cooldown: the wait is drawn
        uniformly from ``cooldown * [1 - jitter, 1 + jitter]`` off the
        ``"breaker"`` stream.  0 (default) keeps cooldowns deterministic
        and draws no random numbers — breakers then never touch any RNG.
    """

    failure_threshold: int = 3
    cooldown: float = 8.0
    cooldown_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if not math.isfinite(self.cooldown) or self.cooldown <= 0:
            raise ValueError(
                f"cooldown must be positive and finite, got {self.cooldown}"
            )
        if not 0.0 <= self.cooldown_jitter < 1.0 or not math.isfinite(
            self.cooldown_jitter
        ):
            raise ValueError(
                f"cooldown_jitter must be in [0, 1), got {self.cooldown_jitter}"
            )

    def describe(self) -> dict:
        """JSON-serializable summary (for run manifests)."""
        return {
            "failure_threshold": self.failure_threshold,
            "cooldown": self.cooldown,
            "cooldown_jitter": self.cooldown_jitter,
        }


class ServerBreaker:
    """The state machine guarding one server (see module docstring)."""

    __slots__ = (
        "server_id",
        "state",
        "consecutive_failures",
        "open_until",
        "trips",
        "time_in_open",
        "_opened_at",
    )

    def __init__(self, server_id: int) -> None:
        self.server_id = server_id
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.open_until = 0.0
        self.trips = 0
        self.time_in_open = 0.0
        self._opened_at = 0.0


class BreakerBoard:
    """All per-server breakers of one dispatcher, plus their shared config.

    Parameters
    ----------
    num_servers:
        Cluster size.
    config:
        Shared breaker parameters.
    rng:
        The ``"breaker"`` stream; consulted only when
        ``config.cooldown_jitter > 0``.
    on_transition:
        Optional callback ``(now, server_id, old_state, new_state)``
        invoked at every state change (the observability hook).
    """

    def __init__(
        self,
        num_servers: int,
        config: BreakerConfig,
        rng: np.random.Generator | None = None,
        on_transition: Callable[[float, int, str, str], None] | None = None,
    ) -> None:
        if num_servers < 1:
            raise ValueError(f"num_servers must be >= 1, got {num_servers}")
        if config.cooldown_jitter > 0 and rng is None:
            raise ValueError(
                "cooldown_jitter > 0 needs the 'breaker' random stream"
            )
        self.config = config
        self._rng = rng
        self._on_transition = on_transition
        self._breakers = [ServerBreaker(i) for i in range(num_servers)]

    def __len__(self) -> int:
        return len(self._breakers)

    def __getitem__(self, server_id: int) -> ServerBreaker:
        return self._breakers[server_id]

    # -- the dispatcher's queries ---------------------------------------

    def allow(self, server_id: int, now: float) -> bool:
        """Whether a dispatch to ``server_id`` may proceed at ``now``.

        An OPEN breaker whose cooldown has elapsed transitions to
        HALF_OPEN here (the probe that asked is the probe that goes
        through), so a server is *never* dispatched to while OPEN and
        before its cooldown expires.
        """
        breaker = self._breakers[server_id]
        if breaker.state is BreakerState.OPEN:
            if now < breaker.open_until:
                return False
            self._transition(breaker, BreakerState.HALF_OPEN, now)
        return True

    def blocks(self, server_id: int, now: float) -> bool:
        """Read-only variant of :meth:`allow` (no state transition).

        Used when composing exclusion lists: checking whether a *fallback
        candidate* is viable must not consume the half-open probe slot.
        """
        breaker = self._breakers[server_id]
        return breaker.state is BreakerState.OPEN and now < breaker.open_until

    def record_success(self, server_id: int, now: float) -> None:
        """A dispatch to ``server_id`` was accepted."""
        breaker = self._breakers[server_id]
        breaker.consecutive_failures = 0
        if breaker.state is BreakerState.HALF_OPEN:
            self._transition(breaker, BreakerState.CLOSED, now)

    def record_failure(self, server_id: int, now: float) -> None:
        """A dispatch to ``server_id`` was rejected or timed out."""
        breaker = self._breakers[server_id]
        breaker.consecutive_failures += 1
        if breaker.state is BreakerState.HALF_OPEN:
            self._open(breaker, now)
        elif (
            breaker.state is BreakerState.CLOSED
            and breaker.consecutive_failures >= self.config.failure_threshold
        ):
            self._open(breaker, now)

    def finalize(self, now: float) -> None:
        """Close out time-in-OPEN accounting at the end of the run."""
        for breaker in self._breakers:
            if breaker.state is BreakerState.OPEN:
                breaker.time_in_open += max(0.0, now - breaker._opened_at)
                breaker._opened_at = now

    # -- observability ---------------------------------------------------

    @property
    def trips_total(self) -> int:
        """CLOSED/HALF_OPEN -> OPEN transitions summed over servers."""
        return sum(breaker.trips for breaker in self._breakers)

    def summary(self) -> dict:
        """JSON-serializable digest (finalize() first for exact times)."""
        return {
            "config": self.config.describe(),
            "trips": [breaker.trips for breaker in self._breakers],
            "time_in_open": [
                breaker.time_in_open for breaker in self._breakers
            ],
            "final_state": [breaker.state.value for breaker in self._breakers],
        }

    # -- internals -------------------------------------------------------

    def _open(self, breaker: ServerBreaker, now: float) -> None:
        cooldown = self.config.cooldown
        jitter = self.config.cooldown_jitter
        if jitter > 0.0:
            assert self._rng is not None  # enforced at construction
            cooldown *= 1.0 + jitter * (2.0 * float(self._rng.random()) - 1.0)
        breaker.open_until = now + cooldown
        breaker.trips += 1
        self._transition(breaker, BreakerState.OPEN, now)

    def _transition(
        self, breaker: ServerBreaker, new_state: BreakerState, now: float
    ) -> None:
        old_state = breaker.state
        if old_state is new_state:
            return
        if old_state is BreakerState.OPEN:
            breaker.time_in_open += max(0.0, now - breaker._opened_at)
        if new_state is BreakerState.OPEN:
            breaker._opened_at = now
        if new_state is BreakerState.CLOSED:
            breaker.consecutive_failures = 0
        breaker.state = new_state
        if self._on_transition is not None:
            self._on_transition(
                now, breaker.server_id, old_state.value, new_state.value
            )
