"""Random-variate distributions with exact analytic moments.

Every distribution exposes :meth:`~Distribution.sample` (one draw from a
:class:`numpy.random.Generator`), vectorized :meth:`~Distribution.sample_array`,
and analytic :attr:`~Distribution.mean` / :attr:`~Distribution.variance`
used both by the queueing-theory validation layer and by tests.

The Bounded Pareto implementation follows Eq. 6 of the paper (the
distribution produced by Christensen's ``genpar2.c`` generator, which the
paper uses for its highly-variable job-size experiments):

.. math::

    f(x) = \\frac{\\alpha k^{\\alpha}}{1 - (k/p)^{\\alpha}} x^{-\\alpha - 1},
    \\qquad k \\le x \\le p

sampled by inverse transform.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np
from scipy import optimize

__all__ = [
    "Distribution",
    "Constant",
    "Exponential",
    "Uniform",
    "BoundedPareto",
    "Weibull",
    "Erlang",
    "Hyperexponential",
]


class Distribution(ABC):
    """A real-valued random variate with known analytic moments."""

    #: Whether ``sample_array(rng, n)`` consumes the generator and produces
    #: values *bitwise identically* to ``n`` successive ``sample(rng)``
    #: calls.  The fast simulation path relies on this to pre-draw a whole
    #: run's service times while staying bit-equal to the event-driven
    #: engine; distributions whose vectorized transform rounds differently
    #: from the scalar one must set it to ``False`` (they then fall back to
    #: the event engine).  The base-class ``sample_array`` loops over
    #: ``sample``, so the default is ``True``.
    batch_matches_scalar: bool = True

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw a single variate."""

    def sample_array(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` variates.  Subclasses override for vectorization."""
        return np.array([self.sample(rng) for _ in range(size)])

    @property
    @abstractmethod
    def mean(self) -> float:
        """Analytic mean."""

    @property
    @abstractmethod
    def variance(self) -> float:
        """Analytic variance."""

    @property
    def squared_coefficient_of_variation(self) -> float:
        """``variance / mean**2`` — the standard burstiness measure."""
        if self.mean == 0:
            raise ZeroDivisionError("mean is zero; CV^2 undefined")
        return self.variance / (self.mean * self.mean)


class Constant(Distribution):
    """A degenerate point mass — deterministic delays and service times."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        self._value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self._value

    def sample_array(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self._value)

    @property
    def mean(self) -> float:
        return self._value

    @property
    def variance(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"Constant({self._value!r})"


class Exponential(Distribution):
    """Exponential distribution, parameterized by its *mean* (not rate)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_array(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.exponential(self._mean, size)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean * self._mean

    @property
    def rate(self) -> float:
        """The rate parameter ``1 / mean``."""
        return 1.0 / self._mean

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean!r})"


class Uniform(Distribution):
    """Continuous uniform on ``[low, high]``.

    The continuous-update experiments (Fig. 6–7) use uniform(T/2, 3T/2)
    and uniform(0, 2T) delay distributions, both with mean T.
    """

    def __init__(self, low: float, high: float) -> None:
        if not low <= high:
            raise ValueError(f"need low <= high, got [{low}, {high}]")
        if low < 0:
            raise ValueError(f"low must be non-negative, got {low}")
        self._low = float(low)
        self._high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self._low, self._high))

    def sample_array(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self._low, self._high, size)

    @property
    def low(self) -> float:
        return self._low

    @property
    def high(self) -> float:
        return self._high

    @property
    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    @property
    def variance(self) -> float:
        width = self._high - self._low
        return width * width / 12.0

    def __repr__(self) -> str:
        return f"Uniform({self._low!r}, {self._high!r})"


class BoundedPareto(Distribution):
    """Bounded Pareto on ``[k, p]`` with shape ``alpha`` (Eq. 6).

    Used to model highly-variable job sizes: with ``alpha`` near 1 and a
    large ``p/k`` ratio, most jobs are tiny but a heavy tail of huge jobs
    carries much of the total work — the regime observed for web request
    sizes (Crovella et al.) that §5.5 of the paper studies.
    """

    # The vectorized inverse-CDF uses numpy's elementwise ``**`` while the
    # scalar path uses Python's float power; the two can differ by an ULP,
    # so batched draws are not bitwise-reproducible against scalar ones.
    batch_matches_scalar = False

    def __init__(self, alpha: float, k: float, p: float) -> None:
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0 < k < p:
            raise ValueError(f"need 0 < k < p, got k={k}, p={p}")
        self._alpha = float(alpha)
        self._k = float(k)
        self._p = float(p)
        self._tail_ratio = (self._k / self._p) ** self._alpha  # (k/p)^alpha

    @classmethod
    def from_mean(cls, alpha: float, p: float, mean: float) -> "BoundedPareto":
        """Solve for the lower bound ``k`` that yields the requested mean.

        The paper fixes the mean job size at 1.0 and the upper bound at
        ``p`` = 10^3 or 10^4 times the mean, then chooses ``k`` accordingly.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if p <= mean:
            raise ValueError(f"upper bound p={p} must exceed the mean {mean}")

        def mean_error(k: float) -> float:
            return cls(alpha, k, p).mean - mean

        # The mean is monotonically increasing in k, from ~0 to p.
        lo = mean * 1e-9
        hi = mean * (1.0 - 1e-9)
        k_solved = float(optimize.brentq(mean_error, lo, hi, xtol=1e-14, rtol=1e-13))
        return cls(alpha, k_solved, p)

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def k(self) -> float:
        """Lower bound (smallest possible variate)."""
        return self._k

    @property
    def p(self) -> float:
        """Upper bound (largest possible variate)."""
        return self._p

    def sample(self, rng: np.random.Generator) -> float:
        u = float(rng.random())
        return self._inverse_cdf(u)

    def sample_array(self, rng: np.random.Generator, size: int) -> np.ndarray:
        u = rng.random(size)
        return self._k * (1.0 - u * (1.0 - self._tail_ratio)) ** (-1.0 / self._alpha)

    def _inverse_cdf(self, u: float) -> float:
        return self._k * (1.0 - u * (1.0 - self._tail_ratio)) ** (-1.0 / self._alpha)

    def cdf(self, x: float) -> float:
        """Cumulative distribution function."""
        if x <= self._k:
            return 0.0
        if x >= self._p:
            return 1.0
        return (1.0 - (self._k / x) ** self._alpha) / (1.0 - self._tail_ratio)

    def _raw_moment(self, order: int) -> float:
        alpha, k, p = self._alpha, self._k, self._p
        norm = alpha * k**alpha / (1.0 - self._tail_ratio)
        if math.isclose(alpha, order):
            return norm * math.log(p / k)
        exponent = order - alpha
        return norm * (p**exponent - k**exponent) / exponent

    @property
    def mean(self) -> float:
        return self._raw_moment(1)

    @property
    def variance(self) -> float:
        first = self._raw_moment(1)
        return self._raw_moment(2) - first * first

    def __repr__(self) -> str:
        return (
            f"BoundedPareto(alpha={self._alpha!r}, k={self._k!r}, p={self._p!r})"
        )


class Weibull(Distribution):
    """Weibull distribution with shape ``shape`` and scale ``scale``.

    Included as an additional moderately heavy-tailed service process for
    sensitivity studies beyond the paper's exponential / Bounded Pareto pair.
    """

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError(
                f"shape and scale must be positive, got shape={shape}, scale={scale}"
            )
        self._shape = float(shape)
        self._scale = float(scale)

    @classmethod
    def from_mean(cls, shape: float, mean: float) -> "Weibull":
        """Choose the scale so the distribution has the requested mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        scale = mean / math.gamma(1.0 + 1.0 / shape)
        return cls(shape, scale)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._scale * rng.weibull(self._shape))

    def sample_array(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self._scale * rng.weibull(self._shape, size)

    @property
    def mean(self) -> float:
        return self._scale * math.gamma(1.0 + 1.0 / self._shape)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self._shape)
        g2 = math.gamma(1.0 + 2.0 / self._shape)
        return self._scale * self._scale * (g2 - g1 * g1)

    def __repr__(self) -> str:
        return f"Weibull(shape={self._shape!r}, scale={self._scale!r})"


class Erlang(Distribution):
    """Erlang-k distribution: the sum of ``stages`` i.i.d. exponentials.

    A low-variance service process (CV^2 = 1/k < 1), useful as the
    counterpoint to the heavy-tailed workloads.
    """

    def __init__(self, stages: int, mean: float) -> None:
        if stages < 1:
            raise ValueError(f"stages must be >= 1, got {stages}")
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        self._stages = int(stages)
        self._mean = float(mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self._stages, self._mean / self._stages))

    def sample_array(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.gamma(self._stages, self._mean / self._stages, size)

    @property
    def stages(self) -> int:
        return self._stages

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean * self._mean / self._stages

    def __repr__(self) -> str:
        return f"Erlang(stages={self._stages!r}, mean={self._mean!r})"


class Hyperexponential(Distribution):
    """Two-phase hyperexponential: exponential mixture with CV^2 > 1.

    A tunable high-variance service process lying between exponential and
    Bounded Pareto in tail weight.
    """

    # The scalar path interleaves one phase-choice uniform with one
    # exponential per draw; the vectorized path draws all uniforms first,
    # then all exponentials, so the generator is consumed in a different
    # order and batches are not bitwise-reproducible against scalar draws.
    batch_matches_scalar = False

    def __init__(self, p1: float, mean1: float, mean2: float) -> None:
        if not 0.0 < p1 < 1.0:
            raise ValueError(f"p1 must be in (0, 1), got {p1}")
        if mean1 <= 0 or mean2 <= 0:
            raise ValueError("phase means must be positive")
        self._p1 = float(p1)
        self._mean1 = float(mean1)
        self._mean2 = float(mean2)

    def sample(self, rng: np.random.Generator) -> float:
        mean = self._mean1 if rng.random() < self._p1 else self._mean2
        return float(rng.exponential(mean))

    def sample_array(self, rng: np.random.Generator, size: int) -> np.ndarray:
        choose_first = rng.random(size) < self._p1
        means = np.where(choose_first, self._mean1, self._mean2)
        return rng.exponential(1.0, size) * means

    @property
    def mean(self) -> float:
        return self._p1 * self._mean1 + (1.0 - self._p1) * self._mean2

    @property
    def variance(self) -> float:
        second = 2.0 * (
            self._p1 * self._mean1**2 + (1.0 - self._p1) * self._mean2**2
        )
        return second - self.mean**2

    def __repr__(self) -> str:
        return (
            f"Hyperexponential(p1={self._p1!r}, mean1={self._mean1!r}, "
            f"mean2={self._mean2!r})"
        )
