"""Arrival processes that drive the cluster simulation.

An :class:`ArrivalSource` plugs into the event engine: :meth:`~ArrivalSource.start`
schedules the first arrival(s), and each arrival event re-schedules the next,
so arrival streams are ordinary self-perpetuating simulation processes.

Four sources cover the paper's models plus the non-stationary extension:

* :class:`PoissonArrivals` — a single aggregate Poisson stream (the periodic
  and continuous update models do not distinguish clients).
* :class:`ClientArrivals` — ``C`` independent per-client Poisson streams
  whose superposition is Poisson with the same aggregate rate; the
  update-on-access model (§3.2) varies ``C`` to vary the average staleness.
* :class:`BurstyClientArrivals` — the on/off client streams of §5.4: each
  client emits bursts of requests with short intra-burst gaps, bursts
  separated by long gaps, preserving the same per-client average rate.
* :class:`TimeVaryingPoissonArrivals` — a non-homogeneous Poisson stream
  whose rate follows a :class:`~repro.nonstationary.programs.RateProgram`
  (diurnal cycles, flash crowds, trace replay) via Lewis–Shedler thinning;
  a constant program replays :class:`PoissonArrivals` bit-for-bit.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.engine.simulator import Simulator

__all__ = [
    "ArrivalSource",
    "PoissonArrivals",
    "ClientArrivals",
    "BurstyClientArrivals",
    "TimeVaryingPoissonArrivals",
]

# Callback invoked at each arrival with the originating client id.
ArrivalCallback = Callable[[int], None]


class ArrivalSource(ABC):
    """A stream of job arrivals identified by originating client."""

    @property
    @abstractmethod
    def total_rate(self) -> float:
        """Aggregate long-run arrival rate of the source."""

    @property
    @abstractmethod
    def num_clients(self) -> int:
        """Number of distinct client identities the source emits."""

    @abstractmethod
    def start(
        self, sim: Simulator, rng: np.random.Generator, on_arrival: ArrivalCallback
    ) -> None:
        """Schedule the source's first arrival(s) on ``sim``.

        ``on_arrival(client_id)`` fires at every subsequent arrival instant;
        the source re-schedules itself indefinitely (the driver stops the
        simulator once enough jobs have been observed).
        """


class PoissonArrivals(ArrivalSource):
    """A single aggregate Poisson stream of rate ``rate``.

    All arrivals carry client id 0.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self._rate = float(rate)

    @property
    def total_rate(self) -> float:
        return self._rate

    @property
    def num_clients(self) -> int:
        return 1

    def start(
        self, sim: Simulator, rng: np.random.Generator, on_arrival: ArrivalCallback
    ) -> None:
        mean_gap = 1.0 / self._rate

        def fire() -> None:
            on_arrival(0)
            sim.schedule_after(rng.exponential(mean_gap), fire)

        sim.schedule_after(rng.exponential(mean_gap), fire)

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self._rate!r})"


class ClientArrivals(ArrivalSource):
    """``num_clients`` independent Poisson clients, aggregate rate ``total_rate``.

    The superposition of independent Poisson processes is Poisson, so the
    servers see exactly the same aggregate workload as
    :class:`PoissonArrivals`; only the client identities (and hence the
    update-on-access information ages) differ.
    """

    def __init__(self, num_clients: int, total_rate: float) -> None:
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        if total_rate <= 0:
            raise ValueError(f"total_rate must be positive, got {total_rate}")
        self._num_clients = int(num_clients)
        self._total_rate = float(total_rate)

    @property
    def total_rate(self) -> float:
        return self._total_rate

    @property
    def num_clients(self) -> int:
        return self._num_clients

    @property
    def per_client_mean_interarrival(self) -> float:
        """Average time between one client's consecutive requests.

        Under update-on-access this *is* the average information age T.
        """
        return self._num_clients / self._total_rate

    def start(
        self, sim: Simulator, rng: np.random.Generator, on_arrival: ArrivalCallback
    ) -> None:
        mean_gap = self.per_client_mean_interarrival

        def make_client(client_id: int) -> Callable[[], None]:
            def fire() -> None:
                on_arrival(client_id)
                sim.schedule_after(rng.exponential(mean_gap), fire)

            return fire

        for client_id in range(self._num_clients):
            sim.schedule_after(rng.exponential(mean_gap), make_client(client_id))

    def __repr__(self) -> str:
        return (
            f"ClientArrivals(num_clients={self._num_clients!r}, "
            f"total_rate={self._total_rate!r})"
        )


class BurstyClientArrivals(ArrivalSource):
    """On/off bursty clients (§5.4 of the paper).

    Each client emits bursts of ``burst_size`` requests.  Within a burst,
    consecutive requests are separated by exponential(``intra_gap_mean``)
    gaps; bursts are separated by an exponential inter-burst gap whose mean
    is chosen so the client's *average* inter-request time stays equal to
    ``num_clients / total_rate`` — i.e. burstiness changes the arrival
    pattern but not the offered load.

    The point of the model: although a client's load snapshot is on average
    quite old, most requests arrive mid-burst and therefore see a much
    fresher snapshot than the average suggests.
    """

    def __init__(
        self,
        num_clients: int,
        total_rate: float,
        burst_size: int = 10,
        intra_gap_mean: float | None = None,
    ) -> None:
        if num_clients < 1:
            raise ValueError(f"num_clients must be >= 1, got {num_clients}")
        if total_rate <= 0:
            raise ValueError(f"total_rate must be positive, got {total_rate}")
        if burst_size < 1:
            raise ValueError(f"burst_size must be >= 1, got {burst_size}")
        self._num_clients = int(num_clients)
        self._total_rate = float(total_rate)
        self._burst_size = int(burst_size)

        mean_interarrival = self._num_clients / self._total_rate
        if intra_gap_mean is None:
            # A natural default: intra-burst gaps an order of magnitude
            # shorter than the client's average spacing.
            intra_gap_mean = mean_interarrival / self._burst_size
        if intra_gap_mean <= 0:
            raise ValueError(f"intra_gap_mean must be positive, got {intra_gap_mean}")

        # Solve for the inter-burst gap that preserves the average rate:
        # ((burst_size - 1) * intra + inter) / burst_size = mean_interarrival.
        inter = (
            self._burst_size * mean_interarrival
            - (self._burst_size - 1) * intra_gap_mean
        )
        if inter <= 0:
            raise ValueError(
                f"intra_gap_mean={intra_gap_mean} is too large for "
                f"mean inter-request time {mean_interarrival} with "
                f"burst_size={self._burst_size}; the implied inter-burst gap "
                "would be non-positive"
            )
        self._intra_gap_mean = float(intra_gap_mean)
        self._inter_burst_mean = float(inter)

    @property
    def total_rate(self) -> float:
        return self._total_rate

    @property
    def num_clients(self) -> int:
        return self._num_clients

    @property
    def burst_size(self) -> int:
        return self._burst_size

    @property
    def intra_gap_mean(self) -> float:
        """Mean gap between consecutive requests within a burst."""
        return self._intra_gap_mean

    @property
    def inter_burst_mean(self) -> float:
        """Mean gap between the last request of a burst and the next burst."""
        return self._inter_burst_mean

    @property
    def per_client_mean_interarrival(self) -> float:
        """Long-run average time between one client's consecutive requests."""
        return self._num_clients / self._total_rate

    def start(
        self, sim: Simulator, rng: np.random.Generator, on_arrival: ArrivalCallback
    ) -> None:
        def make_client(client_id: int) -> Callable[[], None]:
            position = 0  # index within the current burst

            def fire() -> None:
                nonlocal position
                on_arrival(client_id)
                position += 1
                if position < self._burst_size:
                    gap = rng.exponential(self._intra_gap_mean)
                else:
                    position = 0
                    gap = rng.exponential(self._inter_burst_mean)
                sim.schedule_after(gap, fire)

            return fire

        for client_id in range(self._num_clients):
            # Start each client at a random point of its cycle by using the
            # inter-burst gap for the initial offset; this desynchronizes
            # clients without a separate warm-up mechanism.
            sim.schedule_after(
                rng.exponential(self._inter_burst_mean), make_client(client_id)
            )

    def __repr__(self) -> str:
        return (
            f"BurstyClientArrivals(num_clients={self._num_clients!r}, "
            f"total_rate={self._total_rate!r}, burst_size={self._burst_size!r}, "
            f"intra_gap_mean={self._intra_gap_mean!r})"
        )


class TimeVaryingPoissonArrivals(ArrivalSource):
    """A non-homogeneous Poisson stream driven by a ``RateProgram``.

    Arrivals are generated by Lewis–Shedler thinning: candidate events fire
    as a homogeneous Poisson stream at the program's ``peak_rate`` and each
    candidate is accepted with probability ``rate(t) / peak_rate``.  All
    arrivals carry client id 0, like :class:`PoissonArrivals`.

    When the program is constant (``program.is_constant``), thinning would
    accept every candidate, so the source skips the acceptance draws and
    replays :class:`PoissonArrivals`'s exact draw sequence — a constant
    program is therefore **bit-identical** to the stationary source on the
    same seed, and stays eligible for the fast/vector batch engines.

    ``total_rate`` reports the program's long-run mean rate: it is what
    oracle estimators (``ExactRate``) and offered-load accounting see, i.e.
    the stationary rate a dispatcher configured before the transient would
    believe in.
    """

    def __init__(self, program) -> None:
        # Duck-typed to avoid a hard import cycle; validate the surface we
        # rely on so misuse fails at construction, not mid-run.
        for attr in ("rate", "peak_rate", "mean_rate", "is_constant", "integral"):
            if not hasattr(program, attr):
                raise TypeError(
                    f"program must implement RateProgram (missing {attr!r}), "
                    f"got {type(program).__name__}"
                )
        if program.peak_rate <= 0 or not math.isfinite(program.peak_rate):
            raise ValueError(
                f"program peak_rate must be positive and finite, "
                f"got {program.peak_rate}"
            )
        if program.mean_rate <= 0:
            raise ValueError(
                f"program mean_rate must be positive, got {program.mean_rate}"
            )
        self.program = program
        self._warnings: list[str] = []
        self._candidates = 0
        self._accepted = 0

    @property
    def total_rate(self) -> float:
        return float(self.program.mean_rate)

    @property
    def num_clients(self) -> int:
        return 1

    @property
    def candidates(self) -> int:
        """Candidate (pre-thinning) events generated so far."""
        return self._candidates

    @property
    def accepted(self) -> int:
        """Accepted (delivered) arrivals so far."""
        return self._accepted

    def start(
        self, sim: Simulator, rng: np.random.Generator, on_arrival: ArrivalCallback
    ) -> None:
        self._candidates = 0
        self._accepted = 0

        if self.program.is_constant:
            # Exact PoissonArrivals replay: one exponential draw per
            # arrival, no acceptance uniforms (bit-identity contract).
            mean_gap = 1.0 / self.program.rate(0.0)

            def fire_constant() -> None:
                self._candidates += 1
                self._accepted += 1
                on_arrival(0)
                sim.schedule_after(rng.exponential(mean_gap), fire_constant)

            sim.schedule_after(rng.exponential(mean_gap), fire_constant)
            return

        peak = self.program.peak_rate
        mean_gap = 1.0 / peak

        def fire() -> None:
            self._candidates += 1
            # rng.random() is in [0, 1), so a candidate at rate == peak is
            # always accepted.
            if rng.random() * peak < self.program.rate(sim.now):
                self._accepted += 1
                on_arrival(0)
            sim.schedule_after(rng.exponential(mean_gap), fire)

        sim.schedule_after(rng.exponential(mean_gap), fire)

    def validate_warmup(self, warmup_fraction: float, total_jobs: int) -> list[str]:
        """Check that measurement warm-up does not swallow the transient.

        Inverts the program integral to estimate *when* the warm-up window
        (the first ``warmup_fraction`` of ``total_jobs``) ends in simulation
        time, and records a warning if the program's transient activity is
        entirely over by then.  Returns the warnings (also kept for
        :meth:`info_summary`).
        """
        self._warnings = []
        window = self.program.transient_window()
        if window is None or warmup_fraction <= 0 or total_jobs <= 0:
            return self._warnings
        warmup_jobs = warmup_fraction * total_jobs
        warmup_end = self.program.time_for_count(warmup_jobs)
        transient_start, transient_end = window
        if math.isfinite(transient_end) and warmup_end >= transient_end:
            self._warnings.append(
                f"warm-up swallows the transient: warmup_fraction="
                f"{warmup_fraction} of {total_jobs} jobs ends at t≈"
                f"{warmup_end:.1f}, after the program transient "
                f"[{transient_start:.1f}, {transient_end:.1f}] — measured "
                "means exclude the non-stationary window entirely"
            )
        return self._warnings

    def info_summary(self) -> dict:
        """Program configuration + thinning counters for run manifests."""
        summary: dict = {
            "program": self.program.describe(),
            "mean_rate": self.total_rate,
            "peak_rate": float(self.program.peak_rate),
            "is_constant": bool(self.program.is_constant),
        }
        if self._candidates:
            summary["candidates"] = self._candidates
            summary["accepted"] = self._accepted
            summary["acceptance_rate"] = self._accepted / self._candidates
        if self._warnings:
            summary["warnings"] = list(self._warnings)
        return summary

    def __repr__(self) -> str:
        return f"TimeVaryingPoissonArrivals(program={self.program!r})"
