"""Workload substrate: random variates, arrival processes, service times.

* :mod:`repro.workloads.distributions` — samplers (exponential, uniform,
  constant, Bounded Pareto per Eq. 6 of the paper, Weibull, Erlang,
  hyperexponential) with exact analytic moments for validation.
* :mod:`repro.workloads.arrivals` — Poisson aggregate streams, per-client
  Poisson populations and the bursty on/off client streams of §5.4.
* :mod:`repro.workloads.service` — convenience constructors for the
  service-time processes used by the paper's experiments.
"""

from repro.workloads.arrivals import (
    BurstyClientArrivals,
    ClientArrivals,
    PoissonArrivals,
)
from repro.workloads.distributions import (
    BoundedPareto,
    Constant,
    Distribution,
    Erlang,
    Exponential,
    Hyperexponential,
    Uniform,
    Weibull,
)
from repro.workloads.service import (
    bounded_pareto_service,
    exponential_service,
)
from repro.workloads.trace import (
    Trace,
    TraceArrivals,
    TraceRecord,
    TraceService,
    synthesize_diurnal_trace,
)

__all__ = [
    "Distribution",
    "Constant",
    "Exponential",
    "Uniform",
    "BoundedPareto",
    "Weibull",
    "Erlang",
    "Hyperexponential",
    "PoissonArrivals",
    "ClientArrivals",
    "BurstyClientArrivals",
    "exponential_service",
    "bounded_pareto_service",
    "Trace",
    "TraceRecord",
    "TraceArrivals",
    "TraceService",
    "synthesize_diurnal_trace",
]
