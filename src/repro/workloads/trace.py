"""Trace-driven workloads: record, replay and synthesize request traces.

The paper's conclusions call for evaluating LI "under more realistic
workloads".  This module provides the machinery: a :class:`Trace` is an
ordered list of (arrival time, service demand, client id) records that
can be saved/loaded as CSV, replayed through the simulator
(:class:`TraceArrivals` + :class:`TraceService`), or synthesized with a
non-stationary arrival rate (:func:`synthesize_diurnal_trace`) — the
diurnal pattern real services see, and the case where online λ
estimation genuinely matters because no single λ is correct.
"""

from __future__ import annotations

import csv
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.engine.simulator import Simulator
from repro.workloads.arrivals import ArrivalCallback, ArrivalSource
from repro.workloads.distributions import Distribution

__all__ = ["TraceRecord", "Trace", "TraceArrivals", "TraceService", "synthesize_diurnal_trace"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One request in a trace."""

    arrival_time: float
    service_time: float
    client_id: int = 0


class Trace:
    """An ordered request trace.

    Records must be sorted by arrival time; the constructor validates
    ordering and non-negativity so a corrupt trace fails loudly at load
    time instead of corrupting a simulation.
    """

    def __init__(self, records: list[TraceRecord]) -> None:
        if not records:
            raise ValueError("a trace needs at least one record")
        previous = -math.inf
        for index, record in enumerate(records):
            if record.arrival_time < 0 or record.service_time < 0:
                raise ValueError(
                    f"record {index} has negative time fields: {record}"
                )
            if record.arrival_time < previous:
                raise ValueError(
                    f"record {index} arrives at {record.arrival_time}, "
                    f"before its predecessor at {previous}; traces must be "
                    "sorted by arrival time"
                )
            previous = record.arrival_time
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def duration(self) -> float:
        """Time of the last arrival."""
        return self.records[-1].arrival_time

    @property
    def mean_service_time(self) -> float:
        """Average service demand across the trace."""
        return float(
            np.mean([record.service_time for record in self.records])
        )

    @property
    def mean_rate(self) -> float:
        """Average aggregate arrival rate over the trace duration."""
        if self.duration == 0:
            raise ValueError("trace duration is zero; rate undefined")
        return len(self.records) / self.duration

    @property
    def num_clients(self) -> int:
        """Number of distinct client ids appearing in the trace."""
        return len({record.client_id for record in self.records})

    def save_csv(self, path: str | Path) -> None:
        """Write the trace as ``arrival_time,service_time,client_id`` CSV."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["arrival_time", "service_time", "client_id"])
            for record in self.records:
                writer.writerow(
                    [record.arrival_time, record.service_time, record.client_id]
                )

    @classmethod
    def load_csv(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save_csv`."""
        records: list[TraceRecord] = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None or "arrival_time" not in reader.fieldnames:
                raise ValueError(
                    f"{path} is not a trace CSV (missing arrival_time header)"
                )
            for row in reader:
                records.append(
                    TraceRecord(
                        arrival_time=float(row["arrival_time"]),
                        service_time=float(row["service_time"]),
                        client_id=int(row.get("client_id") or 0),
                    )
                )
        return cls(records)


class TraceArrivals(ArrivalSource):
    """Replay a trace's arrival instants through the event engine.

    Pair with :class:`TraceService` built from the *same* trace so each
    arrival receives its recorded service demand (the driver draws service
    times in dispatch order, which is exactly trace order).
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace

    @property
    def total_rate(self) -> float:
        return self.trace.mean_rate

    @property
    def num_clients(self) -> int:
        return max(self.trace.num_clients, 1)

    def start(
        self, sim: Simulator, rng: np.random.Generator, on_arrival: ArrivalCallback
    ) -> None:
        for record in self.trace.records:
            sim.schedule(
                record.arrival_time,
                self._make_event(on_arrival, record.client_id),
            )

    @staticmethod
    def _make_event(on_arrival: ArrivalCallback, client_id: int):
        def fire() -> None:
            on_arrival(client_id)

        return fire


class TraceService(Distribution):
    """Replays a trace's service demands in order.

    Each :meth:`sample` call returns the next record's service time;
    sampling past the end of the trace raises, catching mismatched
    trace/total_jobs configurations immediately.
    """

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._cursor = 0

    def sample(self, rng: np.random.Generator) -> float:
        if self._cursor >= len(self.trace.records):
            raise RuntimeError(
                f"trace exhausted after {self._cursor} service samples; "
                "set total_jobs <= len(trace)"
            )
        value = self.trace.records[self._cursor].service_time
        self._cursor += 1
        return value

    def reset(self) -> None:
        """Rewind to the beginning of the trace (for a fresh run)."""
        self._cursor = 0

    @property
    def mean(self) -> float:
        return self.trace.mean_service_time

    @property
    def variance(self) -> float:
        services = [record.service_time for record in self.trace.records]
        return float(np.var(services, ddof=1)) if len(services) > 1 else 0.0


def synthesize_diurnal_trace(
    rng: np.random.Generator,
    num_jobs: int,
    base_rate: float,
    amplitude: float,
    period: float,
    service: Distribution,
    num_clients: int = 1,
) -> Trace:
    """Generate a non-stationary Poisson trace with a sinusoidal rate.

    The instantaneous aggregate rate is
    ``base_rate * (1 + amplitude * sin(2π t / period))``, sampled by
    thinning — the classic diurnal-load model.  ``amplitude`` must lie in
    [0, 1) so the rate stays positive.
    """
    if num_jobs < 1:
        raise ValueError(f"num_jobs must be >= 1, got {num_jobs}")
    if base_rate <= 0:
        raise ValueError(f"base_rate must be positive, got {base_rate}")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if num_clients < 1:
        raise ValueError(f"num_clients must be >= 1, got {num_clients}")

    peak_rate = base_rate * (1.0 + amplitude)
    records: list[TraceRecord] = []
    now = 0.0
    while len(records) < num_jobs:
        now += rng.exponential(1.0 / peak_rate)
        instantaneous = base_rate * (
            1.0 + amplitude * math.sin(2.0 * math.pi * now / period)
        )
        if rng.random() < instantaneous / peak_rate:  # thinning acceptance
            records.append(
                TraceRecord(
                    arrival_time=now,
                    service_time=service.sample(rng),
                    client_id=int(rng.integers(num_clients)),
                )
            )
    return Trace(records)
