"""Convenience constructors for the paper's service-time processes.

Times throughout the reproduction are expressed in units of the mean job
service time (the paper's convention), so every constructor defaults to a
mean of 1.0.
"""

from __future__ import annotations

from repro.workloads.distributions import BoundedPareto, Distribution, Exponential

__all__ = ["exponential_service", "bounded_pareto_service"]


def exponential_service(mean: float = 1.0) -> Distribution:
    """The paper's default service process: exponential with mean 1."""
    return Exponential(mean)


def bounded_pareto_service(
    alpha: float = 1.1, max_ratio: float = 1000.0, mean: float = 1.0
) -> Distribution:
    """The highly-variable job-size process of §5.5.

    Parameters
    ----------
    alpha:
        Tail index.  The paper uses values matching observed web workloads
        (Crovella et al. report alpha near 1.1).
    max_ratio:
        Upper bound expressed as a multiple of the mean; the paper uses
        10^3 (Fig. 10) and 10^4 (Fig. 11).
    mean:
        Mean job size; the lower bound ``k`` is solved so this holds.
    """
    if max_ratio <= 1.0:
        raise ValueError(f"max_ratio must exceed 1, got {max_ratio}")
    return BoundedPareto.from_mean(alpha=alpha, p=max_ratio * mean, mean=mean)
