"""Non-stationary workloads, elastic capacity, and stale-λ interpretation.

The paper interprets a stale load report *given T and λ*.  This package
drops the stationarity assumption behind λ: deterministic rate programs
drive a thinning-based arrival source, an autoscaler grows and shrinks
the serving fleet from the same stale signals the dispatcher uses, and
drift-aware estimation/interpretation quantifies what happens when λ
itself is stale.  See DESIGN.md §12.
"""

from repro.nonstationary.autoscale import (
    Autoscaler,
    AutoscalerPolicy,
    ElasticCapacityInjector,
    QueueThresholdPolicy,
    ScalingEvent,
    TargetUtilizationPolicy,
)
from repro.nonstationary.drift import DriftAwareLIPolicy
from repro.nonstationary.estimators import (
    DriftTrackingRate,
    ProgramRate,
    WindowedRate,
)
from repro.nonstationary.parse import (
    ARRIVAL_SPEC_KINDS,
    parse_arrivals_spec,
    parse_autoscale_spec,
)
from repro.nonstationary.programs import (
    ConstantProgram,
    DiurnalProgram,
    FlashCrowdProgram,
    PiecewiseConstantProgram,
    RateProgram,
    TraceProgram,
    program_digest,
)

__all__ = [
    "RateProgram",
    "ConstantProgram",
    "PiecewiseConstantProgram",
    "DiurnalProgram",
    "FlashCrowdProgram",
    "TraceProgram",
    "program_digest",
    "WindowedRate",
    "DriftTrackingRate",
    "ProgramRate",
    "DriftAwareLIPolicy",
    "AutoscalerPolicy",
    "TargetUtilizationPolicy",
    "QueueThresholdPolicy",
    "Autoscaler",
    "ScalingEvent",
    "ElasticCapacityInjector",
    "parse_arrivals_spec",
    "parse_autoscale_spec",
    "ARRIVAL_SPEC_KINDS",
]
