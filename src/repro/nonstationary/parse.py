"""CLI spec parsers for arrival programs and autoscalers.

Arrival specs are relative to the cell's configured base rate (so one
``--arrivals`` flag composes with any figure's load axis); the parser
therefore returns a picklable *factory* ``base_rate -> RateProgram``:

* ``constant`` — the stationary baseline (bit-identical replay).
* ``diurnal:amplitude=0.5,period=40[,phase=0]`` — sinusoidal cycle.
* ``flash:surge=4,start=50,duration=20[,every=200]`` — flash crowd.
* ``piecewise:0=1.0,100=2.0,200=1.0`` — stepwise *factors* of the base
  rate at the given times.
* ``trace:schedule.csv`` — replay absolute ``time,rate`` rows from a
  CSV (the one spec that ignores the base rate).

Autoscaler specs build an :class:`~repro.nonstationary.autoscale.Autoscaler`:

* ``target-util:target=0.7,min=2,max=10,interval=5,cooldown=10,warmup=1[,initial=4]``
* ``queue:up=4,down=0.5,step=1,min=2,max=10,interval=5,cooldown=10,warmup=1[,initial=4]``
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.nonstationary.autoscale import (
    Autoscaler,
    QueueThresholdPolicy,
    TargetUtilizationPolicy,
)
from repro.nonstationary.programs import (
    ConstantProgram,
    DiurnalProgram,
    FlashCrowdProgram,
    PiecewiseConstantProgram,
    RateProgram,
    TraceProgram,
)

__all__ = ["parse_arrivals_spec", "parse_autoscale_spec", "ARRIVAL_SPEC_KINDS"]

ProgramFactory = Callable[[float], RateProgram]

ARRIVAL_SPEC_KINDS = ("constant", "diurnal", "flash", "piecewise", "trace")


def _parse_params(rest: str, spec: str) -> dict[str, float]:
    params: dict[str, float] = {}
    if not rest:
        return params
    for item in rest.split(","):
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ValueError(
                f"malformed parameter {item!r} in spec {spec!r} "
                "(expected key=value)"
            )
        try:
            params[key] = float(value)
        except ValueError:
            raise ValueError(
                f"parameter {key!r} in spec {spec!r} must be numeric, "
                f"got {value!r}"
            ) from None
    return params


def _take(params: dict, spec: str, key: str, default=None):
    if key in params:
        return params.pop(key)
    if default is None:
        raise ValueError(f"spec {spec!r} requires parameter {key!r}")
    return default


def _finish(params: dict, spec: str) -> None:
    if params:
        raise ValueError(
            f"unknown parameter(s) {sorted(params)} in spec {spec!r}"
        )


def _constant_program(base_rate: float) -> ConstantProgram:
    return ConstantProgram(base_rate)


def _diurnal_program(
    base_rate: float, amplitude: float, period: float, phase: float
) -> DiurnalProgram:
    return DiurnalProgram(base_rate, amplitude=amplitude, period=period, phase=phase)


def _flash_program(
    base_rate: float,
    surge: float,
    start: float,
    duration: float,
    every: float | None,
) -> FlashCrowdProgram:
    return FlashCrowdProgram(
        base_rate, surge_factor=surge, start=start, duration=duration, every=every
    )


def _piecewise_program(
    base_rate: float, segments: tuple[tuple[float, float], ...]
) -> PiecewiseConstantProgram:
    return PiecewiseConstantProgram(
        [(time, base_rate * factor) for time, factor in segments]
    )


def _trace_program(base_rate: float, path: str) -> TraceProgram:
    del base_rate  # trace rows carry absolute rates
    return TraceProgram.from_csv(path)


def parse_arrivals_spec(spec: str) -> ProgramFactory:
    """Parse an ``--arrivals`` spec into a ``base_rate -> RateProgram`` factory."""
    kind, _, rest = spec.partition(":")
    kind = kind.strip()
    if kind == "constant":
        if rest:
            raise ValueError(f"constant takes no parameters, got {rest!r}")
        return _constant_program
    if kind == "diurnal":
        params = _parse_params(rest, spec)
        amplitude = _take(params, spec, "amplitude")
        period = _take(params, spec, "period")
        phase = _take(params, spec, "phase", 0.0)
        _finish(params, spec)
        # Validate eagerly with a dummy base rate so bad specs fail at
        # parse time, not inside a worker process.
        _diurnal_program(1.0, amplitude, period, phase)
        return partial(
            _diurnal_program, amplitude=amplitude, period=period, phase=phase
        )
    if kind == "flash":
        params = _parse_params(rest, spec)
        surge = _take(params, spec, "surge")
        start = _take(params, spec, "start")
        duration = _take(params, spec, "duration")
        every = params.pop("every", None)
        _finish(params, spec)
        _flash_program(1.0, surge, start, duration, every)
        return partial(
            _flash_program, surge=surge, start=start, duration=duration, every=every
        )
    if kind == "piecewise":
        params = _parse_params(rest, spec)
        if not params:
            raise ValueError(f"piecewise spec {spec!r} needs time=factor pairs")
        try:
            segments = tuple(
                sorted((float(time), factor) for time, factor in params.items())
            )
        except ValueError:
            raise ValueError(
                f"piecewise keys must be numeric times, got {sorted(params)}"
            ) from None
        _piecewise_program(1.0, segments)
        return partial(_piecewise_program, segments=segments)
    if kind == "trace":
        if not rest:
            raise ValueError("trace spec needs a CSV path: trace:<path>")
        program = _trace_program(1.0, rest)  # validates the file eagerly
        del program
        return partial(_trace_program, path=rest)
    raise ValueError(
        f"unknown arrivals spec kind {kind!r} "
        f"(expected one of {', '.join(ARRIVAL_SPEC_KINDS)})"
    )


def parse_autoscale_spec(spec: str) -> Autoscaler:
    """Parse an ``--autoscale`` spec into an :class:`Autoscaler`."""
    kind, _, rest = spec.partition(":")
    kind = kind.strip()
    params = _parse_params(rest, spec)
    interval = _take(params, spec, "interval", 5.0)
    cooldown = _take(params, spec, "cooldown", 10.0)
    warmup = _take(params, spec, "warmup", 1.0)
    initial = params.pop("initial", None)
    min_servers = int(_take(params, spec, "min", 1.0))
    max_servers = params.pop("max", None)
    if max_servers is not None:
        max_servers = int(max_servers)

    if kind == "target-util":
        target = _take(params, spec, "target", 0.7)
        _finish(params, spec)
        policy = TargetUtilizationPolicy(
            target=target, min_servers=min_servers, max_servers=max_servers
        )
    elif kind == "queue":
        up = _take(params, spec, "up", 4.0)
        down = _take(params, spec, "down", 0.5)
        step = int(_take(params, spec, "step", 1.0))
        _finish(params, spec)
        policy = QueueThresholdPolicy(
            scale_up_at=up,
            scale_down_at=down,
            step=step,
            min_servers=min_servers,
            max_servers=max_servers,
        )
    else:
        raise ValueError(
            f"unknown autoscale spec kind {kind!r} "
            "(expected target-util or queue)"
        )
    return Autoscaler(
        policy=policy,
        interval=interval,
        cooldown=cooldown,
        warmup_delay=warmup,
        initial_servers=None if initial is None else int(initial),
    )
