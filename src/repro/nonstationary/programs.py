"""Time-varying arrival-rate programs (the non-stationary extension).

The paper's entire analysis assumes a *stationary* arrival rate λ that
the dispatcher knows exactly.  A :class:`RateProgram` drops that
assumption: it is a deterministic rate function ``λ(t)`` that drives a
non-homogeneous Poisson arrival source
(:class:`~repro.workloads.arrivals.TimeVaryingPoissonArrivals`) via
Lewis–Shedler thinning.  Four shapes cover the production scenarios the
ROADMAP names:

* :class:`ConstantProgram` — the stationary baseline; runs driven by it
  are bit-identical to :class:`~repro.workloads.arrivals.PoissonArrivals`.
* :class:`PiecewiseConstantProgram` — step schedules (load shifts).
* :class:`DiurnalProgram` — a sinusoid around a base rate (daily cycle).
* :class:`FlashCrowdProgram` — a surge pulse, optionally repeating.
* :class:`TraceProgram` — replay of a ``time,rate`` CSV schedule.

Every program knows its own :meth:`integral` (expected arrivals over an
interval, used by the thinning-acceptance property tests and the warm-up
validator), its :meth:`transient_window` (when the interesting
non-stationarity happens, so warm-up that swallows it can warn), and a
JSON-serializable :meth:`describe` digest for run manifests.
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
from abc import ABC, abstractmethod

__all__ = [
    "RateProgram",
    "ConstantProgram",
    "PiecewiseConstantProgram",
    "DiurnalProgram",
    "FlashCrowdProgram",
    "TraceProgram",
    "program_digest",
]

_TWO_PI = 2.0 * math.pi


def _check_rate(value: float, name: str = "rate") -> float:
    as_float = float(value)
    if not math.isfinite(as_float) or as_float < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return as_float


def _check_time(value: float, name: str) -> float:
    as_float = float(value)
    if not math.isfinite(as_float) or as_float < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return as_float


def program_digest(program: "RateProgram") -> str:
    """Stable short digest of a program's configuration (for manifests)."""
    payload = json.dumps(program.describe(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


class RateProgram(ABC):
    """A deterministic arrival-rate schedule ``λ(t)`` for ``t >= 0``."""

    @abstractmethod
    def rate(self, t: float) -> float:
        """Instantaneous aggregate arrival rate at time ``t``."""

    @property
    @abstractmethod
    def peak_rate(self) -> float:
        """An upper bound on ``rate(t)`` (the thinning envelope)."""

    @property
    @abstractmethod
    def mean_rate(self) -> float:
        """The nominal long-run rate (what a stationary run would use)."""

    @property
    def is_constant(self) -> bool:
        """Whether ``rate(t)`` is the same everywhere.

        Constant programs take the exact :class:`PoissonArrivals` draw
        path (no thinning), so they stay bit-identical to stationary runs.
        """
        return False

    @abstractmethod
    def integral(self, t0: float, t1: float) -> float:
        """Expected arrivals over ``[t0, t1]`` (``∫ rate dt``)."""

    def transient_window(self) -> tuple[float, float] | None:
        """The ``(start, end)`` span of non-stationary activity.

        ``None`` for programs with nothing transient to miss;
        ``end`` may be ``inf`` for persistent oscillation.  Used to warn
        when the measurement warm-up swallows the entire transient.
        """
        return None

    @abstractmethod
    def describe(self) -> dict:
        """JSON-serializable configuration digest."""

    def time_for_count(self, count: float, tol: float = 1e-6) -> float:
        """Invert the integral: the time by which ``count`` arrivals are
        expected.  Used by the warm-up validator to locate the warm-up
        boundary in simulation time."""
        if count <= 0:
            return 0.0
        lo = 0.0
        hi = max(count / self.peak_rate, 1e-9)
        for _ in range(200):
            if self.integral(0.0, hi) >= count:
                break
            lo = hi
            hi *= 2.0
        else:
            raise ValueError(
                f"program never accumulates {count} expected arrivals "
                "(rate decays to zero?)"
            )
        while hi - lo > tol * max(hi, 1.0):
            mid = 0.5 * (lo + hi)
            if self.integral(0.0, mid) >= count:
                hi = mid
            else:
                lo = mid
        return 0.5 * (lo + hi)


class ConstantProgram(RateProgram):
    """The stationary baseline: ``rate(t) = rate`` for all ``t``."""

    def __init__(self, rate: float) -> None:
        if rate <= 0 or not math.isfinite(rate):
            raise ValueError(f"rate must be positive and finite, got {rate}")
        self._rate = float(rate)

    def rate(self, t: float) -> float:
        return self._rate

    @property
    def peak_rate(self) -> float:
        return self._rate

    @property
    def mean_rate(self) -> float:
        return self._rate

    @property
    def is_constant(self) -> bool:
        return True

    def integral(self, t0: float, t1: float) -> float:
        return self._rate * max(t1 - t0, 0.0)

    def describe(self) -> dict:
        return {"kind": "constant", "rate": self._rate}

    def __repr__(self) -> str:
        return f"ConstantProgram(rate={self._rate!r})"


class PiecewiseConstantProgram(RateProgram):
    """A step schedule: ``(start_time, rate)`` segments, first at t=0.

    The final segment's rate holds forever.  The mean rate is the
    time-average over the scheduled span (the last segment weighted like
    the average of the earlier ones when the span is a single point).
    """

    def __init__(self, segments: list[tuple[float, float]]) -> None:
        if not segments:
            raise ValueError("segments must be non-empty")
        cleaned = [
            (_check_time(t, "segment time"), _check_rate(r, "segment rate"))
            for t, r in segments
        ]
        if cleaned[0][0] != 0.0:
            raise ValueError(
                f"first segment must start at t=0, got t={cleaned[0][0]}"
            )
        for (t_prev, _), (t_next, _) in zip(cleaned, cleaned[1:]):
            if t_next <= t_prev:
                raise ValueError(
                    "segment times must be strictly increasing, got "
                    f"{t_prev} then {t_next}"
                )
        peak = max(r for _, r in cleaned)
        if peak <= 0:
            raise ValueError("at least one segment must have a positive rate")
        self._segments = cleaned
        self._peak = peak

    def rate(self, t: float) -> float:
        if t < 0:
            return self._segments[0][1]
        current = self._segments[0][1]
        for start, value in self._segments:
            if t >= start:
                current = value
            else:
                break
        return current

    @property
    def peak_rate(self) -> float:
        return self._peak

    @property
    def mean_rate(self) -> float:
        span = self._segments[-1][0]
        if span <= 0.0:
            return self._segments[-1][1]
        return self.integral(0.0, span) / span

    def integral(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        total = 0.0
        boundaries = [start for start, _ in self._segments] + [math.inf]
        for (start, value), end in zip(self._segments, boundaries[1:]):
            lo = max(t0, start)
            hi = min(t1, end)
            if hi > lo:
                total += value * (hi - lo)
        return total

    def transient_window(self) -> tuple[float, float] | None:
        if len(self._segments) < 2:
            return None
        return (self._segments[1][0], self._segments[-1][0])

    def describe(self) -> dict:
        return {
            "kind": "piecewise",
            "segments": [[t, r] for t, r in self._segments],
        }

    def __repr__(self) -> str:
        return f"PiecewiseConstantProgram({self._segments!r})"


class DiurnalProgram(RateProgram):
    """A sinusoidal daily cycle: ``base · (1 + A·sin(2π(t-φ)/P))``.

    ``amplitude`` is the relative swing A in [0, 1); the mean rate over
    a full period is exactly ``base_rate``.
    """

    def __init__(
        self,
        base_rate: float,
        amplitude: float,
        period: float,
        phase: float = 0.0,
    ) -> None:
        if base_rate <= 0 or not math.isfinite(base_rate):
            raise ValueError(
                f"base_rate must be positive and finite, got {base_rate}"
            )
        if not 0.0 <= amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {amplitude}")
        if period <= 0 or not math.isfinite(period):
            raise ValueError(f"period must be positive and finite, got {period}")
        self.base_rate = float(base_rate)
        self.amplitude = float(amplitude)
        self.period = float(period)
        self.phase = _check_time(phase, "phase")

    def rate(self, t: float) -> float:
        angle = _TWO_PI * (t - self.phase) / self.period
        return self.base_rate * (1.0 + self.amplitude * math.sin(angle))

    @property
    def peak_rate(self) -> float:
        return self.base_rate * (1.0 + self.amplitude)

    @property
    def mean_rate(self) -> float:
        return self.base_rate

    @property
    def is_constant(self) -> bool:
        return self.amplitude == 0.0

    def _antiderivative(self, t: float) -> float:
        angle = _TWO_PI * (t - self.phase) / self.period
        return self.base_rate * (
            t - self.amplitude * self.period / _TWO_PI * math.cos(angle)
        )

    def integral(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        return self._antiderivative(t1) - self._antiderivative(t0)

    def transient_window(self) -> tuple[float, float] | None:
        if self.amplitude == 0.0:
            return None
        return (0.0, math.inf)

    def describe(self) -> dict:
        return {
            "kind": "diurnal",
            "base_rate": self.base_rate,
            "amplitude": self.amplitude,
            "period": self.period,
            "phase": self.phase,
        }

    def __repr__(self) -> str:
        return (
            f"DiurnalProgram(base_rate={self.base_rate!r}, "
            f"amplitude={self.amplitude!r}, period={self.period!r})"
        )


class FlashCrowdProgram(RateProgram):
    """A flash-crowd surge: ``base`` rate, jumping to ``base·surge_factor``
    for ``duration`` time units starting at ``start``.

    With ``every`` set, the surge repeats — a pulse train whose duty
    cycle ``duration/every`` keeps the long-run mean rate meaningful for
    arbitrarily long runs (the registry's flash-crowd figure uses this
    so the surge/recover cycle dominates the measured mean, not the
    choice of ``total_jobs``).
    """

    def __init__(
        self,
        base_rate: float,
        surge_factor: float,
        start: float,
        duration: float,
        every: float | None = None,
    ) -> None:
        if base_rate <= 0 or not math.isfinite(base_rate):
            raise ValueError(
                f"base_rate must be positive and finite, got {base_rate}"
            )
        if surge_factor < 1.0 or not math.isfinite(surge_factor):
            raise ValueError(
                f"surge_factor must be >= 1 and finite, got {surge_factor}"
            )
        if duration <= 0 or not math.isfinite(duration):
            raise ValueError(
                f"duration must be positive and finite, got {duration}"
            )
        self.start = _check_time(start, "start")
        if every is not None:
            every = float(every)
            if not math.isfinite(every) or every <= duration:
                raise ValueError(
                    f"every must exceed duration ({duration}), got {every}"
                )
        self.base_rate = float(base_rate)
        self.surge_factor = float(surge_factor)
        self.duration = float(duration)
        self.every = every

    def _in_surge(self, t: float) -> bool:
        if t < self.start:
            return False
        offset = t - self.start
        if self.every is not None:
            offset %= self.every
        return offset < self.duration

    def rate(self, t: float) -> float:
        if self._in_surge(t):
            return self.base_rate * self.surge_factor
        return self.base_rate

    @property
    def peak_rate(self) -> float:
        return self.base_rate * self.surge_factor

    @property
    def mean_rate(self) -> float:
        if self.every is None:
            return self.base_rate
        duty = self.duration / self.every
        return self.base_rate * (1.0 + (self.surge_factor - 1.0) * duty)

    @property
    def is_constant(self) -> bool:
        return self.surge_factor == 1.0

    def _surge_time(self, t0: float, t1: float) -> float:
        """Total time spent inside surge pulses over ``[t0, t1]``."""
        if t1 <= t0:
            return 0.0
        lo = max(t0, self.start)
        if t1 <= lo:
            return 0.0
        if self.every is None:
            return max(
                0.0, min(t1, self.start + self.duration) - lo
            )

        def surged_until(t: float) -> float:
            # Surge time accumulated in [start, t].
            if t <= self.start:
                return 0.0
            offset = t - self.start
            cycles = math.floor(offset / self.every)
            return cycles * self.duration + min(
                offset - cycles * self.every, self.duration
            )

        return surged_until(t1) - surged_until(lo)

    def integral(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        span = t1 - t0
        surged = self._surge_time(t0, t1)
        return self.base_rate * (span + (self.surge_factor - 1.0) * surged)

    def transient_window(self) -> tuple[float, float] | None:
        if self.surge_factor == 1.0:
            return None
        if self.every is not None:
            return (self.start, math.inf)
        return (self.start, self.start + self.duration)

    def describe(self) -> dict:
        return {
            "kind": "flash",
            "base_rate": self.base_rate,
            "surge_factor": self.surge_factor,
            "start": self.start,
            "duration": self.duration,
            "every": self.every,
        }

    def __repr__(self) -> str:
        return (
            f"FlashCrowdProgram(base_rate={self.base_rate!r}, "
            f"surge_factor={self.surge_factor!r}, start={self.start!r}, "
            f"duration={self.duration!r}, every={self.every!r})"
        )


class TraceProgram(PiecewiseConstantProgram):
    """Replay of a recorded rate schedule (step-held between samples).

    The canonical source is a two-column ``time,rate`` CSV
    (:meth:`from_csv`); a header row is skipped if present, and the
    first sample must be at time 0 so the schedule covers the whole run.
    """

    def __init__(
        self, points: list[tuple[float, float]], source: str | None = None
    ) -> None:
        super().__init__(points)
        self.source = source

    @classmethod
    def from_csv(cls, path: str) -> "TraceProgram":
        points: list[tuple[float, float]] = []
        with open(path, newline="") as handle:
            for row in csv.reader(handle):
                if not row or row[0].lstrip().startswith("#"):
                    continue
                try:
                    t, r = float(row[0]), float(row[1])
                except (ValueError, IndexError):
                    if not points:  # tolerate one header row
                        continue
                    raise ValueError(
                        f"malformed trace row {row!r} in {path}"
                    ) from None
                points.append((t, r))
        if not points:
            raise ValueError(f"trace {path} contains no (time, rate) rows")
        return cls(points, source=path)

    def describe(self) -> dict:
        digest = super().describe()
        digest["kind"] = "trace"
        if self.source is not None:
            digest["source"] = self.source
        return digest

    def __repr__(self) -> str:
        return (
            f"TraceProgram({len(self._segments)} points, "
            f"source={self.source!r})"
        )
