"""Rate estimators for drifting arrival rates (the stale-λ study).

The paper assumes the dispatcher knows λ exactly.  Under a time-varying
program that assumption splits three ways:

* :class:`ProgramRate` — the non-stationary oracle: reads the *current*
  program rate λ(t).  Upper-bounds what any online estimator can do.
* :class:`WindowedRate` — a sliding-window count estimator: responsive
  (lag ≈ window/2) but noisy at small windows.
* :class:`DriftTrackingRate` — a fast windowed estimate paired with a
  slow EWMA; reports the *larger* of the two (the paper's §5.6
  conservative rule: overestimating λ is benign, underestimating
  recreates the herd effect) and exposes a :meth:`drift_factor` that
  drift-aware policies use to widen their interpretation interval.

All three override ``observe_arrival``, which correctly makes runs using
them event-engine-only (the batch engines precompute phase boundaries
and cannot interleave per-arrival estimator updates).
"""

from __future__ import annotations

from collections import deque

from repro.core.rate_estimators import EWMARate, RateEstimator

__all__ = ["WindowedRate", "DriftTrackingRate", "ProgramRate"]


class WindowedRate(RateEstimator):
    """λ estimation by counting arrivals in a sliding time window.

    The aggregate rate estimate is ``count / effective_window`` where the
    effective window is clipped to the elapsed simulation time (so early
    estimates use all available history instead of under-counting a
    not-yet-full window).  Before two arrivals have been seen the
    estimator returns its conservative prior; the returned per-server
    rate is floored at ``min_rate``.

    During a drought the window drains as soon as the next arrival (or an
    explicit ``observe_arrival``) advances time, so the estimate decays
    toward the floor instead of freezing — the failure mode the EWMA
    needed a special branch for falls out of the representation here.
    """

    def __init__(
        self,
        window: float = 10.0,
        initial_rate: float = 1.0,
        min_rate: float = 1e-4,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if initial_rate <= 0:
            raise ValueError(f"initial_rate must be positive, got {initial_rate}")
        if min_rate <= 0:
            raise ValueError(f"min_rate must be positive, got {min_rate}")
        self.window = float(window)
        self.initial_rate = float(initial_rate)
        self.min_rate = float(min_rate)
        self._times: deque[float] = deque()
        self._now = 0.0

    def bind(self, num_servers: int, true_rate: float) -> None:
        super().bind(num_servers, true_rate)
        self._times = deque()
        self._now = 0.0

    def observe_arrival(self, now: float) -> None:
        if now < self._now:
            return  # out-of-order notification; ignore
        self._now = now
        self._times.append(now)
        horizon = now - self.window
        while self._times and self._times[0] <= horizon:
            self._times.popleft()

    def per_server_rate(self) -> float:
        if len(self._times) < 2:
            return self.initial_rate
        effective = min(self.window, self._now)
        if effective <= 0.0:
            return self.initial_rate
        aggregate = len(self._times) / effective
        return max(aggregate / self._num_servers, self.min_rate)

    def __repr__(self) -> str:
        return (
            f"WindowedRate(window={self.window!r}, "
            f"initial_rate={self.initial_rate!r})"
        )


class DriftTrackingRate(RateEstimator):
    """Fast-window + slow-EWMA pair with conservative max selection.

    The slow EWMA tracks the long-run rate; the fast window tracks the
    last few seconds.  During a surge the fast estimate rises first, so
    ``per_server_rate`` — the max of the two — already follows the surge
    while a plain EWMA would lag.  :meth:`drift_factor` reports how far
    the fast estimate sits above the slow one (clipped to
    ``[1, max_drift]``); drift-aware LI widens its interpretation window
    by this signal to absorb the residual estimator lag.
    """

    def __init__(
        self,
        fast_window: float = 5.0,
        slow_smoothing: float = 0.02,
        initial_rate: float = 1.0,
        min_rate: float = 1e-4,
        max_drift: float = 8.0,
    ) -> None:
        if max_drift < 1.0:
            raise ValueError(f"max_drift must be >= 1, got {max_drift}")
        self.fast = WindowedRate(
            window=fast_window, initial_rate=initial_rate, min_rate=min_rate
        )
        self.slow = EWMARate(
            smoothing=slow_smoothing, initial_rate=initial_rate, min_rate=min_rate
        )
        self.max_drift = float(max_drift)

    def bind(self, num_servers: int, true_rate: float) -> None:
        super().bind(num_servers, true_rate)
        self.fast.bind(num_servers, true_rate)
        self.slow.bind(num_servers, true_rate)

    def observe_arrival(self, now: float) -> None:
        self.fast.observe_arrival(now)
        self.slow.observe_arrival(now)

    def per_server_rate(self) -> float:
        return max(self.fast.per_server_rate(), self.slow.per_server_rate())

    def drift_factor(self) -> float:
        """How far the fast estimate exceeds the slow one, in [1, max_drift].

        1.0 means steady state (or a falling rate, which is benign to
        ignore per §5.6); values above 1 mean the rate is rising faster
        than the slow estimate tracks.
        """
        slow = self.slow.per_server_rate()
        if slow <= 0.0:
            return self.max_drift
        ratio = self.fast.per_server_rate() / slow
        return min(max(ratio, 1.0), self.max_drift)

    def __repr__(self) -> str:
        return (
            f"DriftTrackingRate(fast_window={self.fast.window!r}, "
            f"slow_smoothing={self.slow.smoothing!r}, "
            f"max_drift={self.max_drift!r})"
        )


class ProgramRate(RateEstimator):
    """The non-stationary oracle: reads λ(t) straight off the program.

    ``observe_arrival`` only tracks the current time; the returned rate
    is the program's instantaneous rate at the last observed arrival,
    floored at ``min_rate`` (a diurnal trough can reach rates low enough
    to make LI's expected-arrivals product degenerate).
    """

    def __init__(self, program, min_rate: float = 1e-4) -> None:
        if not hasattr(program, "rate"):
            raise TypeError(
                f"program must implement RateProgram, got {type(program).__name__}"
            )
        if min_rate <= 0:
            raise ValueError(f"min_rate must be positive, got {min_rate}")
        self.program = program
        self.min_rate = float(min_rate)
        self._now = 0.0

    def bind(self, num_servers: int, true_rate: float) -> None:
        super().bind(num_servers, true_rate)
        self._now = 0.0

    def observe_arrival(self, now: float) -> None:
        if now > self._now:
            self._now = now

    def per_server_rate(self) -> float:
        aggregate = self.program.rate(self._now)
        return max(aggregate / self._num_servers, self.min_rate)

    def __repr__(self) -> str:
        return f"ProgramRate(program={self.program!r})"
