"""Elastic capacity: servers join and leave mid-run under a controller.

An :class:`Autoscaler` bundles a scaling rule (:class:`AutoscalerPolicy`)
with control-loop timing (tick interval, cool-down between actions, and
a warm-up delay before a newly started server can serve).  At run time
the simulation wraps its fault injector in an
:class:`ElasticCapacityInjector`, so elastic capacity composes with the
existing UP/DOWN fault machinery through exactly one interface:

* ``is_down(server_id, t)`` — an inactive (scaled-down) or still
  warming-up server is unavailable to the dispatcher, just like a
  crashed one; dispatches to it time out and retry.
* ``mask_refresh(...)`` — an inactive server cannot send board reports,
  so the bulletin board keeps its *last* entry.  A scale-up therefore
  looks exactly like the paper's worst case: a cold (empty) server whose
  board entry is stale — the dispatcher only learns about the new
  capacity one refresh period after warm-up completes.

The controller itself is deliberately honest about staleness: its
desired-capacity rule reads the same stale bulletin board and the same
online λ estimate the dispatcher uses, never the true instantaneous
state.  Scaled-down servers stop *receiving* work but drain the queue
they already have (connection draining).

Unlike the pull-based :class:`~repro.faults.injector.FaultInjector`, the
elastic injector schedules real controller-tick events, which is one of
the reasons autoscaled runs are event-engine-only (see
``ClusterSimulation.fast_path_blocker``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.faults.injector import FaultInjector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.server import Server
    from repro.engine.simulator import Simulator

__all__ = [
    "AutoscalerPolicy",
    "TargetUtilizationPolicy",
    "QueueThresholdPolicy",
    "Autoscaler",
    "ScalingEvent",
    "ElasticCapacityInjector",
]


class AutoscalerPolicy(ABC):
    """A scaling rule: observed state -> desired active-server count."""

    @abstractmethod
    def desired_capacity(
        self,
        now: float,
        active: int,
        board_loads: np.ndarray,
        estimated_total_rate: float,
    ) -> int:
        """Desired number of active servers.

        ``board_loads`` are the *stale* reported loads of the currently
        active servers; ``estimated_total_rate`` is the dispatcher's
        current aggregate λ estimate.  The result is clipped to the
        policy's ``[min_servers, max_servers]`` by the caller's use of
        :meth:`clip`.
        """

    @abstractmethod
    def describe(self) -> dict:
        """JSON-serializable configuration digest."""


def _check_bounds(min_servers: int, max_servers: int | None) -> tuple[int, int | None]:
    if min_servers < 1:
        raise ValueError(f"min_servers must be >= 1, got {min_servers}")
    if max_servers is not None and max_servers < min_servers:
        raise ValueError(
            f"max_servers ({max_servers}) must be >= min_servers ({min_servers})"
        )
    return int(min_servers), None if max_servers is None else int(max_servers)


class TargetUtilizationPolicy(AutoscalerPolicy):
    """Provision enough servers to hold estimated utilization at a target.

    ``desired = ceil(λ̂_total / target)`` — the textbook cloud-autoscaler
    rule, with capacity expressed in unit-rate servers (λ is already a
    fraction of one server's throughput).  Because λ̂ comes from the
    stale online estimator, the rule inherits its lag: a flash crowd is
    only provisioned for after the estimator catches up.
    """

    def __init__(
        self,
        target: float = 0.7,
        min_servers: int = 1,
        max_servers: int | None = None,
    ) -> None:
        if not 0.0 < target <= 1.0:
            raise ValueError(f"target must be in (0, 1], got {target}")
        self.target = float(target)
        self.min_servers, self.max_servers = _check_bounds(min_servers, max_servers)

    def desired_capacity(
        self,
        now: float,
        active: int,
        board_loads: np.ndarray,
        estimated_total_rate: float,
    ) -> int:
        return math.ceil(max(estimated_total_rate, 0.0) / self.target)

    def describe(self) -> dict:
        return {
            "kind": "target-util",
            "target": self.target,
            "min_servers": self.min_servers,
            "max_servers": self.max_servers,
        }

    def __repr__(self) -> str:
        return (
            f"TargetUtilizationPolicy(target={self.target!r}, "
            f"min_servers={self.min_servers!r}, max_servers={self.max_servers!r})"
        )


class QueueThresholdPolicy(AutoscalerPolicy):
    """Step scaling on the mean reported queue length.

    Scale up by ``step`` when the mean stale board load of the active
    servers reaches ``scale_up_at``; scale down by ``step`` when it falls
    to ``scale_down_at``.  The dead band between the thresholds prevents
    flapping; the board being stale means the rule reacts one refresh
    period late, like every other consumer of the bulletin board.
    """

    def __init__(
        self,
        scale_up_at: float = 4.0,
        scale_down_at: float = 0.5,
        step: int = 1,
        min_servers: int = 1,
        max_servers: int | None = None,
    ) -> None:
        if scale_down_at < 0:
            raise ValueError(f"scale_down_at must be >= 0, got {scale_down_at}")
        if scale_up_at <= scale_down_at:
            raise ValueError(
                f"scale_up_at ({scale_up_at}) must exceed "
                f"scale_down_at ({scale_down_at})"
            )
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self.scale_up_at = float(scale_up_at)
        self.scale_down_at = float(scale_down_at)
        self.step = int(step)
        self.min_servers, self.max_servers = _check_bounds(min_servers, max_servers)

    def desired_capacity(
        self,
        now: float,
        active: int,
        board_loads: np.ndarray,
        estimated_total_rate: float,
    ) -> int:
        if board_loads.size == 0:
            return active
        mean_load = float(np.mean(board_loads))
        if mean_load >= self.scale_up_at:
            return active + self.step
        if mean_load <= self.scale_down_at:
            return active - self.step
        return active

    def describe(self) -> dict:
        return {
            "kind": "queue",
            "scale_up_at": self.scale_up_at,
            "scale_down_at": self.scale_down_at,
            "step": self.step,
            "min_servers": self.min_servers,
            "max_servers": self.max_servers,
        }

    def __repr__(self) -> str:
        return (
            f"QueueThresholdPolicy(scale_up_at={self.scale_up_at!r}, "
            f"scale_down_at={self.scale_down_at!r}, step={self.step!r})"
        )


@dataclass(frozen=True)
class Autoscaler:
    """Control-loop configuration around an :class:`AutoscalerPolicy`.

    Parameters
    ----------
    policy:
        The scaling rule.
    interval:
        Controller tick period; the first tick fires at ``interval``.
    cooldown:
        Minimum time between scaling *actions* (ticks still observe).
    warmup_delay:
        Time between a scale-up decision and the server accepting work
        (instance boot / cache warm).  Scale-downs take effect
        immediately but drain in-flight queues.
    initial_servers:
        Active servers at t=0; ``None`` starts with the whole cluster.
    """

    policy: AutoscalerPolicy
    interval: float = 5.0
    cooldown: float = 10.0
    warmup_delay: float = 1.0
    initial_servers: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.policy, AutoscalerPolicy):
            raise TypeError(
                f"policy must be an AutoscalerPolicy, got {type(self.policy).__name__}"
            )
        if self.interval <= 0 or not math.isfinite(self.interval):
            raise ValueError(
                f"interval must be positive and finite, got {self.interval}"
            )
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.warmup_delay < 0:
            raise ValueError(f"warmup_delay must be >= 0, got {self.warmup_delay}")
        if self.initial_servers is not None and self.initial_servers < 1:
            raise ValueError(
                f"initial_servers must be >= 1, got {self.initial_servers}"
            )

    def describe(self) -> dict:
        return {
            "policy": self.policy.describe(),
            "interval": self.interval,
            "cooldown": self.cooldown,
            "warmup_delay": self.warmup_delay,
            "initial_servers": self.initial_servers,
        }


@dataclass(frozen=True)
class ScalingEvent:
    """One controller action: start or stop one server."""

    time: float
    action: str  # "up" | "down"
    server_id: int
    effective_at: float  # == time for "down"; time + warmup for "up"


class ElasticCapacityInjector(FaultInjector):
    """Fault-injector facade that adds controller-driven capacity changes.

    Wraps an optional *inner* :class:`FaultInjector` (the run's configured
    ``faults=``): a server is unavailable when the inner injector says it
    is down **or** the controller has it inactive/warming up, and board
    masking composes the inner mask with capacity masking.  With no inner
    injector it behaves as a null schedule plus scaling.

    Deterministic by construction: scale-downs stop the highest-numbered
    active server, scale-ups start the lowest-numbered inactive one, and
    the controller draws no randomness, so autoscaled runs reproduce
    bit-for-bit from the seed like everything else.
    """

    def __init__(self, config: Autoscaler, inner: FaultInjector | None = None) -> None:
        if not isinstance(config, Autoscaler):
            raise TypeError(
                f"config must be an Autoscaler, got {type(config).__name__}"
            )
        super().__init__(
            schedule=None, retry=inner.retry if inner is not None else None
        )
        self.config = config
        self.inner = inner
        self._sim: "Simulator | None" = None
        self._staleness = None
        self._rate_estimator = None
        self._active: list[bool] = []
        self._effective_from: list[float] = []
        self._events: list[ScalingEvent] = []
        self._last_action = -math.inf
        self._active_time_weighted = 0.0
        self._last_tick = 0.0

    # -- wiring ---------------------------------------------------------

    def attach(
        self,
        sim: "Simulator",
        servers: Sequence["Server"],
        rng: np.random.Generator,
        probes=None,
    ) -> None:
        if self.inner is not None:
            self.inner.attach(sim, servers, rng, probes)
            # Delegate base-class queries (state_at, availability_summary,
            # fault_spans) to the inner realization.
            self._timelines = self.inner._timelines
            self._servers = servers
        else:
            super().attach(sim, servers, rng, probes=probes)
        self._sim = sim
        n = len(servers)
        initial = self.config.initial_servers
        if initial is None:
            initial = n
        initial = min(initial, n)
        self._active = [server_id < initial for server_id in range(n)]
        self._effective_from = [0.0] * n
        self._events = []
        self._last_action = -math.inf
        self._active_time_weighted = 0.0
        self._last_tick = 0.0
        sim.schedule_after(self.config.interval, self._tick)

    def connect(self, staleness, rate_estimator) -> None:
        """Hand the controller its (stale) observation channels."""
        self._staleness = staleness
        self._rate_estimator = rate_estimator

    # -- availability queries (dispatcher + board) ----------------------

    def _capacity_available(self, server_id: int, time: float) -> bool:
        return self._active[server_id] and time >= self._effective_from[server_id]

    def is_down(self, server_id: int, time: float) -> bool:
        if not self._capacity_available(server_id, time):
            return True
        if self.inner is not None:
            return self.inner.is_down(server_id, time)
        return False

    def rate_multiplier(self, server_id: int, time: float) -> float:
        if self.inner is not None:
            return self.inner.rate_multiplier(server_id, time)
        return super().rate_multiplier(server_id, time)

    def mask_refresh(
        self, now: float, fresh: np.ndarray, previous: np.ndarray | None
    ) -> np.ndarray:
        if self.inner is not None:
            fresh = self.inner.mask_refresh(now, fresh, previous)
        if previous is None:
            return fresh
        masked = fresh
        copied = False
        for server_id in range(len(self._active)):
            if not self._capacity_available(server_id, now):
                if masked is fresh and not copied:
                    masked = fresh.copy()
                    copied = True
                masked[server_id] = previous[server_id]
        return masked

    # -- the control loop -----------------------------------------------

    def _observed_state(self, now: float) -> tuple[int, np.ndarray, float]:
        active_ids = [
            server_id
            for server_id, active in enumerate(self._active)
            if active
        ]
        board = None
        if self._staleness is not None:
            try:
                board = self._staleness.view(0, now).loads
            except Exception:  # board not ready yet (t < first refresh)
                board = None
        if board is None:
            loads = np.empty(0)
        else:
            loads = np.asarray(board, dtype=float)[active_ids]
        rate = 0.0
        if self._rate_estimator is not None:
            rate = self._rate_estimator.per_server_rate() * len(self._active)
        return len(active_ids), loads, rate

    def _tick(self) -> None:
        assert self._sim is not None
        now = self._sim.now
        active_count = sum(self._active)
        self._active_time_weighted += active_count * (now - self._last_tick)
        self._last_tick = now

        active, loads, rate = self._observed_state(now)
        policy = self.config.policy
        desired = policy.desired_capacity(now, active, loads, rate)
        lo = policy.min_servers
        hi = policy.max_servers if policy.max_servers is not None else len(self._active)
        desired = max(lo, min(desired, hi, len(self._active)))

        if desired != active and now - self._last_action >= self.config.cooldown:
            if desired > active:
                self._scale_up(now, desired - active)
            else:
                self._scale_down(now, active - desired)
            self._last_action = now
        self._sim.schedule_after(self.config.interval, self._tick)

    def _scale_up(self, now: float, count: int) -> None:
        effective = now + self.config.warmup_delay
        for server_id, active in enumerate(self._active):
            if count == 0:
                break
            if not active:
                self._active[server_id] = True
                self._effective_from[server_id] = effective
                self._events.append(
                    ScalingEvent(now, "up", server_id, effective)
                )
                count -= 1

    def _scale_down(self, now: float, count: int) -> None:
        for server_id in range(len(self._active) - 1, -1, -1):
            if count == 0:
                break
            if self._active[server_id]:
                self._active[server_id] = False
                self._events.append(
                    ScalingEvent(now, "down", server_id, now)
                )
                count -= 1

    # -- observability --------------------------------------------------

    @property
    def events(self) -> list[ScalingEvent]:
        return list(self._events)

    def scaling_summary(self, duration: float) -> dict:
        """Realized scaling history, JSON-serializable (for manifests)."""
        active_now = sum(self._active)
        mean_active = None
        if duration > 0:
            # Account for the span since the last tick at the current count.
            weighted = self._active_time_weighted + active_now * max(
                duration - self._last_tick, 0.0
            )
            mean_active = weighted / duration
        return {
            "config": self.config.describe(),
            "num_servers": len(self._active),
            "final_active": active_now,
            "mean_active": mean_active,
            "actions": len(self._events),
            "events": [
                {
                    "time": event.time,
                    "action": event.action,
                    "server": event.server_id,
                    "effective_at": event.effective_at,
                }
                for event in self._events
            ],
        }

    def describe(self) -> dict:
        digest = {"autoscaler": self.config.describe()}
        if self.inner is not None:
            digest["inner"] = self.inner.describe()
        return digest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ElasticCapacityInjector(config={self.config!r}, "
            f"inner={self.inner!r})"
        )
