"""Drift-aware Load Interpretation.

§5.6 of the paper shows that *underestimating* λ recreates the herd
effect while overestimating is benign.  Under a rising arrival rate an
online estimator is always behind the truth — exactly the dangerous
direction — so during a flash crowd a plain LI policy driven by a lagged
estimate herds.  :class:`DriftAwareLIPolicy` applies the paper's own
medicine dynamically: when its estimator reports drift (fast-window
estimate above the slow one), it widens the interpretation window by the
drift factor, pushing the water-filling toward the uniform (conservative)
limit for exactly as long as the estimate is untrustworthy.
"""

from __future__ import annotations

import numpy as np

from repro.core.li_basic import BasicLIPolicy
from repro.core.weights import waterfill_probabilities
from repro.core.views import LoadView

__all__ = ["DriftAwareLIPolicy"]


class DriftAwareLIPolicy(BasicLIPolicy):
    """Basic LI with a drift-widened interpretation window.

    The effective window becomes ``T · (1 + gain·(drift − 1))``, capped
    at ``max_widen · T``, where ``drift >= 1`` comes from the estimator's
    ``drift_factor()`` (estimators without one are treated as drift-free,
    reducing this policy to Basic LI).  Widening multiplies the expected
    arrivals R = λ·n·T, which flattens the dispatch vector — graceful
    degradation instead of herd collapse while the λ estimate lags a
    surge.

    Because drift changes between requests of the same board phase, the
    per-phase cumulative-vector cache is bypassed whenever drift is
    active.
    """

    name = "drift-li"

    def __init__(self, gain: float = 1.0, max_widen: float = 4.0) -> None:
        super().__init__(timestamp_aware=False)
        if gain < 0:
            raise ValueError(f"gain must be >= 0, got {gain}")
        if max_widen < 1.0:
            raise ValueError(f"max_widen must be >= 1, got {max_widen}")
        self.gain = float(gain)
        self.max_widen = float(max_widen)
        self.name = "drift-li"

    def _drift(self) -> float:
        factor = getattr(self.rate_estimator, "drift_factor", None)
        if factor is None:
            return 1.0
        return max(float(factor()), 1.0)

    def widen_factor(self) -> float:
        """Current window multiplier, in ``[1, max_widen]``."""
        drift = self._drift()
        return min(1.0 + self.gain * (drift - 1.0), self.max_widen)

    def select(self, view: LoadView) -> int:
        widen = self.widen_factor()
        if widen <= 1.0:
            return super().select(view)
        window = view.effective_window * widen
        expected_arrivals = (
            self.rate_estimator.per_server_rate() * self.num_servers * window
        )
        probabilities = waterfill_probabilities(view.loads, expected_arrivals)
        return self._sample_cumulative(np.cumsum(probabilities))

    def phase_batchable(self, num_servers: int) -> bool:
        # The widening factor varies per request within a phase, so the
        # phase-batched replay of `select` would not be faithful.
        return False
