"""Extension ablations beyond the paper (DESIGN.md §6).

* Hybrid LI (§4.1.1, described but not plotted): should land between
  Basic LI and Aggressive LI under the periodic model.
* Individual per-server updates (Mitzenmacher's third model): should
  behave like the periodic model.
* Online EWMA λ estimation: should track the oracle closely, validating
  that LI is deployable without being told λ.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel


@pytest.fixture(scope="module")
def ext_hybrid():
    return generate_figure("ext-hybrid")


@pytest.fixture(scope="module")
def ext_individual():
    return generate_figure("ext-individual")


@pytest.fixture(scope="module")
def ext_ewma():
    return generate_figure("ext-ewma")


@pytest.fixture(scope="module")
def ext_workinfo():
    return generate_figure("ext-workinfo", seeds=6)


def test_ablation_hybrid_li(ext_hybrid, benchmark):
    benchmark.pedantic(
        kernel("ext-hybrid", "hybrid-li", 4.0), rounds=3, iterations=1
    )
    for x in (4.0, 8.0, 16.0):
        basic = ext_hybrid.value("basic-li", x)
        hybrid = ext_hybrid.value("hybrid-li", x)
        aggressive = ext_hybrid.value("aggressive-li", x)
        assert aggressive <= basic * 1.05  # the paper's ordering
        assert hybrid <= basic * 1.05
        assert hybrid >= aggressive * 0.9
    assert ext_hybrid.value("hybrid-li", 64.0) <= ext_hybrid.value(
        "random", 64.0
    ) * 1.1


def test_ablation_individual_updates(ext_individual, benchmark):
    benchmark.pedantic(
        kernel("ext-individual", "basic-li", 4.0), rounds=3, iterations=1
    )
    # Same qualitative shape as the periodic model.
    assert ext_individual.value("basic-li", 0.5) < ext_individual.value(
        "random", 0.5
    ) / 2
    assert ext_individual.value("k=10", 32.0) > ext_individual.value(
        "random", 32.0
    )
    assert ext_individual.value("basic-li", 32.0) <= ext_individual.value(
        "random", 32.0
    ) * 1.1


def test_ablation_ewma_estimation(ext_ewma, benchmark):
    benchmark.pedantic(
        kernel("ext-ewma", "basic-li(ewma)", 4.0), rounds=3, iterations=1
    )
    for x in (1.0, 4.0, 16.0):
        oracle = ext_ewma.value("basic-li(exact)", x)
        online = ext_ewma.value("basic-li(ewma)", x)
        assert online == pytest.approx(oracle, rel=0.15)
        assert online < ext_ewma.value("random", x)


def test_ablation_work_backlog_reports(ext_workinfo, benchmark):
    benchmark.pedantic(
        kernel("ext-workinfo", "basic-li(work)", 2.0), rounds=3, iterations=1
    )
    # With heavy-tailed jobs and reasonably fresh info, work reports see
    # the big jobs that queue lengths hide.
    assert ext_workinfo.value("basic-li(work)", 0.5) <= ext_workinfo.value(
        "basic-li(queue)", 0.5
    ) * 1.1
    # Both information metrics keep LI far below random.
    for label in ("basic-li(queue)", "basic-li(work)"):
        assert ext_workinfo.value(label, 2.0) < ext_workinfo.value(
            "random", 2.0
        )


@pytest.fixture(scope="module")
def ext_hetero():
    return generate_figure("ext-hetero")


def test_ablation_heterogeneous_cluster(ext_hetero, benchmark):
    benchmark.pedantic(
        kernel("ext-hetero", "weighted-li", 4.0), rounds=3, iterations=1
    )
    for x in (2.0, 8.0):
        # Capacity-aware LI dominates its capacity-blind version, which
        # in turn dominates random (which overloads the slow nodes).
        weighted = ext_hetero.value("weighted-li", x)
        basic = ext_hetero.value("basic-li", x)
        random_value = ext_hetero.value("random", x)
        assert weighted <= basic * 1.1
        assert basic < random_value
    # Staleness still degrades gracefully for the weighted variant.
    assert ext_hetero.value("weighted-li", 32.0) < ext_hetero.value(
        "random", 32.0
    )


@pytest.fixture(scope="module")
def ext_stealing():
    return generate_figure("ext-stealing")


def test_ablation_work_stealing(ext_stealing, benchmark):
    benchmark.pedantic(
        kernel("ext-stealing", "basic-li+steal", 4.0), rounds=3, iterations=1
    )
    # Receiver polls are fresh by construction: stealing alone is nearly
    # flat in T while sender-only policies degrade.
    assert ext_stealing.value("random+steal", 32.0) == pytest.approx(
        ext_stealing.value("random+steal", 0.5), rel=0.25
    )
    for x in (0.5, 4.0, 32.0):
        # Stealing always helps each sender-side policy...
        assert ext_stealing.value("random+steal", x) < ext_stealing.value(
            "random", x
        )
        assert ext_stealing.value("basic-li+steal", x) <= ext_stealing.value(
            "basic-li", x
        ) * 1.05
        # ... and LI + stealing is the best combination (small slack).
        others = [
            label for label in ext_stealing.curve_labels
            if label != "basic-li+steal"
        ]
        best_other = min(ext_stealing.value(label, x) for label in others)
        assert ext_stealing.value("basic-li+steal", x) <= best_other * 1.1


@pytest.fixture(scope="module")
def ext_decay():
    return generate_figure("ext-decay")


def test_ablation_decay_heuristic(ext_decay, benchmark):
    benchmark.pedantic(
        kernel("ext-decay", "decay(tau=8)", 4.0), rounds=3, iterations=1
    )
    # Every fixed tau loses to LI somewhere: the best decay curve at a
    # moderate T is still beaten by Aggressive LI.
    for x in (1.0, 8.0, 32.0):
        best_decay = min(
            ext_decay.value(label, x)
            for label in ("decay(tau=1)", "decay(tau=8)", "decay(tau=64)")
        )
        assert ext_decay.value("aggressive-li", x) <= best_decay * 1.02
    # The heuristic is at least load-sensitive: it beats random when fresh.
    assert ext_decay.value("decay(tau=8)", 0.5) < ext_decay.value(
        "random", 0.5
    )


@pytest.fixture(scope="module")
def ext_wan():
    return generate_figure("ext-wan")


def test_ablation_wan_replica_selection(ext_wan, benchmark):
    benchmark.pedantic(
        kernel("ext-wan", "locality-li", 4.0), rounds=3, iterations=1
    )
    for x in (0.5, 4.0, 32.0):
        # Nearest overloads the hot region; greedy pays the round trip.
        assert ext_wan.value("locality-li", x) < ext_wan.value("nearest", x)
        assert ext_wan.value("locality-li", x) <= ext_wan.value("greedy", x)
        # Distance awareness beats the distance-blind paper algorithm.
        assert ext_wan.value("locality-li", x) <= ext_wan.value(
            "basic-li", x
        ) * 1.02


@pytest.fixture(scope="module")
def ext_lossy():
    return generate_figure("ext-lossy")


def test_ablation_lossy_updates(ext_lossy, benchmark):
    benchmark.pedantic(
        kernel("ext-lossy", "basic-li", 0.4), rounds=3, iterations=1
    )
    # Hidden staleness hurts every board-trusting policy as losses grow;
    # greedy k=10 degrades steeply, and even paper-faithful Basic LI
    # (which trusts the nominal phase length) eventually suffers — the
    # same failure mode as underestimating lambda (§5.6).
    assert ext_lossy.value("k=10", 0.8) > ext_lossy.value("k=10", 0.0) * 1.5
    assert ext_lossy.value("basic-li", 0.8) > ext_lossy.value(
        "basic-li", 0.0
    )
    # Policies that key off the true board timestamp are robust:
    # Aggressive LI (whose schedule uses the board age) and the
    # timestamp-aware Basic LI variant stay below random at every loss
    # rate, degrading only mildly.
    for drop in (0.0, 0.4, 0.8):
        assert ext_lossy.value("aggressive-li", drop) < ext_lossy.value(
            "random", drop
        )
        assert ext_lossy.value("basic-li(ts)", drop) < ext_lossy.value(
            "random", drop
        )
    assert ext_lossy.value("basic-li(ts)", 0.8) < ext_lossy.value(
        "basic-li", 0.8
    )
    # Random is oblivious to the board, hence flat in the drop rate.
    assert ext_lossy.value("random", 0.8) == pytest.approx(
        ext_lossy.value("random", 0.0), rel=1e-9
    )
