"""Micro-benchmarks of the library's hot paths.

Not a paper figure — these time the computational kernels every sweep is
made of, so performance regressions in the substrate are caught where
they originate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.server import Server
from repro.core.weights import equalization_boundaries, waterfill_probabilities
from repro.engine.events import EventQueue
from repro.engine.rng import RandomStreams


def test_kernel_waterfill_n10(benchmark):
    loads = np.array([3.0, 7.0, 1.0, 9.0, 2.0, 8.0, 4.0, 6.0, 0.0, 5.0])
    result = benchmark(waterfill_probabilities, loads, 36.0)
    assert result.sum() == pytest.approx(1.0)


def test_kernel_waterfill_n1000(benchmark):
    rng = RandomStreams(1).stream("bench")
    loads = rng.uniform(0.0, 100.0, 1000)
    result = benchmark(waterfill_probabilities, loads, 5_000.0)
    assert result.sum() == pytest.approx(1.0)


def test_kernel_equalization_boundaries(benchmark):
    rng = RandomStreams(2).stream("bench")
    loads = np.sort(rng.uniform(0.0, 100.0, 100))
    boundaries = benchmark(equalization_boundaries, loads, 90.0)
    assert boundaries.shape == (99,)


def test_kernel_server_assign_and_query(benchmark):
    def workload():
        server = Server(0)
        now = 0.0
        for i in range(2_000):
            now += 0.1
            server.assign(now, 0.09)
            if i % 10 == 0:
                server.queue_length(now - 5.0)
        return server.jobs_assigned

    assert benchmark(workload) == 2_000


def test_kernel_dispatch_event_engine(benchmark):
    from benchmarks.common import bench_jobs
    from repro.perf import _pinned_simulation

    jobs = bench_jobs(default=4_000)
    mean = benchmark(lambda: _pinned_simulation("event", jobs).run().mean_response_time)
    assert mean > 0


def test_kernel_dispatch_fast_engine(benchmark):
    from benchmarks.common import bench_jobs
    from repro.perf import _pinned_simulation

    jobs = bench_jobs(default=4_000)
    mean = benchmark(lambda: _pinned_simulation("fast", jobs).run().mean_response_time)
    assert mean > 0


def test_kernel_dispatch_multidispatch(benchmark):
    from benchmarks.common import bench_jobs
    from repro.perf import _pinned_multidispatch

    jobs = bench_jobs(default=4_000)
    mean = benchmark(
        lambda: _pinned_multidispatch(jobs).run().mean_response_time
    )
    assert mean > 0


def test_fast_engine_speedup_on_pinned_cell():
    """The acceptance gate: at bench scale the fast path must beat the
    event engine by a wide margin on the pinned dispatch cell, while
    producing a bit-identical result."""
    import time

    from benchmarks.common import bench_jobs
    from repro.perf import _pinned_simulation

    jobs = bench_jobs(default=4_000)

    def timed(engine):
        simulation = _pinned_simulation(engine, jobs)
        started = time.perf_counter()
        result = simulation.run()
        return time.perf_counter() - started, result

    timed("fast")  # warm both code paths before timing
    timed("event")
    fast_s, fast_result = timed("fast")
    event_s, event_result = timed("event")
    assert event_result.mean_response_time == fast_result.mean_response_time
    assert (
        np.array_equal(event_result.dispatch_counts, fast_result.dispatch_counts)
    )
    speedup = event_s / fast_s
    assert speedup >= 3.0, (
        f"fast engine only {speedup:.2f}x faster "
        f"({event_s:.3f}s vs {fast_s:.3f}s at {jobs} jobs)"
    )


def test_kernel_event_queue(benchmark):
    rng = RandomStreams(3).stream("bench")
    times = rng.uniform(0.0, 1_000.0, 5_000)

    def churn():
        queue = EventQueue()
        for t in times:
            queue.push(float(t), lambda: None)
        count = 0
        while queue:
            queue.pop()
            count += 1
        return count

    assert benchmark(churn) == 5_000
