"""Micro-benchmarks of the library's hot paths.

Not a paper figure — these time the computational kernels every sweep is
made of, so performance regressions in the substrate are caught where
they originate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.server import Server
from repro.core.weights import equalization_boundaries, waterfill_probabilities
from repro.engine.events import EventQueue
from repro.engine.rng import RandomStreams


def test_kernel_waterfill_n10(benchmark):
    loads = np.array([3.0, 7.0, 1.0, 9.0, 2.0, 8.0, 4.0, 6.0, 0.0, 5.0])
    result = benchmark(waterfill_probabilities, loads, 36.0)
    assert result.sum() == pytest.approx(1.0)


def test_kernel_waterfill_n1000(benchmark):
    rng = RandomStreams(1).stream("bench")
    loads = rng.uniform(0.0, 100.0, 1000)
    result = benchmark(waterfill_probabilities, loads, 5_000.0)
    assert result.sum() == pytest.approx(1.0)


def test_kernel_equalization_boundaries(benchmark):
    rng = RandomStreams(2).stream("bench")
    loads = np.sort(rng.uniform(0.0, 100.0, 100))
    boundaries = benchmark(equalization_boundaries, loads, 90.0)
    assert boundaries.shape == (99,)


def test_kernel_server_assign_and_query(benchmark):
    def workload():
        server = Server(0)
        now = 0.0
        for i in range(2_000):
            now += 0.1
            server.assign(now, 0.09)
            if i % 10 == 0:
                server.queue_length(now - 5.0)
        return server.jobs_assigned

    assert benchmark(workload) == 2_000


def test_kernel_event_queue(benchmark):
    rng = RandomStreams(3).stream("bench")
    times = rng.uniform(0.0, 1_000.0, 5_000)

    def churn():
        queue = EventQueue()
        for t in times:
            queue.push(float(t), lambda: None)
        count = 0
        while queue:
            queue.pop()
            count += 1
        return count

    assert benchmark(churn) == 5_000
