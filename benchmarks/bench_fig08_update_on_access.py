"""Fig. 8: the update-on-access model.

Expected shape: per-client snapshot refreshes desynchronize the clients,
so *all* algorithms behave reasonably (no dramatic herd effect); Basic LI
is the best or tied for best across the sweep, with a modest margin.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel


@pytest.fixture(scope="module")
def fig8():
    return generate_figure("fig8")


def test_fig08_update_on_access(fig8, benchmark):
    benchmark.pedantic(kernel("fig8", "basic-li", 4.0), rounds=3, iterations=1)

    for x in (1.0, 8.0, 32.0):
        random_value = fig8.value("random", x)
        # No pathology: even greedy stays within 2x of random.
        assert fig8.value("k=10", x) < 2.0 * random_value
        # Basic LI best or tied (7% slack for the reduced bench scale).
        others = ("random", "k=2", "k=3", "k=10", "aggressive-li")
        best_other = min(fig8.value(label, x) for label in others)
        assert fig8.value("basic-li", x) <= best_other * 1.07
