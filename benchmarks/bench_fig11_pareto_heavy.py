"""Fig. 11: Bounded Pareto with max job = 10⁴ × mean, load 0.7.

Expected shape: the same qualitative picture as Fig. 10 with an even
heavier tail — larger dispersion across trials, LI still safe and still
far better than random when information is reasonably fresh.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_seeds, generate_figure, kernel


@pytest.fixture(scope="module")
def fig11():
    return generate_figure("fig11", seeds=max(bench_seeds(), 6))


def test_fig11_pareto_heavy(fig11, benchmark):
    benchmark.pedantic(kernel("fig11", "basic-li", 2.0), rounds=3, iterations=1)

    assert fig11.value("basic-li", 0.5) < fig11.value("random", 0.5) / 2
    assert fig11.value("basic-li", 32.0) < fig11.value("random", 32.0)
    assert fig11.value("k=10", 32.0) > 2 * fig11.value("k=10", 0.5)
    # Boxes are well-formed (min <= quartiles <= max).
    box = fig11.cell("basic-li", 2.0).percentile_box()
    assert box.minimum <= box.p25 <= box.median <= box.p75 <= box.maximum
