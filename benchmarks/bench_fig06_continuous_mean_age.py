"""Fig. 6: continuous update, four delay distributions, mean age known.

Expected shape: same qualitative story as the periodic model; with more
variable delay distributions (some requests see nearly-fresh data) the
k-subset algorithms improve relative to LI, shrinking LI's advantage —
for exponential delays the k-subsets can even edge ahead of Basic LI.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel

SUBFIGURES = ("fig6a", "fig6b", "fig6c", "fig6d")


@pytest.fixture(scope="module")
def fig6():
    return {figure_id: generate_figure(figure_id) for figure_id in SUBFIGURES}


def test_fig06_continuous_mean_age(fig6, benchmark):
    benchmark.pedantic(kernel("fig6a", "basic-li", 4.0), rounds=3, iterations=1)

    for figure_id in SUBFIGURES:
        result = fig6[figure_id]
        # Fresh info: LI far below random everywhere.
        assert result.value("basic-li", 0.5) < result.value("random", 0.5) / 2
        # Stale info: LI safe under every delay distribution.
        assert (
            result.value("basic-li", 32.0)
            <= result.value("random", 32.0) * 1.15
        )

    # Greedy k=10 herds for the low-variance delay distributions.  For
    # exponential delays many requests see nearly-fresh data, so k-subset
    # improves markedly — the variance effect Mitzenmacher reports and the
    # paper confirms — hence no pathology assertion for fig6d.
    for figure_id in ("fig6a", "fig6b"):
        result = fig6[figure_id]
        assert result.value("k=10", 32.0) > result.value("random", 32.0)
    assert fig6["fig6d"].value("k=10", 32.0) < fig6["fig6a"].value("k=10", 32.0)

    # Constant delays: Basic LI generally outperforms Aggressive LI under
    # this model (the end-of-phase rule makes Aggressive less aggressive).
    constant = fig6["fig6a"]
    assert constant.value("basic-li", 8.0) <= constant.value(
        "aggressive-li", 8.0
    ) * 1.1
    # Variable delays narrow the LI advantage over k-subsets: the gap for
    # exponential delays is smaller than for constant delays at T = 8.
    exponential = fig6["fig6d"]
    gap_constant = constant.value("k=2", 8.0) - constant.value("basic-li", 8.0)
    gap_exponential = exponential.value("k=2", 8.0) - exponential.value(
        "basic-li", 8.0
    )
    assert gap_exponential < gap_constant
