"""Extension: the (T x load) advantage map of Basic LI over random.

Not a paper figure — this regenerates the two-dimensional region where
interpreting stale information pays, summarizing Figs. 2-3 and 13 in one
heatmap: the advantage grows with load, shrinks with staleness, and never
drops meaningfully below 1.0 (LI's safety property).
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_jobs, bench_seeds, record_table
from repro.core.li_basic import BasicLIPolicy
from repro.core.random_policy import RandomPolicy
from repro.experiments.grid import run_advantage_grid

T_VALUES = (0.5, 2.0, 8.0, 32.0)
LOAD_VALUES = (0.5, 0.7, 0.9)


@pytest.fixture(scope="module")
def advantage_grid():
    grid = run_advantage_grid(
        BasicLIPolicy,
        RandomPolicy,
        subject_label="basic-li",
        baseline_label="random",
        t_values=T_VALUES,
        load_values=LOAD_VALUES,
        jobs=min(bench_jobs(), 15_000),
        seeds=bench_seeds(),
    )
    record_table(
        "ext-grid", grid.format_table() + "\n\n" + grid.format_heatmap()
    )
    return grid


def test_grid_li_advantage(advantage_grid, benchmark):
    benchmark.pedantic(
        lambda: run_advantage_grid(
            BasicLIPolicy,
            RandomPolicy,
            "basic-li",
            "random",
            t_values=(2.0,),
            load_values=(0.9,),
            jobs=4_000,
            seeds=1,
        ),
        rounds=3,
        iterations=1,
    )
    # Advantage grows with load at every T...
    for t in T_VALUES:
        assert advantage_grid.ratio(t, 0.9) > advantage_grid.ratio(t, 0.5)
    # ... shrinks with staleness at heavy load ...
    assert advantage_grid.ratio(0.5, 0.9) > advantage_grid.ratio(32.0, 0.9)
    # ... and never falls meaningfully below parity (safety).
    for t in T_VALUES:
        for load in LOAD_VALUES:
            assert advantage_grid.ratio(t, load) > 0.9
