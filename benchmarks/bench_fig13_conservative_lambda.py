"""Fig. 13: response time vs λ — exact λ versus assume-λ=1.0, T=4.

Expected shape: the two Basic LI lines (exact λ and the conservative
max-throughput assumption) are nearly indistinguishable across the whole
λ sweep — the paper reports differences under 1%, we allow bench noise —
and both dominate the baselines at high load.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel


@pytest.fixture(scope="module")
def fig13():
    return generate_figure("fig13")


def test_fig13_conservative_lambda(fig13, benchmark):
    benchmark.pedantic(
        kernel("fig13", "basic-li(assume=1.0)", 0.9), rounds=3, iterations=1
    )

    for lam in fig13.x_values:
        exact = fig13.value("basic-li(exact)", lam)
        conservative = fig13.value("basic-li(assume=1.0)", lam)
        # Nearly indistinguishable (the paper: < 1%; allow bench noise).
        assert conservative == pytest.approx(exact, rel=0.10)
    # At heavy load the LI lines beat both random and greedy.
    assert fig13.value("basic-li(exact)", 0.95) < fig13.value("random", 0.95)
    assert fig13.value("basic-li(exact)", 0.95) < fig13.value("k=10", 0.95)
    # Response time grows with load for every policy.
    assert fig13.value("basic-li(exact)", 0.95) > fig13.value(
        "basic-li(exact)", 0.3
    )
