"""Fig. 1: request distribution by server rank under k-subset (Eq. 1).

Regenerates the analytic curves for k in {1, 2, 3, 5, 10} with n = 10 and
cross-checks them against Monte-Carlo subset selection, then benchmarks
the Monte-Carlo kernel.
"""

from __future__ import annotations

import pytest

from benchmarks.common import record_table
from repro.experiments.fig1 import run_fig1


@pytest.fixture(scope="module")
def fig1_result():
    result = run_fig1(num_servers=10, k_values=(1, 2, 3, 5, 10), draws=100_000)
    record_table("fig1", result.format_table())
    return result


def test_fig01_rank_distribution(fig1_result, benchmark):
    benchmark.pedantic(
        lambda: run_fig1(num_servers=10, k_values=(2,), draws=20_000),
        rounds=3,
        iterations=1,
    )
    # Shape: Monte Carlo matches Eq. 1 closely for every k.
    for k in (1, 2, 3, 5):
        assert fig1_result.max_abs_error(k) < 0.01
    # The paper's reading of Fig. 1: the k-1 most loaded servers receive
    # no requests at all, and the top of the k=2 curve is 0.2.
    assert fig1_result.analytic[2][0] == pytest.approx(0.2)
    assert fig1_result.analytic[5][-4:].sum() == 0.0
