"""Fig. 14: LI-k (restricted information) under three update models.

Expected shape: unlike the standard k-subset family — whose best k
depends on the staleness — LI-k improves (weakly) with more information:
li-2 <= ... holds through li-10 = full Basic LI, and li-2/li-3 beat the
standard k=2/k=3 when information is stale.  LI decouples *how much*
information is used from *how it is interpreted*.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel

SUBFIGURES = ("fig14a", "fig14b", "fig14c")


@pytest.fixture(scope="module")
def fig14():
    return {figure_id: generate_figure(figure_id) for figure_id in SUBFIGURES}


def test_fig14_li_subset(fig14, benchmark):
    benchmark.pedantic(kernel("fig14c", "li-3", 4.0), rounds=3, iterations=1)

    # Periodic and continuous models: LI-k beats the matched k-subset when
    # information is stale, and more information monotonically helps.
    for figure_id in ("fig14b", "fig14c"):
        result = fig14[figure_id]
        assert result.value("li-2", 16.0) < result.value("k=2", 16.0)
        assert result.value("li-3", 16.0) < result.value("k=3", 16.0)
        assert result.value("li-10", 8.0) <= result.value("li-3", 8.0) * 1.05
        assert result.value("li-3", 8.0) <= result.value("li-2", 8.0) * 1.05
        # li-1 ignores information entirely == uniform random sanity.
        assert result.value("li-1", 8.0) == pytest.approx(
            result.value("li-1", 32.0), rel=0.25
        )

    # Update-on-access: standard k-subsets behave well here; LI-2 is
    # comparable to them and full LI is at least as good as LI-2.
    uoa = fig14["fig14a"]
    assert uoa.value("li-2", 8.0) <= uoa.value("k=2", 8.0) * 1.1
    assert uoa.value("li-10", 8.0) <= uoa.value("li-2", 8.0) * 1.05
