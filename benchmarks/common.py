"""Shared infrastructure for the figure-regeneration benchmarks.

Every ``bench_figNN`` module regenerates one figure of the paper: it runs
the figure's sweep (at a scale set by environment variables), writes the
resulting table to ``benchmarks/results/<figure>.txt``, prints it (visible
with ``pytest -s``), asserts the figure's qualitative shape, and times a
representative simulation kernel with pytest-benchmark.

Scale knobs:

* ``REPRO_BENCH_JOBS``  — arrivals per run (default 15000; paper: 500000)
* ``REPRO_BENCH_SEEDS`` — replications per cell (default 2; paper: >= 10)
* ``REPRO_BENCH_PROCESSES`` — worker processes (default 1)
* ``REPRO_BENCH_TRACE`` — set to 1 to attach observability probes and
  write a run manifest per figure into ``benchmarks/results/``

Raising the knobs reproduces the paper's scale exactly::

    REPRO_BENCH_JOBS=500000 REPRO_BENCH_SEEDS=10 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.experiments.report import FigureResult
from repro.experiments.runner import run_cell, run_figure

RESULTS_DIR = Path(__file__).resolve().parent / "results"

__all__ = [
    "bench_jobs",
    "bench_seeds",
    "bench_processes",
    "bench_trace",
    "generate_figure",
    "kernel",
    "RESULTS_DIR",
]


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError as error:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from error
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def bench_jobs(default: int = 15_000) -> int:
    """Arrivals per simulation run for bench sweeps."""
    return _env_int("REPRO_BENCH_JOBS", default)


def bench_seeds(default: int = 2) -> int:
    """Replications per sweep cell for bench sweeps."""
    return _env_int("REPRO_BENCH_SEEDS", default)


def bench_processes(default: int = 1) -> int:
    """Worker processes for bench sweeps."""
    return _env_int("REPRO_BENCH_PROCESSES", default)


def bench_trace(default: bool = False) -> bool:
    """Whether bench sweeps attach observability probes (REPRO_BENCH_TRACE)."""
    raw = os.environ.get("REPRO_BENCH_TRACE")
    if raw is None:
        return default
    return raw.strip().lower() not in ("", "0", "false", "no")


def generate_figure(
    figure_id: str,
    jobs: int | None = None,
    seeds: int | None = None,
    record_as: str | None = None,
    **overrides,
) -> FigureResult:
    """Run a figure sweep at bench scale and record its table.

    ``record_as`` renames the results file — used when a bench re-runs a
    *subset* of another figure as a reference, so the partial table does
    not overwrite the full one.  With ``REPRO_BENCH_TRACE=1`` the sweep
    runs with the standard probes attached and its run manifest (probe
    summaries included) lands next to the table in ``results/``.
    """
    traced = bench_trace()
    kwargs = dict(
        jobs=jobs if jobs is not None else bench_jobs(),
        seeds=seeds if seeds is not None else bench_seeds(),
        processes=bench_processes(),
        trace=traced,
        **overrides,
    )
    if traced:
        from repro.experiments.runner import run_figure_with_manifest

        result, _manifest_path = run_figure_with_manifest(
            figure_id, RESULTS_DIR, **kwargs
        )
    else:
        result = run_figure(figure_id, **kwargs)
    record_table(record_as or figure_id, result.format_table())
    return result


def record_table(name: str, table: str) -> None:
    """Persist a regenerated table and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    print(f"\n{table}")


def kernel(figure_id: str, curve: str, x: float, jobs: int = 4_000, seed: int = 1):
    """A small representative simulation cell for timing."""

    def run() -> float:
        return run_cell(figure_id, curve, x, seed, jobs)

    return run
