"""Fig. 9: update-on-access with bursty clients (burst size 10).

Expected shape: although a client's snapshot is on average T old, most
requests arrive mid-burst and see a much fresher picture, so every
load-aware policy beats random clearly even at large T — the basis for
the paper's optimism about Internet server selection.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel


@pytest.fixture(scope="module")
def fig9():
    return generate_figure("fig9")


@pytest.fixture(scope="module")
def fig8_reference():
    return generate_figure(
        "fig8",
        curves=("basic-li", "k=2", "random"),
        record_as="fig9-reference-fig8",
    )


def test_fig09_bursty(fig9, fig8_reference, benchmark):
    benchmark.pedantic(kernel("fig9", "basic-li", 4.0), rounds=3, iterations=1)

    # Load-aware policies beat random decisively at every age.
    for x in (2.0, 8.0, 32.0):
        random_value = fig9.value("random", x)
        assert fig9.value("basic-li", x) < random_value * 0.8
        assert fig9.value("k=2", x) < random_value * 0.9

    # Burstiness makes stale-info load balancing *better* than the
    # non-bursty update-on-access case at large T.
    assert fig9.value("basic-li", 32.0) < fig8_reference.value(
        "basic-li", 32.0
    )
    # Basic LI best or tied across the sweep.
    for x in (2.0, 8.0, 32.0):
        others = ("random", "k=2", "k=3", "k=10", "aggressive-li")
        best_other = min(fig9.value(label, x) for label in others)
        assert fig9.value("basic-li", x) <= best_other * 1.07
