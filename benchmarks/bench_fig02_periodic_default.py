"""Fig. 2: response time vs update period T, periodic model, n=10, λ=0.9.

The paper's headline figure.  Expected shape: all load-aware policies win
big at small T; k-subset algorithms cross above random and keep climbing
as T grows (the herd effect, worst for large k); both LI variants degrade
gracefully and stay at or below random even at T = 64.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel


@pytest.fixture(scope="module")
def fig2():
    return generate_figure("fig2")


def test_fig02_periodic_default(fig2, benchmark):
    benchmark.pedantic(kernel("fig2", "basic-li", 4.0), rounds=3, iterations=1)

    random_series = fig2.series("random")
    # Fresh information: LI matches the aggressive algorithms (Fig. 2b).
    assert fig2.value("basic-li", 0.1) <= fig2.value("k=10", 0.1) * 1.2
    assert fig2.value("basic-li", 0.1) < random_series[0] / 2
    # Moderate age: LI beats every k-subset variant (the ~60% regime).
    best_subset_at_8 = min(fig2.value(k, 8.0) for k in ("k=2", "k=3", "k=10"))
    assert fig2.value("aggressive-li", 8.0) < best_subset_at_8
    # Stale: k=10 is pathological, LI is not (Fig. 2a).
    assert fig2.value("k=10", 64.0) > 3 * fig2.value("random", 64.0)
    assert fig2.value("basic-li", 64.0) <= fig2.value("random", 64.0) * 1.1
    assert fig2.value("aggressive-li", 64.0) <= fig2.value("random", 64.0) * 1.1
