"""Fig. 10: Bounded Pareto job sizes (α=1.1, max=10³×mean), three loads.

Expected shape: absolute response times and the random-vs-best gap are
much larger than under exponential service (server selection matters more
for highly variable jobs); greedy k=10 degrades steeply with staleness;
LI degrades slowly and stays far below random.  Reported as percentile
boxes over per-seed means, like the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_seeds, generate_figure, kernel

SUBFIGURES = ("fig10a", "fig10b", "fig10c")


@pytest.fixture(scope="module")
def fig10():
    # Heavy-tailed runs need more trials for a meaningful box.
    seeds = max(bench_seeds(), 6)
    return {
        figure_id: generate_figure(figure_id, seeds=seeds)
        for figure_id in SUBFIGURES
    }


def test_fig10_pareto(fig10, benchmark):
    benchmark.pedantic(kernel("fig10b", "basic-li", 2.0), rounds=3, iterations=1)

    for figure_id in SUBFIGURES:
        result = fig10[figure_id]
        # Selection matters: LI at small T crushes random.
        assert result.value("basic-li", 0.5) < result.value("random", 0.5) / 2
        # Greedy k=10 deteriorates with staleness; LI degrades gently.
        assert result.value("k=10", 32.0) > 2 * result.value("k=10", 0.5)
        assert result.value("basic-li", 32.0) < result.value("random", 32.0)

    # Absolute response times grow with load for the random baseline
    # (heavy-tailed M/G/1), and the random-vs-LI gap is dramatic at every
    # load — far larger than the ~3x seen under exponential service.
    assert fig10["fig10c"].value("random", 2.0) > fig10["fig10a"].value(
        "random", 2.0
    )
    for figure_id in SUBFIGURES:
        ratio = fig10[figure_id].value("random", 2.0) / fig10[figure_id].value(
            "basic-li", 2.0
        )
        assert ratio > 3.0
