"""Fig. 4: the periodic sweep with 100 servers (λ = 0.9).

Expected shape: qualitatively identical to the n = 10 case (Fig. 2) —
the herd effect for large k, graceful degradation for LI.
"""

from __future__ import annotations

import pytest

from benchmarks.common import bench_jobs, generate_figure, kernel


@pytest.fixture(scope="module")
def fig4():
    # 100 servers need proportionally more arrivals per run for the same
    # per-server statistics.
    return generate_figure("fig4", jobs=max(bench_jobs(), 60_000), seeds=2)


def test_fig04_periodic_n100(fig4, benchmark):
    benchmark.pedantic(
        kernel("fig4", "basic-li", 4.0, jobs=8_000), rounds=3, iterations=1
    )

    assert fig4.value("basic-li", 0.1) < fig4.value("random", 0.1) / 2
    assert fig4.value("k=100", 64.0) > 2 * fig4.value("random", 64.0)
    assert fig4.value("basic-li", 64.0) <= fig4.value("random", 64.0) * 1.15
    best_subset = min(fig4.value(k, 8.0) for k in ("k=2", "k=3", "k=100"))
    assert fig4.value("aggressive-li", 8.0) <= best_subset * 1.05
