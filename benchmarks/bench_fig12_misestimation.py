"""Fig. 12: Basic LI with a misestimated arrival rate.

Expected shape: underestimating λ (factors < 1) makes LI too aggressive —
performance degrades sharply, approaching the herd effect; overestimating
(factors > 1) makes it conservatively drift toward random and costs
little.  Hence the paper's advice: err on the side of overestimation.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel


@pytest.fixture(scope="module")
def fig12():
    return generate_figure("fig12")


def test_fig12_misestimation(fig12, benchmark):
    benchmark.pedantic(kernel("fig12", "li(8x)", 4.0), rounds=3, iterations=1)

    exact = fig12.value("li(1x)", 8.0)
    # Asymmetry: a factor-8 underestimate is far worse than a factor-8
    # overestimate.
    assert fig12.value("li(0.125x)", 8.0) > fig12.value("li(8x)", 8.0)
    # Underestimation is severely damaging...
    assert fig12.value("li(0.125x)", 16.0) > exact * 1.5
    # ... while overestimation stays within modest range of exact and
    # never falls behind oblivious random.
    assert fig12.value("li(2x)", 8.0) < exact * 1.3
    for x in (4.0, 8.0, 16.0):
        assert fig12.value("li(8x)", x) <= fig12.value("random", x)
    # Monotone damage on the underestimation side.
    assert fig12.value("li(0.125x)", 8.0) > fig12.value("li(0.5x)", 8.0)
