"""Fig. 5: the threshold algorithm for a range of thresholds, k=2 and k=10.

Expected shape: the threshold knob spans the same aggressiveness spectrum
as k does for k-subset — small thresholds behave aggressively (good fresh,
bad stale), large thresholds approach uniform random — and the LI
algorithms beat every fixed threshold over a wide range of update periods.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel

THRESHOLD_LABELS_K2 = [f"thr={t},k=2" for t in (0, 1, 4, 8, 16, 24, 32, 40)]
THRESHOLD_LABELS_K10 = [f"thr={t},k=10" for t in (0, 1, 4, 8, 16, 24, 32, 40)]


@pytest.fixture(scope="module")
def fig5a():
    return generate_figure("fig5a")


@pytest.fixture(scope="module")
def fig5b():
    return generate_figure("fig5b")


def test_fig05a_threshold_k2(fig5a, benchmark):
    benchmark.pedantic(kernel("fig5a", "thr=4,k=2", 4.0), rounds=3, iterations=1)

    # No fixed threshold dominates LI across the sweep: at a moderate T
    # the best threshold still loses to Aggressive LI.
    best_threshold = min(fig5a.value(lbl, 8.0) for lbl in THRESHOLD_LABELS_K2)
    assert fig5a.value("aggressive-li", 8.0) <= best_threshold * 1.05


def test_fig05b_threshold_k10(fig5b, benchmark):
    benchmark.pedantic(kernel("fig5b", "thr=4,k=10", 4.0), rounds=3, iterations=1)

    # Aggressive small thresholds with k=10 herd when information is stale.
    assert fig5b.value("thr=0,k=10", 32.0) > fig5b.value("thr=40,k=10", 32.0)
    # ... but win when information is fresh.
    assert fig5b.value("thr=0,k=10", 0.5) < fig5b.value("thr=40,k=10", 0.5)
    # LI beats the whole threshold family at moderate staleness.
    best_threshold = min(fig5b.value(lbl, 8.0) for lbl in THRESHOLD_LABELS_K10)
    assert fig5b.value("aggressive-li", 8.0) <= best_threshold * 1.05
