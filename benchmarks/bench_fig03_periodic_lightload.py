"""Fig. 3: the same periodic sweep at light load (λ = 0.5).

Expected shape: gains over random shrink (random is only ~2.0 time
units), k-subset's stale-information pathology is milder but still
present, and the LI algorithms are at least as good as the best
alternative across the whole sweep.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel
from repro.analysis.mmk import random_split_response_time


@pytest.fixture(scope="module")
def fig3():
    return generate_figure("fig3")


def test_fig03_periodic_lightload(fig3, benchmark):
    benchmark.pedantic(kernel("fig3", "basic-li", 4.0), rounds=3, iterations=1)

    # Random matches the M/M/1 baseline 1/(1-0.5) = 2.0.
    assert fig3.value("random", 1.0) == pytest.approx(
        random_split_response_time(0.5), rel=0.1
    )
    # Fresh info: nearly a factor of two over random.
    assert fig3.value("basic-li", 0.1) < fig3.value("random", 0.1) * 0.7
    # Stale info: greedy still worse than random, LI still safe.
    assert fig3.value("k=10", 64.0) > fig3.value("random", 64.0)
    assert fig3.value("basic-li", 64.0) <= fig3.value("random", 64.0) * 1.1
