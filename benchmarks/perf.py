"""Record one point of the performance trajectory.

Thin runnable wrapper around :mod:`repro.perf` (deliberately named so
pytest does not collect it): times the standard kernel line-up and writes
``benchmarks/BENCH_<YYYYMMDD>.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf.py                # default scale
    REPRO_BENCH_JOBS=100000 PYTHONPATH=src python benchmarks/perf.py
    PYTHONPATH=src python benchmarks/perf.py --jobs 2000 --out /tmp/bench

Compare points with ``python -m repro bench-trend``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf import (
    bench_jobs_from_env,
    run_kernels,
    write_bench_file,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="arrivals per dispatch kernel (default: REPRO_BENCH_JOBS or 15000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed calls per kernel"
    )
    parser.add_argument(
        "--out",
        type=str,
        default=str(Path(__file__).resolve().parent),
        help="directory for the BENCH_*.json file (default: benchmarks/)",
    )
    parser.add_argument(
        "--stdout",
        action="store_true",
        help="print the payload instead of (in addition to) the file path",
    )
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else bench_jobs_from_env()
    payload = run_kernels(jobs, repeats=args.repeats)
    path = write_bench_file(payload, args.out)
    if args.stdout:
        print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
