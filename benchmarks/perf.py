"""Record one point of the performance trajectory.

Thin runnable wrapper around :mod:`repro.perf` (deliberately named so
pytest does not collect it): times the standard kernel line-up and writes
``benchmarks/BENCH_<YYYYMMDD>.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf.py                # default scale
    REPRO_BENCH_JOBS=100000 PYTHONPATH=src python benchmarks/perf.py
    PYTHONPATH=src python benchmarks/perf.py --jobs 2000 --out /tmp/bench

Compare points with ``python -m repro bench-trend``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf import (
    bench_jobs_from_env,
    measure_cache_effectiveness,
    run_kernels,
    write_bench_file,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="arrivals per dispatch kernel (default: REPRO_BENCH_JOBS or 15000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed calls per kernel"
    )
    parser.add_argument(
        "--out",
        type=str,
        default=str(Path(__file__).resolve().parent),
        help="directory for the BENCH_*.json file (default: benchmarks/)",
    )
    parser.add_argument(
        "--stdout",
        action="store_true",
        help="print the payload instead of (in addition to) the file path",
    )
    parser.add_argument(
        "--no-cache-bench",
        action="store_true",
        help="skip the cold-vs-warm sweep-cache measurement",
    )
    parser.add_argument(
        "--cache-floor",
        type=float,
        default=None,
        metavar="X",
        help="fail (exit 1) unless warm full-suite regeneration is at "
        "least X times faster than cold (CI gates at 5)",
    )
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else bench_jobs_from_env()
    payload = run_kernels(jobs, repeats=args.repeats)
    if not args.no_cache_bench:
        payload["cache"] = measure_cache_effectiveness()
    path = write_bench_file(payload, args.out)
    if args.stdout:
        print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {path}")
    if "cache" in payload:
        cache = payload["cache"]
        print(
            f"cache effectiveness: cold {cache['cold_s']:.2f}s -> warm "
            f"{cache['warm_s']:.2f}s ({cache['speedup']:.1f}x, "
            f"{cache['cells']} cells)"
        )
        if args.cache_floor is not None and cache["speedup"] < args.cache_floor:
            print(
                f"FAIL: warm regeneration only {cache['speedup']:.1f}x "
                f"faster than cold (floor {args.cache_floor:g}x)"
            )
            return 1
    elif args.cache_floor is not None:
        print("FAIL: --cache-floor requires the cache benchmark")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
