"""Fig. 7: continuous update where each request knows its actual delay.

Expected shape: giving Basic LI the per-request delay (instead of only
the mean) improves it for every delay distribution, most strongly for the
most variable (exponential) distribution.
"""

from __future__ import annotations

import pytest

from benchmarks.common import generate_figure, kernel

PAIRS = (
    ("fig7a", "fig6b"),  # uniform(T/2, 3T/2)
    ("fig7b", "fig6c"),  # uniform(0, 2T)
    ("fig7c", "fig6d"),  # exponential(T)
)


@pytest.fixture(scope="module")
def fig7_and_fig6():
    results = {}
    for known_id, mean_id in PAIRS:
        results[known_id] = generate_figure(known_id)
        results[mean_id] = generate_figure(
            mean_id,
            curves=("basic-li", "random"),
            record_as=f"{known_id}-reference-{mean_id}",
        )
    return results


def test_fig07_continuous_known_age(fig7_and_fig6, benchmark):
    benchmark.pedantic(kernel("fig7c", "basic-li", 4.0), rounds=3, iterations=1)

    for known_id, mean_id in PAIRS:
        known = fig7_and_fig6[known_id]
        mean_only = fig7_and_fig6[mean_id]
        # Knowing the actual age never hurts Basic LI (5% statistical slack).
        for x in (4.0, 8.0, 16.0):
            assert known.value("basic-li", x) <= mean_only.value(
                "basic-li", x
            ) * 1.08
        # And LI remains safe at the stale end.
        assert known.value("basic-li", 32.0) <= known.value("random", 32.0) * 1.1

    # The improvement is most pronounced for the exponential distribution.
    exp_gain = fig7_and_fig6["fig6d"].value("basic-li", 8.0) - fig7_and_fig6[
        "fig7c"
    ].value("basic-li", 8.0)
    narrow_gain = fig7_and_fig6["fig6b"].value("basic-li", 8.0) - fig7_and_fig6[
        "fig7a"
    ].value("basic-li", 8.0)
    assert exp_gain >= narrow_gain - 0.5  # allow noise, expect ordering
