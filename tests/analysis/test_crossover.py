"""Tests for crossover analysis."""

from __future__ import annotations

import math

import pytest

from repro.analysis.crossover import crossovers_in_result, find_crossover
from repro.experiments.report import CellResult, FigureResult


class TestFindCrossover:
    def test_simple_crossing(self):
        x = [1.0, 2.0, 4.0, 8.0]
        a = [1.0, 2.0, 5.0, 9.0]  # rising
        b = [3.0, 3.0, 3.0, 3.0]  # flat reference
        crossing = find_crossover(x, a, b)
        assert 2.0 < crossing < 4.0

    def test_interpolation_in_log_x(self):
        """a-b goes -1 -> +1 between x=1 and x=4: the log-x midpoint is 2."""
        crossing = find_crossover([1.0, 4.0], [2.0, 4.0], [3.0, 3.0])
        assert crossing == pytest.approx(2.0)

    def test_linear_x_interpolation(self):
        crossing = find_crossover(
            [1.0, 4.0], [2.0, 4.0], [3.0, 3.0], log_x=False
        )
        assert crossing == pytest.approx(2.5)

    def test_never_crosses_returns_none(self):
        x = [1.0, 2.0, 4.0]
        assert find_crossover(x, [1.0, 1.5, 2.0], [3.0, 3.0, 3.0]) is None

    def test_starts_above_returns_first_x(self):
        x = [1.0, 2.0]
        assert find_crossover(x, [5.0, 6.0], [3.0, 3.0]) == 1.0

    def test_touch_without_crossing_not_reported(self):
        """Equality is not 'above'."""
        x = [1.0, 2.0, 4.0]
        assert find_crossover(x, [2.0, 3.0, 3.0], [3.0, 3.0, 3.0]) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="length mismatch"):
            find_crossover([1.0], [1.0, 2.0], [1.0])

    def test_log_x_requires_positive(self):
        with pytest.raises(ValueError, match="positive"):
            find_crossover([0.0, 1.0], [1.0, 2.0], [3.0, 0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            find_crossover([], [], [])


class TestCrossoversInResult:
    def make_result(self):
        result = FigureResult(
            figure_id="figX",
            title="t",
            x_label="T",
            x_values=(1.0, 4.0, 16.0),
            curve_labels=("random", "greedy", "li"),
            summary="ci",
            jobs=1,
            seeds=1,
        )
        data = {
            "random": (10.0, 10.0, 10.0),
            "greedy": (3.0, 9.0, 30.0),  # crosses random between 4 and 16
            "li": (3.0, 5.0, 8.0),  # never crosses
        }
        for label, series in data.items():
            for x, value in zip(result.x_values, series):
                result.cells[(label, x)] = CellResult(
                    curve=label, x=x, samples=(value,)
                )
        return result

    def test_crossings_identified(self):
        crossings = crossovers_in_result(self.make_result())
        assert crossings["li"] is None  # LI's safety property
        assert 4.0 < crossings["greedy"] < 16.0
        assert "random" not in crossings

    def test_on_real_fig2_sweep(self):
        """The paper's claim: on the fig2 sweep, k=10 crosses random at a
        small T while LI never does."""
        from repro.experiments.runner import run_figure

        result = run_figure(
            "fig2",
            jobs=8_000,
            seeds=2,
            curves=("random", "k=10", "basic-li"),
            x_values=(0.5, 2.0, 8.0, 32.0),
        )
        crossings = crossovers_in_result(result)
        assert crossings["k=10"] is not None
        assert crossings["k=10"] < 10.0
        assert crossings["basic-li"] is None
