"""Tests for paired common-random-numbers comparison."""

from __future__ import annotations

import pytest

from repro.analysis.paired import compare_curves, paired_difference_interval
from repro.experiments.report import CellResult, FigureResult


class TestPairedDifferenceInterval:
    def test_clear_difference(self):
        a = [1.0, 1.1, 0.9, 1.0]
        b = [2.0, 2.1, 1.9, 2.0]
        interval = paired_difference_interval(a, b)
        assert interval.high < 0  # a is uniformly smaller

    def test_paired_tighter_than_unpaired(self):
        """With strong positive correlation (shared workload noise), the
        paired interval is much narrower than the naive comparison."""
        from repro.engine.stats import mean_confidence_interval

        noise = [0.0, 5.0, -3.0, 7.0, -6.0, 2.0]
        a = [10.0 + n for n in noise]
        b = [10.5 + n for n in noise]  # b always 0.5 worse
        paired = paired_difference_interval(a, b)
        unpaired_width = (
            mean_confidence_interval(a).half_width
            + mean_confidence_interval(b).half_width
        )
        assert paired.half_width < unpaired_width / 5
        assert paired.high < 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal sample counts"):
            paired_difference_interval([1.0], [1.0, 2.0])

    def test_single_pair_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            paired_difference_interval([1.0], [2.0])


class TestCompareCurves:
    def make_result(self, a_samples, b_samples):
        result = FigureResult(
            figure_id="figX",
            title="t",
            x_label="T",
            x_values=(1.0,),
            curve_labels=("a", "b"),
            summary="ci",
            jobs=1,
            seeds=len(a_samples),
        )
        result.cells[("a", 1.0)] = CellResult("a", 1.0, tuple(a_samples))
        result.cells[("b", 1.0)] = CellResult("b", 1.0, tuple(b_samples))
        return result

    def test_a_better(self):
        outcome = compare_curves(
            self.make_result([1.0, 1.1, 0.9], [2.0, 2.1, 1.9]), "a", "b", 1.0
        )
        assert outcome["verdict"] == "a_better"
        assert outcome["speedup"] == pytest.approx(2.0, rel=0.05)

    def test_b_better(self):
        outcome = compare_curves(
            self.make_result([2.0, 2.1, 1.9], [1.0, 1.1, 0.9]), "a", "b", 1.0
        )
        assert outcome["verdict"] == "b_better"

    def test_indistinguishable(self):
        outcome = compare_curves(
            self.make_result([1.0, 2.0, 0.5], [1.1, 1.8, 0.6]), "a", "b", 1.0
        )
        assert outcome["verdict"] == "indistinguishable"

    def test_on_real_sweep_li_beats_greedy_when_stale(self):
        from repro.experiments.runner import run_figure

        result = run_figure(
            "fig2",
            jobs=10_000,
            seeds=4,
            curves=("basic-li", "k=10"),
            x_values=(16.0,),
        )
        outcome = compare_curves(result, "basic-li", "k=10", 16.0)
        assert outcome["verdict"] == "a_better"
        assert outcome["speedup"] > 2.0
